//! Write-ahead-logged durable object store with group commit.
//!
//! Layout: an append-only sequence of segment files (`wal-<seq>.log`)
//! holding checksummed frames, plus periodic full-index checkpoints
//! (`ckpt-<seq>.ck`) committed by atomic rename. The live state is an
//! in-memory index; reads never touch disk.
//!
//! One frame = one atomic commit unit. A [`WriteBatch`] — for SeGShare,
//! everything one request writes: content blob, §V-D hash records,
//! metadata, audit append — becomes one frame, so after a crash the
//! request's writes are all-present or all-absent. Frames are made
//! durable either by a dedicated group-commit thread that coalesces
//! concurrently submitted frames into one fsync, or (with
//! [`WalConfig::group_commit`] off) by an inline fsync per frame — the
//! "naive" mode the durability benchmark compares against.
//!
//! Recovery loads the newest valid checkpoint and replays later
//! segments in order, stopping at the first frame whose checksum or
//! length fails — a torn tail from a mid-write crash is thereby
//! discarded wholesale, never partially applied.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::ThreadId;

use parking_lot::RwLock;

use crate::fault::FaultPlan;
use crate::{BatchOp, CommitTicket, IoStats, ObjectStore, StoreError, TicketState, WriteBatch};

/// Frame magic: "SGWL".
const FRAME_MAGIC: u32 = 0x5347_574c;
/// Checkpoint magic: "SGCK".
const CKPT_MAGIC: u32 = 0x5347_434b;
/// Fixed frame header: magic + seq + payload len + crc.
const FRAME_HEADER: usize = 4 + 8 + 4 + 4;
/// Largest key, value, or whole-frame payload the encoding's u32 length
/// fields can represent. Anything bigger must be rejected up front:
/// encoding it would wrap the length field while still appending all
/// the bytes, producing a frame whose checksum covers the wrong span —
/// it fails to decode at recovery and acked data becomes unrecoverable.
const MAX_ENCODED: usize = u32::MAX as usize;

/// Tuning and fault-injection knobs for [`WalStore`].
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// `true`: a dedicated committer thread coalesces concurrently
    /// submitted frames into one fsync (group commit). `false`: every
    /// frame fsyncs inline on the submitting thread — the naive
    /// per-write durability the benchmark baseline measures.
    pub group_commit: bool,
    /// Checkpoint and rotate the log once this many bytes have been
    /// appended since the last checkpoint.
    pub checkpoint_bytes: u64,
    /// Simulated per-fsync latency in microseconds. Container and CI
    /// filesystems often make fsync nearly free, which would hide the
    /// cost group commit exists to amortize; benchmarks set this to a
    /// realistic disk latency so measured ratios are machine-independent.
    pub sim_fsync_us: u64,
    /// How long a checkpoint waits for open transactions to seal before
    /// declaring the store wedged. A thread that panics or is abandoned
    /// between `tx_begin` and `tx_seal` leaks its open-transaction count
    /// forever; without a bound that would hang every future checkpoint
    /// — and, with the committer stuck inside `checkpoint`, all group
    /// commits too. Timing out poisons the store (fail shut, recover by
    /// reopening) instead of hanging it. Transactions span one request's
    /// writes, so the default is orders of magnitude above a healthy
    /// seal.
    pub gate_timeout: std::time::Duration,
    /// Scripted crash points over durability events (crash-matrix tests).
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            group_commit: true,
            checkpoint_bytes: 8 * 1024 * 1024,
            sim_fsync_us: 0,
            gate_timeout: std::time::Duration::from_secs(10),
            fault: None,
        }
    }
}

/// The current segment file and append cursor.
#[derive(Debug)]
struct LogState {
    file: fs::File,
    /// First frame seq in this segment (encoded in its name).
    first_seq: u64,
    /// Next frame sequence number.
    next_seq: u64,
    /// Bytes appended (not yet necessarily synced) to this segment.
    bytes: u64,
    /// Bytes appended since the segment's last fsync.
    unsynced: u64,
    /// Bytes appended since the last checkpoint (across rotations).
    since_ckpt: u64,
}

/// Group-commit queue: tickets whose frames are appended but not synced.
#[derive(Debug, Default)]
struct QueueState {
    pending: Vec<Arc<TicketState>>,
    stop: bool,
}

/// Open-transaction gate: checkpoints wait until no thread transaction
/// is open, so a checkpoint never snapshots half a batch.
#[derive(Debug, Default)]
struct GateState {
    open_txs: usize,
    checkpointing: bool,
}

#[derive(Debug)]
struct WalInner {
    dir: PathBuf,
    cfg: WalConfig,
    index: RwLock<HashMap<String, Arc<[u8]>>>,
    log: Mutex<LogState>,
    queue: Mutex<QueueState>,
    queue_cond: Condvar,
    gate: Mutex<GateState>,
    gate_cond: Condvar,
    txs: Mutex<HashMap<ThreadId, WriteBatch>>,
    poisoned: AtomicBool,
    batches: AtomicU64,
    batch_ops: AtomicU64,
    fsyncs: AtomicU64,
    fsync_bytes: AtomicU64,
}

/// A write-ahead-logged, group-commit durable [`ObjectStore`]. See the
/// module docs for the on-disk format and commit protocol.
#[derive(Debug)]
pub struct WalStore {
    inner: Arc<WalInner>,
    committer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl WalStore {
    /// Opens (creating if needed) a store rooted at `dir`, recovering
    /// the index from the newest checkpoint plus the surviving log
    /// tail. Torn trailing frames are discarded by checksum.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory or a segment cannot
    /// be read or created.
    pub fn open(dir: impl AsRef<Path>) -> Result<WalStore, StoreError> {
        WalStore::open_with(dir, WalConfig::default())
    }

    /// [`WalStore::open`] with explicit [`WalConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory or a segment cannot
    /// be read or created.
    pub fn open_with(dir: impl AsRef<Path>, cfg: WalConfig) -> Result<WalStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let (index, next_seq) = recover(&dir)?;
        // Append at `next_seq`. Usually a fresh file; when a segment's
        // very first frame was torn, recovery truncated that segment to
        // empty and this reopens it — safe either way, because recovery
        // guarantees no segment ends in garbage.
        let first_seq = next_seq;
        let path = segment_path(&dir, first_seq);
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        sync_dir(&dir)?;
        let inner = Arc::new(WalInner {
            dir,
            cfg,
            index: RwLock::new(index),
            log: Mutex::new(LogState {
                file,
                first_seq,
                next_seq,
                bytes: 0,
                unsynced: 0,
                since_ckpt: 0,
            }),
            queue: Mutex::new(QueueState::default()),
            queue_cond: Condvar::new(),
            gate: Mutex::new(GateState::default()),
            gate_cond: Condvar::new(),
            txs: Mutex::new(HashMap::new()),
            poisoned: AtomicBool::new(false),
            batches: AtomicU64::new(0),
            batch_ops: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            fsync_bytes: AtomicU64::new(0),
        });
        let committer = if inner.cfg.group_commit {
            let thread_inner = Arc::clone(&inner);
            Some(
                std::thread::Builder::new()
                    .name("wal-commit".to_string())
                    .spawn(move || committer_loop(&thread_inner))
                    .map_err(|e| StoreError::Io(e.to_string()))?,
            )
        } else {
            None
        };
        Ok(WalStore {
            inner,
            committer: Mutex::new(committer),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Whether a simulated crash (scripted fault or real I/O failure)
    /// has poisoned the store. A poisoned store fails every operation;
    /// recovery is reopening the directory.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::SeqCst)
    }

    /// Forces a checkpoint + segment rotation now (tests; normal
    /// operation checkpoints on [`WalConfig::checkpoint_bytes`]).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    pub fn checkpoint_now(&self) -> Result<(), StoreError> {
        self.inner.check_alive()?;
        checkpoint(&self.inner)
    }
}

impl Drop for WalStore {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.inner.queue);
            q.stop = true;
            self.inner.queue_cond.notify_all();
        }
        if let Some(handle) = lock(&self.committer).take() {
            let _ = handle.join();
        }
        // Leave nothing claimed-durable unsynced on a clean shutdown.
        if !self.poisoned() {
            let mut log = lock(&self.inner.log);
            let _ = self.inner.fsync_locked(&mut log);
        }
    }
}

impl WalInner {
    fn crashed() -> StoreError {
        StoreError::Io("simulated crash: wal store is poisoned".to_string())
    }

    fn check_alive(&self) -> Result<(), StoreError> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(Self::crashed());
        }
        Ok(())
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Fail every waiter so no session blocks on a dead committer.
        let mut q = lock(&self.queue);
        for t in q.pending.drain(..) {
            t.complete(Err(Self::crashed()));
        }
        self.queue_cond.notify_all();
    }

    /// One scripted durability event; errors when the crash fires.
    fn fault_event(&self) -> Result<(), StoreError> {
        if let Some(plan) = &self.cfg.fault {
            if plan.event() {
                self.poison();
                return Err(Self::crashed());
            }
        }
        Ok(())
    }

    /// Appends one encoded frame to the current segment (no fsync).
    /// A scripted crash here tears the frame: half its bytes land.
    fn append_locked(&self, log: &mut LogState, frame: &[u8]) -> Result<(), StoreError> {
        if let Some(plan) = &self.cfg.fault {
            if plan.event() {
                let torn = &frame[..frame.len() / 2];
                let _ = log.file.write_all(torn);
                let _ = log.file.sync_data();
                self.poison();
                return Err(Self::crashed());
            }
        }
        log.file.write_all(frame).map_err(|e| {
            self.poison();
            StoreError::Io(e.to_string())
        })?;
        log.bytes += frame.len() as u64;
        log.unsynced += frame.len() as u64;
        log.since_ckpt += frame.len() as u64;
        Ok(())
    }

    /// Fsyncs the current segment, counting the covered bytes.
    fn fsync_locked(&self, log: &mut LogState) -> Result<(), StoreError> {
        if log.unsynced == 0 {
            return Ok(());
        }
        self.fault_event()?;
        if self.cfg.sim_fsync_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.cfg.sim_fsync_us));
        }
        log.file.sync_data().map_err(|e| {
            self.poison();
            StoreError::Io(e.to_string())
        })?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.fsync_bytes.fetch_add(log.unsynced, Ordering::Relaxed);
        log.unsynced = 0;
        Ok(())
    }

    /// Applies a batch to the in-memory index (visibility; durability
    /// is the frame's).
    fn apply_to_index(&self, batch: &WriteBatch) {
        let mut index = self.index.write();
        for op in &batch.ops {
            match op {
                BatchOp::Put { key, value } => {
                    index.insert(key.clone(), Arc::from(value.as_slice()));
                }
                BatchOp::Delete { key } => {
                    index.remove(key);
                }
            }
        }
    }

    /// Encodes, appends, and schedules durability for one batch whose
    /// index application already happened. Core commit path.
    fn commit_frame(&self, batch: &WriteBatch) -> Result<CommitTicket, StoreError> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_ops
            .fetch_add(batch.ops.len() as u64, Ordering::Relaxed);
        let mut log = lock(&self.log);
        let frame = encode_frame(log.next_seq, batch);
        self.append_locked(&mut log, &frame)?;
        log.next_seq += 1;
        if self.cfg.group_commit {
            drop(log);
            let state = TicketState::new();
            let mut q = lock(&self.queue);
            if self.poisoned.load(Ordering::SeqCst) {
                return Err(Self::crashed());
            }
            q.pending.push(Arc::clone(&state));
            self.queue_cond.notify_all();
            Ok(CommitTicket::pending(state))
        } else {
            // Naive mode: this thread pays a full fsync for its own
            // frame, serialized under the log lock — no coalescing.
            self.fsync_locked(&mut log)?;
            let due = log.since_ckpt >= self.cfg.checkpoint_bytes;
            drop(log);
            if due {
                checkpoint(self)?;
            }
            Ok(CommitTicket::ready())
        }
    }

    /// Commits a batch outside any thread transaction and waits for
    /// durability: the plain `put`/`delete`/`rename` path.
    fn commit_and_wait(&self, batch: WriteBatch) -> Result<(), StoreError> {
        validate_batch(&batch)?;
        self.apply_to_index(&batch);
        self.commit_frame(&batch)?.wait()
    }
}

/// Locks a std mutex, ignoring poisoning (a panicked holder's state is
/// still consistent enough to fail shut via `poisoned`).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Rejects a key/value/payload length the frame encoding's u32 length
/// fields cannot represent (see [`MAX_ENCODED`]).
fn check_len(what: &str, len: usize) -> Result<(), StoreError> {
    if len > MAX_ENCODED {
        return Err(StoreError::Io(format!(
            "{what} of {len} bytes exceeds the {MAX_ENCODED}-byte frame encoding limit"
        )));
    }
    Ok(())
}

/// Validates every op and the total encoded payload of a batch. Runs
/// before any index mutation or log append, so an over-long op is
/// rejected cleanly instead of producing an undecodable frame.
fn validate_batch(batch: &WriteBatch) -> Result<(), StoreError> {
    let mut total = 4usize; // op-count prefix
    for op in &batch.ops {
        total = total.saturating_add(match op {
            BatchOp::Put { key, value } => {
                check_len("key", key.len())?;
                check_len("value", value.len())?;
                1 + 4 + key.len() + 4 + value.len()
            }
            BatchOp::Delete { key } => {
                check_len("key", key.len())?;
                1 + 4 + key.len()
            }
        });
    }
    check_len("batch payload", total)
}

impl ObjectStore for WalStore {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.check_alive()?;
        Ok(self.inner.index.read().get(key).map(|v| v.to_vec()))
    }

    fn get_arc(&self, key: &str) -> Result<Option<Arc<[u8]>>, StoreError> {
        self.inner.check_alive()?;
        Ok(self.inner.index.read().get(key).map(Arc::clone))
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        self.inner.check_alive()?;
        check_len("key", key.len())?;
        check_len("value", value.len())?;
        let mut txs = lock(&self.inner.txs);
        if let Some(batch) = txs.get_mut(&std::thread::current().id()) {
            batch.put(key, value);
            drop(txs);
            self.inner
                .index
                .write()
                .insert(key.to_string(), Arc::from(value));
            return Ok(());
        }
        drop(txs);
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.inner.commit_and_wait(batch)
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        self.inner.check_alive()?;
        check_len("key", key.len())?;
        let mut txs = lock(&self.inner.txs);
        if let Some(batch) = txs.get_mut(&std::thread::current().id()) {
            batch.delete(key);
            drop(txs);
            return Ok(self.inner.index.write().remove(key).is_some());
        }
        drop(txs);
        let existed = self.inner.index.read().contains_key(key);
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.inner.commit_and_wait(batch)?;
        Ok(existed)
    }

    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        self.inner.check_alive()?;
        Ok(self.inner.index.read().contains_key(key))
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        self.inner.check_alive()?;
        check_len("key", to.len())?;
        let value = self
            .inner
            .index
            .read()
            .get(from)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(from.to_string()))?;
        let mut batch = WriteBatch::new();
        batch.delete(from);
        batch.put(to, value.to_vec());
        let mut txs = lock(&self.inner.txs);
        if let Some(tx) = txs.get_mut(&std::thread::current().id()) {
            tx.ops.extend(batch.ops.iter().cloned());
            drop(txs);
            self.inner.apply_to_index(&batch);
            return Ok(());
        }
        drop(txs);
        self.inner.commit_and_wait(batch)
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.inner.check_alive()?;
        Ok(self.inner.index.read().keys().cloned().collect())
    }

    fn len(&self) -> Result<usize, StoreError> {
        self.inner.check_alive()?;
        Ok(self.inner.index.read().len())
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        self.inner.check_alive()?;
        Ok(self
            .inner
            .index
            .read()
            .values()
            .map(|v| v.len() as u64)
            .sum())
    }

    fn apply_batch(&self, batch: &WriteBatch) -> Result<(), StoreError> {
        self.submit_batch(batch.clone())?.wait()
    }

    fn submit_batch(&self, batch: WriteBatch) -> Result<CommitTicket, StoreError> {
        self.inner.check_alive()?;
        validate_batch(&batch)?;
        self.inner.apply_to_index(&batch);
        self.inner.commit_frame(&batch)
    }

    fn tx_begin(&self) {
        if self.inner.poisoned.load(Ordering::SeqCst) {
            return;
        }
        let id = std::thread::current().id();
        {
            let txs = lock(&self.inner.txs);
            if txs.contains_key(&id) {
                return; // idempotent per thread
            }
        }
        // Enter the gate: checkpoints wait for open transactions so a
        // snapshot never captures half a batch.
        let mut gate = lock(&self.inner.gate);
        while gate.checkpointing {
            gate = self
                .inner
                .gate_cond
                .wait(gate)
                .unwrap_or_else(|e| e.into_inner());
        }
        gate.open_txs += 1;
        drop(gate);
        lock(&self.inner.txs).insert(id, WriteBatch::new());
    }

    fn tx_seal(&self) -> Result<Option<CommitTicket>, StoreError> {
        let id = std::thread::current().id();
        let Some(batch) = lock(&self.inner.txs).remove(&id) else {
            return Ok(None);
        };
        {
            let mut gate = lock(&self.inner.gate);
            gate.open_txs -= 1;
            self.inner.gate_cond.notify_all();
        }
        self.inner.check_alive()?;
        if batch.is_empty() {
            return Ok(Some(CommitTicket::ready()));
        }
        // Per-op lengths were checked as the tx accumulated; the total
        // payload across the whole batch still needs one check.
        validate_batch(&batch)?;
        // Index state is already applied op-by-op; only the frame
        // remains.
        Ok(Some(self.inner.commit_frame(&batch)?))
    }

    fn io_stats(&self) -> IoStats {
        IoStats {
            batches: self.inner.batches.load(Ordering::Relaxed),
            batch_ops: self.inner.batch_ops.load(Ordering::Relaxed),
            fsyncs: self.inner.fsyncs.load(Ordering::Relaxed),
            fsync_bytes: self.inner.fsync_bytes.load(Ordering::Relaxed),
        }
    }
}

/// The group-commit thread: drain every pending ticket, one fsync for
/// the lot, complete them, checkpoint when due.
fn committer_loop(inner: &Arc<WalInner>) {
    loop {
        let tickets = {
            let mut q = lock(&inner.queue);
            while q.pending.is_empty() && !q.stop {
                q = inner.queue_cond.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.pending.is_empty() && q.stop {
                return;
            }
            std::mem::take(&mut q.pending)
        };
        let (result, ckpt_due) = {
            let mut log = lock(&inner.log);
            let r = inner.fsync_locked(&mut log);
            let due = r.is_ok() && log.since_ckpt >= inner.cfg.checkpoint_bytes;
            (r, due)
        };
        for t in &tickets {
            t.complete(result.clone());
        }
        if result.is_err() {
            // Poisoned: fail everything still arriving, then exit.
            inner.poison();
            return;
        }
        if ckpt_due && checkpoint(inner).is_err() {
            inner.poison();
            return;
        }
    }
}

/// Writes a full-index checkpoint and rotates to a fresh segment,
/// deleting segments and checkpoints the new one supersedes.
fn checkpoint(inner: &WalInner) -> Result<(), StoreError> {
    // Wait out open transactions so the snapshot can't contain half a
    // batch (ops apply to the index as they are made).
    let mut gate = lock(&inner.gate);
    while gate.checkpointing {
        gate = inner
            .gate_cond
            .wait(gate)
            .unwrap_or_else(|e| e.into_inner());
    }
    gate.checkpointing = true;
    let deadline = std::time::Instant::now() + inner.cfg.gate_timeout;
    while gate.open_txs > 0 {
        let now = std::time::Instant::now();
        if now >= deadline {
            gate.checkpointing = false;
            inner.gate_cond.notify_all();
            drop(gate);
            inner.poison();
            return Err(StoreError::Io(format!(
                "checkpoint timed out after {:?} waiting for an open \
                 transaction (tx_begin without tx_seal); store poisoned",
                inner.cfg.gate_timeout
            )));
        }
        gate = inner
            .gate_cond
            .wait_timeout(gate, deadline - now)
            .unwrap_or_else(|e| e.into_inner())
            .0;
    }
    drop(gate);
    let result = checkpoint_inner(inner);
    let mut gate = lock(&inner.gate);
    gate.checkpointing = false;
    inner.gate_cond.notify_all();
    drop(gate);
    if result.is_err() {
        inner.poison();
    }
    result
}

fn checkpoint_inner(inner: &WalInner) -> Result<(), StoreError> {
    let mut log = lock(&inner.log);
    // Everything up to the checkpoint must be durable before the
    // checkpoint can claim to cover it.
    inner.fsync_locked(&mut log)?;
    let upto = log.next_seq;
    let snapshot: Vec<(String, Arc<[u8]>)> = inner
        .index
        .read()
        .iter()
        .map(|(k, v)| (k.clone(), Arc::clone(v)))
        .collect();
    let body = encode_checkpoint(upto, &snapshot);
    let tmp = inner.dir.join(format!("ckpt-{upto:016x}.tmp"));
    let final_path = inner.dir.join(format!("ckpt-{upto:016x}.ck"));
    {
        let mut f = fs::File::create(&tmp).map_err(StoreError::from)?;
        f.write_all(&body).map_err(StoreError::from)?;
        inner.fault_event()?;
        f.sync_data().map_err(StoreError::from)?;
    }
    inner.fault_event()?;
    fs::rename(&tmp, &final_path).map_err(StoreError::from)?;
    sync_dir(&inner.dir)?;
    // Rotate: all later frames land in a fresh segment.
    let new_path = segment_path(&inner.dir, upto);
    let file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&new_path)
        .map_err(StoreError::from)?;
    log.file = file;
    log.first_seq = upto;
    log.bytes = 0;
    log.unsynced = 0;
    log.since_ckpt = 0;
    sync_dir(&inner.dir)?;
    drop(log);
    // Superseded files: every segment whose first seq precedes the
    // checkpoint, and every older checkpoint.
    for entry in fs::read_dir(&inner.dir).map_err(StoreError::from)? {
        let entry = entry.map_err(StoreError::from)?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let stale = match parse_name(&name) {
            // The rotated-away segment (`old_path`) has first_seq < upto.
            Some(WalFile::Segment(seq)) => seq < upto,
            Some(WalFile::Checkpoint(seq)) => seq < upto,
            Some(WalFile::Temp) => true,
            None => false,
        };
        if stale {
            inner.fault_event()?;
            fs::remove_file(entry.path()).map_err(StoreError::from)?;
        }
    }
    sync_dir(&inner.dir)?;
    Ok(())
}

/// A directory entry the WAL owns.
enum WalFile {
    Segment(u64),
    Checkpoint(u64),
    Temp,
}

fn parse_name(name: &str) -> Option<WalFile> {
    if let Some(hex) = name
        .strip_prefix("wal-")
        .and_then(|s| s.strip_suffix(".log"))
    {
        return u64::from_str_radix(hex, 16).ok().map(WalFile::Segment);
    }
    if let Some(hex) = name
        .strip_prefix("ckpt-")
        .and_then(|s| s.strip_suffix(".ck"))
    {
        return u64::from_str_radix(hex, 16).ok().map(WalFile::Checkpoint);
    }
    if name.starts_with("ckpt-") && name.ends_with(".tmp") {
        return Some(WalFile::Temp);
    }
    None
}

fn segment_path(dir: &Path, first_seq: u64) -> PathBuf {
    dir.join(format!("wal-{first_seq:016x}.log"))
}

fn sync_dir(dir: &Path) -> Result<(), StoreError> {
    // Directory fsync makes creations/renames/unlinks durable. Some
    // filesystems refuse fsync on directories; degrade silently there.
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

// ------------------------------------------------------------ encoding

/// CRC-32 (IEEE), bytewise table-free variant — plenty for frame
/// integrity checking without a dependency.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

fn encode_ops(ops: &[BatchOp]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            BatchOp::Put { key, value } => {
                out.push(0);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
                out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                out.extend_from_slice(value);
            }
            BatchOp::Delete { key } => {
                out.push(1);
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key.as_bytes());
            }
        }
    }
    out
}

fn decode_ops(payload: &[u8]) -> Option<Vec<BatchOp>> {
    let mut at = 0usize;
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let s = payload.get(*at..*at + n)?;
        *at += n;
        Some(s)
    };
    let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
    let mut ops = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let tag = take(&mut at, 1)?[0];
        let key_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
        let key = String::from_utf8(take(&mut at, key_len)?.to_vec()).ok()?;
        match tag {
            0 => {
                let val_len = u32::from_le_bytes(take(&mut at, 4)?.try_into().ok()?) as usize;
                let value = take(&mut at, val_len)?.to_vec();
                ops.push(BatchOp::Put { key, value });
            }
            1 => ops.push(BatchOp::Delete { key }),
            _ => return None,
        }
    }
    if at != payload.len() {
        return None;
    }
    Some(ops)
}

fn encode_frame(seq: u64, batch: &WriteBatch) -> Vec<u8> {
    let payload = encode_ops(&batch.ops);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc_input = Vec::with_capacity(12 + payload.len());
    crc_input.extend_from_slice(&seq.to_le_bytes());
    crc_input.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    crc_input.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// One recovered frame: `(seq, ops, bytes consumed)`.
fn decode_frame(data: &[u8]) -> Option<(u64, Vec<BatchOp>, usize)> {
    if data.len() < FRAME_HEADER {
        return None;
    }
    if u32::from_le_bytes(data[..4].try_into().ok()?) != FRAME_MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(data[4..12].try_into().ok()?);
    let len = u32::from_le_bytes(data[12..16].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(data[16..20].try_into().ok()?);
    let payload = data.get(FRAME_HEADER..FRAME_HEADER + len)?;
    let mut crc_input = Vec::with_capacity(12 + len);
    crc_input.extend_from_slice(&data[4..16]);
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != crc {
        return None;
    }
    let ops = decode_ops(payload)?;
    Some((seq, ops, FRAME_HEADER + len))
}

fn encode_checkpoint(upto: u64, entries: &[(String, Arc<[u8]>)]) -> Vec<u8> {
    let ops: Vec<BatchOp> = entries
        .iter()
        .map(|(k, v)| BatchOp::Put {
            key: k.clone(),
            value: v.to_vec(),
        })
        .collect();
    let payload = encode_ops(&ops);
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    out.extend_from_slice(&upto.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut crc_input = Vec::with_capacity(12 + payload.len());
    crc_input.extend_from_slice(&upto.to_le_bytes());
    crc_input.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    crc_input.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

fn decode_checkpoint(data: &[u8]) -> Option<(u64, Vec<BatchOp>)> {
    if data.len() < FRAME_HEADER {
        return None;
    }
    if u32::from_le_bytes(data[..4].try_into().ok()?) != CKPT_MAGIC {
        return None;
    }
    let upto = u64::from_le_bytes(data[4..12].try_into().ok()?);
    let len = u32::from_le_bytes(data[12..16].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(data[16..20].try_into().ok()?);
    if data.len() != FRAME_HEADER + len {
        return None;
    }
    let payload = &data[FRAME_HEADER..];
    let mut crc_input = Vec::with_capacity(12 + len);
    crc_input.extend_from_slice(&data[4..16]);
    crc_input.extend_from_slice(payload);
    if crc32(&crc_input) != crc {
        return None;
    }
    Some((upto, decode_ops(payload)?))
}

// ------------------------------------------------------------ recovery

/// The recovered in-memory index plus the next segment sequence number.
type Recovered = (HashMap<String, Arc<[u8]>>, u64);

/// Rebuilds the index: newest valid checkpoint, then surviving log
/// frames in sequence order. Returns `(index, next_seq)`.
fn recover(dir: &Path) -> Result<Recovered, StoreError> {
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    let mut checkpoints: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        match parse_name(&name) {
            Some(WalFile::Segment(seq)) => segments.push((seq, entry.path())),
            Some(WalFile::Checkpoint(seq)) => checkpoints.push((seq, entry.path())),
            // A .tmp checkpoint is an uncommitted crash leftover.
            Some(WalFile::Temp) => {
                let _ = fs::remove_file(entry.path());
            }
            None => {}
        }
    }
    checkpoints.sort_by_key(|(seq, _)| *seq);
    segments.sort_by_key(|(seq, _)| *seq);

    let mut index: HashMap<String, Arc<[u8]>> = HashMap::new();
    let mut next_seq = 0u64;
    // Newest checkpoint that actually decodes (a crash can leave a
    // renamed-but-garbage file only if rename itself tore, which POSIX
    // excludes — but verify anyway and fall back).
    for (seq, path) in checkpoints.iter().rev() {
        let Ok(data) = fs::read(path) else { continue };
        if let Some((upto, ops)) = decode_checkpoint(&data) {
            for op in ops {
                if let BatchOp::Put { key, value } = op {
                    index.insert(key, Arc::from(value.as_slice()));
                }
            }
            next_seq = upto.max(*seq);
            break;
        }
    }

    // Replay later frames in segment order; inside a segment, frames
    // are sequential. A tear stops only its own segment: a higher
    // segment's frames were written after an earlier recovery already
    // discarded that tear, so they are valid continuations.
    for (_first_seq, path) in &segments {
        let data = fs::read(path)?;
        let mut at = 0usize;
        while at < data.len() {
            let Some((seq, ops, consumed)) = decode_frame(&data[at..]) else {
                break; // torn or corrupt tail: discard the rest
            };
            at += consumed;
            if seq < next_seq {
                continue; // already covered by the checkpoint
            }
            for op in ops {
                match op {
                    BatchOp::Put { key, value } => {
                        index.insert(key, Arc::from(value.as_slice()));
                    }
                    BatchOp::Delete { key } => {
                        index.remove(&key);
                    }
                }
            }
            next_seq = seq + 1;
        }
        if at < data.len() {
            // Physically discard the torn tail, not just skip it: if the
            // tear hit a segment's FIRST frame, `next_seq` does not
            // advance past this segment, so `open` reuses the same file
            // name — appending valid frames after leftover garbage would
            // make the NEXT recovery stop at offset 0 and silently drop
            // every acked write that followed.
            let file = fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(at as u64)?;
            file.sync_data()?;
        }
    }
    Ok((index, next_seq))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seg-wal-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = tempdir("roundtrip");
        {
            let s = WalStore::open(&dir).unwrap();
            s.put("a", b"1").unwrap();
            s.put("b/c", b"22").unwrap();
            s.delete("a").unwrap();
            s.rename("b/c", "d").unwrap();
            assert_eq!(s.get("d").unwrap(), Some(b"22".to_vec()));
            assert_eq!(s.len().unwrap(), 1);
        }
        let s = WalStore::open(&dir).unwrap();
        assert_eq!(s.get("a").unwrap(), None);
        assert_eq!(s.get("d").unwrap(), Some(b"22".to_vec()));
        assert_eq!(s.total_bytes().unwrap(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_is_atomic_across_reopen() {
        let dir = tempdir("batch");
        {
            let s = WalStore::open(&dir).unwrap();
            let mut b = WriteBatch::new();
            b.put("x", b"1".to_vec());
            b.put("y", b"2".to_vec());
            b.delete("x");
            s.submit_batch(b).unwrap().wait().unwrap();
        }
        let s = WalStore::open(&dir).unwrap();
        assert_eq!(s.get("x").unwrap(), None);
        assert_eq!(s.get("y").unwrap(), Some(b"2".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn thread_tx_reads_own_writes_and_seals_once() {
        let dir = tempdir("tx");
        let s = WalStore::open(&dir).unwrap();
        s.tx_begin();
        s.tx_begin(); // idempotent
        s.put("k", b"v").unwrap();
        assert_eq!(s.get("k").unwrap(), Some(b"v".to_vec()));
        let ticket = s.tx_seal().unwrap().expect("open tx seals");
        ticket.wait().unwrap();
        assert!(s.tx_seal().unwrap().is_none(), "second seal is a no-op");
        drop(s);
        let s = WalStore::open(&dir).unwrap();
        assert_eq!(s.get("k").unwrap(), Some(b"v".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_wholesale() {
        let dir = tempdir("torn");
        {
            let s = WalStore::open(&dir).unwrap();
            s.put("keep", b"durable").unwrap();
            let mut b = WriteBatch::new();
            b.put("lost1", vec![7u8; 64]);
            b.put("lost2", vec![8u8; 64]);
            s.submit_batch(b).unwrap().wait().unwrap();
        }
        // Truncate the newest segment mid-frame: the whole last batch
        // must vanish, never half of it.
        let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.to_string_lossy().contains("wal-"))
            .collect();
        segs.sort();
        let tail = segs.last().unwrap();
        let data = fs::read(tail).unwrap();
        fs::write(tail, &data[..data.len() - 40]).unwrap();
        let s = WalStore::open(&dir).unwrap();
        assert_eq!(s.get("keep").unwrap(), Some(b"durable".to_vec()));
        assert_eq!(s.get("lost1").unwrap(), None);
        assert_eq!(s.get("lost2").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_survives() {
        let dir = tempdir("ckpt");
        {
            let s = WalStore::open_with(
                &dir,
                WalConfig {
                    checkpoint_bytes: 256,
                    ..WalConfig::default()
                },
            )
            .unwrap();
            for i in 0..50 {
                s.put(&format!("k{i}"), &[i as u8; 32]).unwrap();
            }
            s.delete("k0").unwrap();
            s.checkpoint_now().unwrap();
        }
        let s = WalStore::open(&dir).unwrap();
        assert_eq!(s.len().unwrap(), 49);
        assert_eq!(s.get("k7").unwrap(), Some(vec![7u8; 32]));
        assert_eq!(s.get("k0").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn naive_mode_fsyncs_per_frame() {
        let dir = tempdir("naive");
        let s = WalStore::open_with(
            &dir,
            WalConfig {
                group_commit: false,
                ..WalConfig::default()
            },
        )
        .unwrap();
        for i in 0..10 {
            s.put(&format!("k{i}"), b"v").unwrap();
        }
        let stats = s.io_stats();
        assert_eq!(stats.batches, 10);
        assert_eq!(stats.fsyncs, 10, "naive mode: one fsync per frame");
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_coalesces_fsyncs() {
        let dir = tempdir("group");
        let s = Arc::new(
            WalStore::open_with(
                &dir,
                WalConfig {
                    sim_fsync_us: 2000,
                    ..WalConfig::default()
                },
            )
            .unwrap(),
        );
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..5 {
                    s.put(&format!("t{t}/k{i}"), &[t as u8; 16]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = s.io_stats();
        assert_eq!(stats.batches, 40);
        assert!(
            stats.fsyncs < stats.batches,
            "forty 2ms-fsync frames from 8 threads must coalesce: {} fsyncs",
            stats.fsyncs
        );
        drop(s);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_first_frame_does_not_eat_later_acked_writes() {
        let dir = tempdir("torn-first");
        {
            // Event 1 is the very first frame's append: it tears, so the
            // segment holds nothing but garbage.
            let s = WalStore::open_with(
                &dir,
                WalConfig {
                    group_commit: false,
                    fault: Some(Arc::new(FaultPlan::crash_at(1))),
                    ..WalConfig::default()
                },
            )
            .unwrap();
            assert!(s.put("a", b"torn").is_err());
        }
        {
            // Recovery discards the torn frame (no seq advance) and must
            // leave a segment that later appends extend validly.
            let s = WalStore::open(&dir).unwrap();
            assert_eq!(s.get("a").unwrap(), None);
            s.put("b", b"acked").unwrap();
        }
        let s = WalStore::open(&dir).unwrap();
        assert_eq!(
            s.get("b").unwrap(),
            Some(b"acked".to_vec()),
            "acked post-recovery write must survive the next recovery"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn leaked_transaction_times_out_checkpoint_instead_of_wedging() {
        let dir = tempdir("gate");
        let s = WalStore::open_with(
            &dir,
            WalConfig {
                gate_timeout: std::time::Duration::from_millis(50),
                ..WalConfig::default()
            },
        )
        .unwrap();
        s.put("k", b"v").unwrap();
        // A thread that opens a transaction and dies without sealing it:
        // the open-transaction count is leaked for good.
        std::thread::scope(|scope| {
            scope.spawn(|| s.tx_begin()).join().unwrap();
        });
        let err = s.checkpoint_now().unwrap_err();
        assert!(err.to_string().contains("timed out"), "got: {err}");
        assert!(s.poisoned(), "a timed-out gate fails shut");
        drop(s);
        // Reopening recovers everything that was durable.
        let s = WalStore::open(&dir).unwrap();
        assert_eq!(s.get("k").unwrap(), Some(b"v".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_ops_are_rejected_before_encoding() {
        assert!(check_len("value", MAX_ENCODED).is_ok());
        let err = check_len("value", MAX_ENCODED + 1).unwrap_err();
        assert!(
            err.to_string().contains("frame encoding limit"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn scripted_crash_poisons_then_recovery_is_consistent() {
        let dir = tempdir("crash");
        let plan = Arc::new(FaultPlan::crash_at(2));
        {
            let s = WalStore::open_with(
                &dir,
                WalConfig {
                    group_commit: false,
                    fault: Some(Arc::clone(&plan)),
                    ..WalConfig::default()
                },
            )
            .unwrap();
            // append is event 1, its fsync is event 2 — the crash point.
            assert!(s.put("first", b"1").is_err());
            assert!(plan.tripped());
            assert!(s.poisoned());
            assert!(s.get("first").is_err(), "everything fails after a crash");
        }
        let s = WalStore::open(&dir).unwrap();
        // The first frame was appended but the crash killed its fsync;
        // both all-present and all-absent are legal for it, and the
        // store must be fully operational either way.
        for key in ["first", "second"] {
            let _ = s.get(key).unwrap();
        }
        s.put("after", b"recovered").unwrap();
        assert_eq!(s.get("after").unwrap(), Some(b"recovered".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }
}
