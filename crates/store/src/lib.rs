//! Untrusted object storage for the SeGShare reproduction.
//!
//! In the paper's architecture (Fig. 1), the *untrusted file manager*
//! performs the actual memory/disk accesses for the enclave; everything it
//! touches is attacker-controlled (§III-B). This crate models that storage
//! layer:
//!
//! * [`ObjectStore`] — the interface the untrusted file manager programs
//!   against.
//! * [`MemStore`] — an in-memory store (the common test/bench substrate).
//! * [`DirStore`] — an on-disk store for persistence across runs.
//! * [`CountingStore`] — instrumentation wrapper (op and byte counters)
//!   used by the benchmark harness to report storage overheads.
//! * [`AdversaryStore`] — a malicious-cloud wrapper that can tamper with,
//!   roll back, or delete objects, used by the threat-model tests to show
//!   the enclave detects every such manipulation.
//!
//! # Example
//!
//! ```
//! use seg_store::{MemStore, ObjectStore};
//!
//! # fn main() -> Result<(), seg_store::StoreError> {
//! let store = MemStore::new();
//! store.put("content/f", b"ciphertext")?;
//! assert_eq!(store.get("content/f")?, Some(b"ciphertext".to_vec()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod adversary;
mod counting;
mod dir;
mod mem;

pub use adversary::AdversaryStore;
pub use counting::{CountingStore, StoreStats};
pub use dir::DirStore;
pub use mem::MemStore;

use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors from storage backends.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying I/O failure (message carries the OS error text).
    Io(String),
    /// `rename` was asked to move a key that does not exist.
    NotFound(String),
    /// Injected failure from [`AdversaryStore`].
    Injected,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "storage i/o error: {msg}"),
            StoreError::NotFound(key) => write!(f, "object not found: {key}"),
            StoreError::Injected => f.write_str("injected storage failure"),
        }
    }
}

impl Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err.to_string())
    }
}

/// A flat keyed object store: the storage interface of the untrusted file
/// manager.
///
/// Keys are arbitrary UTF-8 strings (SeGShare uses file-system paths, or
/// HMAC hex strings when the filename-hiding extension is active, §V-C).
/// All methods take `&self`; implementations are internally synchronized
/// so the server host can serve concurrent sessions.
pub trait ObjectStore: Send + Sync {
    /// Reads the object at `key`, or `None` if absent.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError>;

    /// Reads the object at `key` as a shared, immutable buffer.
    ///
    /// Stores that keep bodies reference-counted internally (like
    /// [`MemStore`]) return them without copying; the default falls back
    /// to [`ObjectStore::get`] plus one conversion.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn get_arc(&self, key: &str) -> Result<Option<Arc<[u8]>>, StoreError> {
        Ok(self.get(key)?.map(Arc::from))
    }

    /// Creates or replaces the object at `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError>;

    /// Deletes the object at `key`; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn delete(&self, key: &str) -> Result<bool, StoreError>;

    /// Whether an object exists at `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        Ok(self.get(key)?.is_some())
    }

    /// Atomically moves the object at `from` to `to` (replacing any
    /// existing object at `to`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if `from` does not exist.
    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        match self.get(from)? {
            Some(value) => {
                self.put(to, &value)?;
                self.delete(from)?;
                Ok(())
            }
            None => Err(StoreError::NotFound(from.to_string())),
        }
    }

    /// Lists all keys, in unspecified order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn list(&self) -> Result<Vec<String>, StoreError>;

    /// Lists keys starting with `prefix`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        Ok(self
            .list()?
            .into_iter()
            .filter(|k| k.starts_with(prefix))
            .collect())
    }

    /// Number of stored objects.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn len(&self) -> Result<usize, StoreError> {
        Ok(self.list()?.len())
    }

    /// Whether the store holds no objects.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }

    /// Total bytes of stored object values (storage-overhead accounting).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn total_bytes(&self) -> Result<u64, StoreError> {
        let mut total = 0u64;
        for key in self.list()? {
            if let Some(v) = self.get(&key)? {
                total += v.len() as u64;
            }
        }
        Ok(total)
    }
}

impl<S: ObjectStore + ?Sized> ObjectStore for Arc<S> {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        (**self).get(key)
    }
    fn get_arc(&self, key: &str) -> Result<Option<Arc<[u8]>>, StoreError> {
        (**self).get_arc(key)
    }
    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        (**self).put(key, value)
    }
    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        (**self).delete(key)
    }
    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        (**self).exists(key)
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        (**self).rename(from, to)
    }
    fn list(&self) -> Result<Vec<String>, StoreError> {
        (**self).list()
    }
    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        (**self).list_prefix(prefix)
    }
    fn len(&self) -> Result<usize, StoreError> {
        (**self).len()
    }
    fn is_empty(&self) -> Result<bool, StoreError> {
        (**self).is_empty()
    }
    fn total_bytes(&self) -> Result<u64, StoreError> {
        (**self).total_bytes()
    }
}
