//! Untrusted object storage for the SeGShare reproduction.
//!
//! In the paper's architecture (Fig. 1), the *untrusted file manager*
//! performs the actual memory/disk accesses for the enclave; everything it
//! touches is attacker-controlled (§III-B). This crate models that storage
//! layer:
//!
//! * [`ObjectStore`] — the interface the untrusted file manager programs
//!   against.
//! * [`MemStore`] — an in-memory store (the common test/bench substrate).
//! * [`DirStore`] — an on-disk store for persistence across runs.
//! * [`CountingStore`] — instrumentation wrapper (op and byte counters)
//!   used by the benchmark harness to report storage overheads.
//! * [`AdversaryStore`] — a malicious-cloud wrapper that can tamper with,
//!   roll back, or delete objects, used by the threat-model tests to show
//!   the enclave detects every such manipulation.
//! * [`WalStore`] — a write-ahead-logged, group-commit durable store
//!   (append-only checksummed segments, in-memory index, checkpoints,
//!   crash recovery).
//! * [`FaultStore`] — a crash/failpoint wrapper (fail, crash, or tear
//!   the Nth write) used by the crash-matrix tests.
//! * [`PrefixStore`] — a key-prefixed view of a shared store, so several
//!   logical stores can share one write-ahead log (and therefore one
//!   atomic commit unit).
//!
//! # Example
//!
//! ```
//! use seg_store::{MemStore, ObjectStore};
//!
//! # fn main() -> Result<(), seg_store::StoreError> {
//! let store = MemStore::new();
//! store.put("content/f", b"ciphertext")?;
//! assert_eq!(store.get("content/f")?, Some(b"ciphertext".to_vec()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod adversary;
mod counting;
mod dir;
mod fault;
mod mem;
mod prefix;
mod wal;

pub use adversary::AdversaryStore;
pub use counting::{CountingStore, StoreStats};
pub use dir::DirStore;
pub use fault::{FaultAction, FaultPlan, FaultStore};
pub use mem::MemStore;
pub use prefix::PrefixStore;
pub use wal::{WalConfig, WalStore};

use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors from storage backends.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// An underlying I/O failure (message carries the OS error text).
    Io(String),
    /// `rename` was asked to move a key that does not exist.
    NotFound(String),
    /// Injected failure from [`AdversaryStore`].
    Injected,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "storage i/o error: {msg}"),
            StoreError::NotFound(key) => write!(f, "object not found: {key}"),
            StoreError::Injected => f.write_str("injected storage failure"),
        }
    }
}

impl Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err.to_string())
    }
}

/// One mutation inside a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Create or replace the object at `key`.
    Put {
        /// Target key.
        key: String,
        /// New value.
        value: Vec<u8>,
    },
    /// Delete the object at `key` (absent keys are a no-op).
    Delete {
        /// Target key.
        key: String,
    },
}

/// An ordered group of mutations that a durable backend commits as one
/// atomic, singly-fsynced unit: after a crash, either every op in the
/// batch is visible or none is.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    /// The mutations, in application order.
    pub ops: Vec<BatchOp>,
}

impl WriteBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> WriteBatch {
        WriteBatch::default()
    }

    /// Appends a put.
    pub fn put(&mut self, key: impl Into<String>, value: impl Into<Vec<u8>>) {
        self.ops.push(BatchOp::Put {
            key: key.into(),
            value: value.into(),
        });
    }

    /// Appends a delete.
    pub fn delete(&mut self, key: impl Into<String>) {
        self.ops.push(BatchOp::Delete { key: key.into() });
    }

    /// Number of ops in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no ops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Shared completion state behind a pending [`CommitTicket`].
#[derive(Debug)]
pub(crate) struct TicketState {
    result: std::sync::Mutex<Option<Result<(), StoreError>>>,
    cond: std::sync::Condvar,
}

impl TicketState {
    pub(crate) fn new() -> Arc<TicketState> {
        Arc::new(TicketState {
            result: std::sync::Mutex::new(None),
            cond: std::sync::Condvar::new(),
        })
    }

    /// Completes the ticket, waking every waiter.
    pub(crate) fn complete(&self, result: Result<(), StoreError>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(result);
        }
        self.cond.notify_all();
    }
}

/// A handle to a submitted batch's durability: [`CommitTicket::wait`]
/// blocks until the batch is durable (fsynced) or the backend failed.
///
/// Volatile backends return already-completed tickets, so callers can
/// wait unconditionally.
#[derive(Debug, Clone)]
pub struct CommitTicket {
    inner: Option<Arc<TicketState>>,
}

impl CommitTicket {
    /// A ticket that is already durable (volatile or write-through
    /// backends).
    #[must_use]
    pub fn ready() -> CommitTicket {
        CommitTicket { inner: None }
    }

    pub(crate) fn pending(state: Arc<TicketState>) -> CommitTicket {
        CommitTicket { inner: Some(state) }
    }

    /// Blocks until the batch behind this ticket is durable.
    ///
    /// # Errors
    ///
    /// Returns the backend failure that prevented durability (after
    /// which the batch's visibility is undefined until recovery).
    pub fn wait(&self) -> Result<(), StoreError> {
        let Some(state) = &self.inner else {
            return Ok(());
        };
        let mut slot = state.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = state.cond.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Durability counters reported by [`ObjectStore::io_stats`]: how many
/// batches and fsyncs the backend performed, and how many bytes each
/// fsync covered. Volatile backends report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Batches committed (a plain `put`/`delete` on a batching backend
    /// counts as a one-op batch).
    pub batches: u64,
    /// Total ops across all committed batches.
    pub batch_ops: u64,
    /// Physical fsync calls issued.
    pub fsyncs: u64,
    /// Total log bytes made durable across all fsyncs.
    pub fsync_bytes: u64,
}

/// A flat keyed object store: the storage interface of the untrusted file
/// manager.
///
/// Keys are arbitrary UTF-8 strings (SeGShare uses file-system paths, or
/// HMAC hex strings when the filename-hiding extension is active, §V-C).
/// All methods take `&self`; implementations are internally synchronized
/// so the server host can serve concurrent sessions.
pub trait ObjectStore: Send + Sync {
    /// Reads the object at `key`, or `None` if absent.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError>;

    /// Reads the object at `key` as a shared, immutable buffer.
    ///
    /// Stores that keep bodies reference-counted internally (like
    /// [`MemStore`]) return them without copying; the default falls back
    /// to [`ObjectStore::get`] plus one conversion.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn get_arc(&self, key: &str) -> Result<Option<Arc<[u8]>>, StoreError> {
        Ok(self.get(key)?.map(Arc::from))
    }

    /// Creates or replaces the object at `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError>;

    /// Deletes the object at `key`; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn delete(&self, key: &str) -> Result<bool, StoreError>;

    /// Whether an object exists at `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        Ok(self.get(key)?.is_some())
    }

    /// Atomically moves the object at `from` to `to` (replacing any
    /// existing object at `to`).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if `from` does not exist.
    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        match self.get(from)? {
            Some(value) => {
                self.put(to, &value)?;
                self.delete(from)?;
                Ok(())
            }
            None => Err(StoreError::NotFound(from.to_string())),
        }
    }

    /// Lists all keys, in unspecified order.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn list(&self) -> Result<Vec<String>, StoreError>;

    /// Lists keys starting with `prefix`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        Ok(self
            .list()?
            .into_iter()
            .filter(|k| k.starts_with(prefix))
            .collect())
    }

    /// Number of stored objects.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn len(&self) -> Result<usize, StoreError> {
        Ok(self.list()?.len())
    }

    /// Whether the store holds no objects.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }

    /// Total bytes of stored object values (storage-overhead accounting).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn total_bytes(&self) -> Result<u64, StoreError> {
        let mut total = 0u64;
        for key in self.list()? {
            if let Some(v) = self.get(&key)? {
                total += v.len() as u64;
            }
        }
        Ok(total)
    }

    /// Applies every op in `batch`, atomically where the backend can
    /// (single lock hold on [`MemStore`], single log frame on
    /// [`WalStore`]). The default applies op-by-op with no atomicity —
    /// acceptable for volatile stores, where there is no crash to tear
    /// the batch.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn apply_batch(&self, batch: &WriteBatch) -> Result<(), StoreError> {
        for op in &batch.ops {
            match op {
                BatchOp::Put { key, value } => self.put(key, value)?,
                BatchOp::Delete { key } => {
                    self.delete(key)?;
                }
            }
        }
        Ok(())
    }

    /// Applies `batch` and returns a durability ticket. Durable backends
    /// make the whole batch one atomic commit unit and complete the
    /// ticket when it is fsynced; the default applies immediately and
    /// returns a ready ticket.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn submit_batch(&self, batch: WriteBatch) -> Result<CommitTicket, StoreError> {
        self.apply_batch(&batch)?;
        Ok(CommitTicket::ready())
    }

    /// Begins a thread-local transaction: until [`ObjectStore::tx_seal`],
    /// this thread's `put`/`delete`/`rename` calls apply to the visible
    /// state immediately (read-your-own-writes) but accumulate into one
    /// pending [`WriteBatch`] instead of becoming durable individually.
    /// Idempotent per thread; a no-op on backends without batching.
    fn tx_begin(&self) {}

    /// Seals this thread's open transaction (if any) into one atomic
    /// commit unit and returns its durability ticket. `Ok(None)` when no
    /// transaction is open — so callers can seal unconditionally — and
    /// on backends without batching.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on backend failure.
    fn tx_seal(&self) -> Result<Option<CommitTicket>, StoreError> {
        Ok(None)
    }

    /// Durability counters (zeros on volatile backends).
    fn io_stats(&self) -> IoStats {
        IoStats::default()
    }
}

impl<S: ObjectStore + ?Sized> ObjectStore for Arc<S> {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        (**self).get(key)
    }
    fn get_arc(&self, key: &str) -> Result<Option<Arc<[u8]>>, StoreError> {
        (**self).get_arc(key)
    }
    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        (**self).put(key, value)
    }
    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        (**self).delete(key)
    }
    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        (**self).exists(key)
    }
    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        (**self).rename(from, to)
    }
    fn list(&self) -> Result<Vec<String>, StoreError> {
        (**self).list()
    }
    fn list_prefix(&self, prefix: &str) -> Result<Vec<String>, StoreError> {
        (**self).list_prefix(prefix)
    }
    fn len(&self) -> Result<usize, StoreError> {
        (**self).len()
    }
    fn is_empty(&self) -> Result<bool, StoreError> {
        (**self).is_empty()
    }
    fn total_bytes(&self) -> Result<u64, StoreError> {
        (**self).total_bytes()
    }
    fn apply_batch(&self, batch: &WriteBatch) -> Result<(), StoreError> {
        (**self).apply_batch(batch)
    }
    fn submit_batch(&self, batch: WriteBatch) -> Result<CommitTicket, StoreError> {
        (**self).submit_batch(batch)
    }
    fn tx_begin(&self) {
        (**self).tx_begin();
    }
    fn tx_seal(&self) -> Result<Option<CommitTicket>, StoreError> {
        (**self).tx_seal()
    }
    fn io_stats(&self) -> IoStats {
        (**self).io_stats()
    }
}
