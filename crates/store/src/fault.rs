//! Scripted fail/crash points for durability testing.
//!
//! Two layers:
//!
//! * [`FaultPlan`] — a countdown over *durability events* (log appends,
//!   fsyncs, checkpoint renames, segment deletions) consumed by
//!   [`WalStore`](crate::WalStore). When the countdown hits the chosen
//!   event, the store simulates a machine crash: appends are torn
//!   mid-frame, every later operation fails, and the only way forward
//!   is reopening the directory — which is exactly what the
//!   crash-matrix tests do at every event index.
//! * [`FaultStore`] — an [`ObjectStore`] wrapper (companion to
//!   [`AdversaryStore`](crate::AdversaryStore)) that fails, crashes,
//!   tears, or silently drops the Nth write, for backends like
//!   [`DirStore`](crate::DirStore) that have no event stream of their
//!   own.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use crate::{BatchOp, ObjectStore, StoreError, WriteBatch};

/// The kind of durability event a [`FaultPlan`] counts (reported back
/// to tests so a matrix can label what it killed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the write with an error, leaving the store usable.
    FailWrite,
    /// Apply the write, then poison the store (crash after success).
    CrashAfterWrite,
    /// Apply a truncated prefix of the write, then poison the store.
    TornWrite,
    /// Report success without writing, then poison the store — models
    /// an fsync that claimed durability the disk never delivered.
    SilentDrop,
}

/// A deterministic crash script over a store's durability events.
///
/// `crash_at(n)` arms the plan so the `n`-th event (1-based) triggers
/// the simulated crash; [`FaultPlan::events`] reports how many events
/// the store has produced so far, which lets a test matrix first do a
/// clean run to learn the event count, then kill at every index.
#[derive(Debug, Default)]
pub struct FaultPlan {
    countdown: AtomicI64,
    events: AtomicU64,
    tripped: AtomicBool,
}

impl FaultPlan {
    /// A disarmed plan (counts events, never crashes).
    #[must_use]
    pub fn new() -> FaultPlan {
        FaultPlan {
            countdown: AtomicI64::new(i64::MIN),
            events: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// A plan that crashes on the `n`-th durability event (1-based).
    #[must_use]
    pub fn crash_at(n: u64) -> FaultPlan {
        let plan = FaultPlan::new();
        plan.countdown
            .store(i64::try_from(n).unwrap_or(i64::MAX), Ordering::SeqCst);
        plan
    }

    /// Durability events observed so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }

    /// Whether the scripted crash has fired.
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::SeqCst)
    }

    /// Records one durability event; returns `true` when this event is
    /// the scripted crash point.
    pub(crate) fn event(&self) -> bool {
        self.events.fetch_add(1, Ordering::SeqCst);
        if self.countdown.load(Ordering::SeqCst) == i64::MIN {
            return false;
        }
        if self.countdown.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.tripped.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }
}

/// An [`ObjectStore`] wrapper with scripted write failpoints.
///
/// Reads always pass through; the `n`-th *write* (put, delete, rename,
/// or batch) triggers the configured [`FaultAction`]. After a crashing
/// action the store is poisoned: every subsequent operation fails, as
/// after a real machine crash.
#[derive(Debug)]
pub struct FaultStore<S> {
    inner: S,
    action: FaultAction,
    countdown: AtomicI64,
    poisoned: AtomicBool,
}

impl<S: ObjectStore> FaultStore<S> {
    /// Wraps `inner`; the `n`-th write (1-based) triggers `action`.
    #[must_use]
    pub fn new(inner: S, action: FaultAction, n: u64) -> FaultStore<S> {
        FaultStore {
            inner,
            action,
            countdown: AtomicI64::new(i64::try_from(n).unwrap_or(i64::MAX)),
            poisoned: AtomicBool::new(false),
        }
    }

    /// A reference to the wrapped store.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Whether the scripted fault has fired and poisoned the store.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    fn crashed() -> StoreError {
        StoreError::Io("simulated crash".to_string())
    }

    fn check_alive(&self) -> Result<(), StoreError> {
        if self.poisoned.load(Ordering::SeqCst) {
            return Err(Self::crashed());
        }
        Ok(())
    }

    /// Counts one write; `true` means this write is the failpoint.
    fn write_event(&self) -> bool {
        self.countdown.fetch_sub(1, Ordering::SeqCst) == 1
    }

    fn faulted_put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        match self.action {
            FaultAction::FailWrite => Err(StoreError::Injected),
            FaultAction::CrashAfterWrite => {
                self.inner.put(key, value)?;
                self.poisoned.store(true, Ordering::SeqCst);
                Err(Self::crashed())
            }
            FaultAction::TornWrite => {
                self.inner.put(key, &value[..value.len() / 2])?;
                self.poisoned.store(true, Ordering::SeqCst);
                Err(Self::crashed())
            }
            FaultAction::SilentDrop => {
                self.poisoned.store(true, Ordering::SeqCst);
                Ok(())
            }
        }
    }
}

impl<S: ObjectStore> ObjectStore for FaultStore<S> {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.check_alive()?;
        self.inner.get(key)
    }

    fn get_arc(&self, key: &str) -> Result<Option<std::sync::Arc<[u8]>>, StoreError> {
        self.check_alive()?;
        self.inner.get_arc(key)
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        self.check_alive()?;
        if self.write_event() {
            return self.faulted_put(key, value);
        }
        self.inner.put(key, value)
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        self.check_alive()?;
        if self.write_event() {
            return match self.action {
                FaultAction::FailWrite => Err(StoreError::Injected),
                FaultAction::SilentDrop => {
                    self.poisoned.store(true, Ordering::SeqCst);
                    Ok(true)
                }
                FaultAction::CrashAfterWrite | FaultAction::TornWrite => {
                    self.inner.delete(key)?;
                    self.poisoned.store(true, Ordering::SeqCst);
                    Err(Self::crashed())
                }
            };
        }
        self.inner.delete(key)
    }

    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        self.check_alive()?;
        self.inner.exists(key)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        self.check_alive()?;
        if self.write_event() {
            return match self.action {
                FaultAction::FailWrite => Err(StoreError::Injected),
                FaultAction::SilentDrop => {
                    self.poisoned.store(true, Ordering::SeqCst);
                    Ok(())
                }
                FaultAction::CrashAfterWrite | FaultAction::TornWrite => {
                    self.inner.rename(from, to)?;
                    self.poisoned.store(true, Ordering::SeqCst);
                    Err(Self::crashed())
                }
            };
        }
        self.inner.rename(from, to)
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.check_alive()?;
        self.inner.list()
    }

    fn apply_batch(&self, batch: &WriteBatch) -> Result<(), StoreError> {
        self.check_alive()?;
        if self.write_event() {
            // Tear the batch itself: apply a prefix of its ops.
            return match self.action {
                FaultAction::FailWrite => Err(StoreError::Injected),
                FaultAction::SilentDrop => {
                    self.poisoned.store(true, Ordering::SeqCst);
                    Ok(())
                }
                FaultAction::CrashAfterWrite | FaultAction::TornWrite => {
                    let keep = match self.action {
                        FaultAction::TornWrite => batch.ops.len() / 2,
                        _ => batch.ops.len(),
                    };
                    for op in &batch.ops[..keep] {
                        match op {
                            BatchOp::Put { key, value } => self.inner.put(key, value)?,
                            BatchOp::Delete { key } => {
                                self.inner.delete(key)?;
                            }
                        }
                    }
                    self.poisoned.store(true, Ordering::SeqCst);
                    Err(Self::crashed())
                }
            };
        }
        self.inner.apply_batch(batch)
    }

    fn io_stats(&self) -> crate::IoStats {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn fail_write_leaves_store_usable() {
        let s = FaultStore::new(MemStore::new(), FaultAction::FailWrite, 2);
        s.put("a", b"1").unwrap();
        assert_eq!(s.put("b", b"2").unwrap_err(), StoreError::Injected);
        // Not a crash: later writes succeed.
        s.put("c", b"3").unwrap();
        assert!(!s.poisoned());
    }

    #[test]
    fn torn_write_poisons_and_truncates() {
        let s = FaultStore::new(MemStore::new(), FaultAction::TornWrite, 1);
        assert!(s.put("a", b"full-value").is_err());
        assert!(s.poisoned());
        assert!(s.get("a").is_err(), "poisoned store fails reads too");
        // The torn half is visible to a post-"reboot" observer.
        assert_eq!(s.inner().get("a").unwrap(), Some(b"full-".to_vec()));
    }

    #[test]
    fn silent_drop_claims_success_without_writing() {
        let s = FaultStore::new(MemStore::new(), FaultAction::SilentDrop, 1);
        s.put("a", b"1").unwrap();
        assert!(s.poisoned());
        assert_eq!(s.inner().get("a").unwrap(), None);
    }

    #[test]
    fn crash_after_write_applies_then_dies() {
        let s = FaultStore::new(MemStore::new(), FaultAction::CrashAfterWrite, 1);
        assert!(s.put("a", b"1").is_err());
        assert_eq!(s.inner().get("a").unwrap(), Some(b"1".to_vec()));
        assert!(s.put("b", b"2").is_err());
    }

    #[test]
    fn plan_counts_and_trips() {
        let plan = FaultPlan::crash_at(3);
        assert!(!plan.event());
        assert!(!plan.event());
        assert!(plan.event());
        assert!(plan.tripped());
        assert_eq!(plan.events(), 3);
        // Disarmed plans only count.
        let counter = FaultPlan::new();
        for _ in 0..5 {
            assert!(!counter.event());
        }
        assert_eq!(counter.events(), 5);
        assert!(!counter.tripped());
    }
}
