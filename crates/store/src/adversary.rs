//! The malicious cloud provider of §III-B, as a store wrapper.
//!
//! The paper's attacker "can monitor and/or change data on disk or in
//! memory; rollback individual files or the whole file system". This
//! wrapper gives threat-model tests exactly those capabilities against
//! any inner store, plus injectable backend failures.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::{ObjectStore, StoreError};

/// A store wrapper with attacker controls: per-object snapshots and
/// rollbacks, byte tampering, deletion, and failure injection.
#[derive(Debug)]
pub struct AdversaryStore<S> {
    inner: S,
    snapshots: Mutex<HashMap<String, Option<Vec<u8>>>>,
    full_snapshot: Mutex<Option<HashMap<String, Vec<u8>>>>,
    fail_after: Mutex<Option<u64>>,
}

impl<S: ObjectStore> AdversaryStore<S> {
    /// Wraps `inner`.
    #[must_use]
    pub fn new(inner: S) -> Self {
        AdversaryStore {
            inner,
            snapshots: Mutex::new(HashMap::new()),
            full_snapshot: Mutex::new(None),
            fail_after: Mutex::new(None),
        }
    }

    /// A reference to the wrapped store.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Records the current value (or absence) of `key` for a later
    /// [`rollback_object`](Self::rollback_object).
    ///
    /// # Errors
    ///
    /// Propagates inner-store failures.
    pub fn snapshot_object(&self, key: &str) -> Result<(), StoreError> {
        let value = self.inner.get(key)?;
        self.snapshots.lock().insert(key.to_string(), value);
        Ok(())
    }

    /// Rolls `key` back to its snapshotted state — the individual-file
    /// rollback attack of §V-D.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if `key` was never snapshotted.
    pub fn rollback_object(&self, key: &str) -> Result<(), StoreError> {
        let snapshot = self
            .snapshots
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        match snapshot {
            Some(value) => self.inner.put(key, &value),
            None => self.inner.delete(key).map(|_| ()),
        }
    }

    /// Records the complete store state for a later
    /// [`rollback_everything`](Self::rollback_everything).
    ///
    /// # Errors
    ///
    /// Propagates inner-store failures.
    pub fn snapshot_everything(&self) -> Result<(), StoreError> {
        let mut snap = HashMap::new();
        for key in self.inner.list()? {
            if let Some(v) = self.inner.get(&key)? {
                snap.insert(key, v);
            }
        }
        *self.full_snapshot.lock() = Some(snap);
        Ok(())
    }

    /// Rolls the whole store back to the recorded state — the
    /// whole-file-system rollback attack of §V-E.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if no full snapshot was taken.
    pub fn rollback_everything(&self) -> Result<(), StoreError> {
        let snap = self
            .full_snapshot
            .lock()
            .clone()
            .ok_or_else(|| StoreError::NotFound("<full snapshot>".to_string()))?;
        for key in self.inner.list()? {
            if !snap.contains_key(&key) {
                self.inner.delete(&key)?;
            }
        }
        for (key, value) in snap {
            self.inner.put(&key, &value)?;
        }
        Ok(())
    }

    /// Flips one bit of the object at `key`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if the object is missing or empty.
    pub fn tamper(&self, key: &str, byte_index: usize, bit: u8) -> Result<(), StoreError> {
        let mut value = self
            .inner
            .get(key)?
            .ok_or_else(|| StoreError::NotFound(key.to_string()))?;
        if value.is_empty() {
            return Err(StoreError::NotFound(key.to_string()));
        }
        let idx = byte_index % value.len();
        value[idx] ^= 1 << (bit % 8);
        self.inner.put(key, &value)
    }

    /// Makes every store operation fail with [`StoreError::Injected`]
    /// after `ops` more successful operations. `None` disables injection.
    pub fn fail_after(&self, ops: Option<u64>) {
        *self.fail_after.lock() = ops;
    }

    fn check_injection(&self) -> Result<(), StoreError> {
        let mut guard = self.fail_after.lock();
        if let Some(remaining) = guard.as_mut() {
            if *remaining == 0 {
                return Err(StoreError::Injected);
            }
            *remaining -= 1;
        }
        Ok(())
    }
}

impl<S: ObjectStore> ObjectStore for AdversaryStore<S> {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.check_injection()?;
        self.inner.get(key)
    }

    fn get_arc(&self, key: &str) -> Result<Option<std::sync::Arc<[u8]>>, StoreError> {
        self.check_injection()?;
        self.inner.get_arc(key)
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        self.check_injection()?;
        self.inner.put(key, value)
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        self.check_injection()?;
        self.inner.delete(key)
    }

    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        self.check_injection()?;
        self.inner.exists(key)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        self.check_injection()?;
        self.inner.rename(from, to)
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.check_injection()?;
        self.inner.list()
    }

    fn apply_batch(&self, batch: &crate::WriteBatch) -> Result<(), StoreError> {
        self.check_injection()?;
        self.inner.apply_batch(batch)
    }

    fn submit_batch(&self, batch: crate::WriteBatch) -> Result<crate::CommitTicket, StoreError> {
        self.check_injection()?;
        self.inner.submit_batch(batch)
    }

    fn io_stats(&self) -> crate::IoStats {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn object_rollback_restores_old_value() {
        let s = AdversaryStore::new(MemStore::new());
        s.put("f", b"version-1").unwrap();
        s.snapshot_object("f").unwrap();
        s.put("f", b"version-2").unwrap();
        s.rollback_object("f").unwrap();
        assert_eq!(s.get("f").unwrap(), Some(b"version-1".to_vec()));
    }

    #[test]
    fn object_rollback_can_resurrect_deletion() {
        let s = AdversaryStore::new(MemStore::new());
        s.snapshot_object("ghost").unwrap(); // absent at snapshot time
        s.put("ghost", b"now present").unwrap();
        s.rollback_object("ghost").unwrap();
        assert_eq!(s.get("ghost").unwrap(), None);
    }

    #[test]
    fn full_rollback_restores_everything() {
        let s = AdversaryStore::new(MemStore::new());
        s.put("a", b"1").unwrap();
        s.put("b", b"2").unwrap();
        s.snapshot_everything().unwrap();
        s.put("a", b"changed").unwrap();
        s.delete("b").unwrap();
        s.put("c", b"new").unwrap();
        s.rollback_everything().unwrap();
        assert_eq!(s.get("a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(s.get("b").unwrap(), Some(b"2".to_vec()));
        assert_eq!(s.get("c").unwrap(), None);
    }

    #[test]
    fn tamper_flips_exactly_one_bit() {
        let s = AdversaryStore::new(MemStore::new());
        s.put("f", &[0u8; 8]).unwrap();
        s.tamper("f", 3, 4).unwrap();
        let v = s.get("f").unwrap().unwrap();
        assert_eq!(v[3], 0x10);
        assert!(v.iter().enumerate().all(|(i, &b)| (i == 3) == (b != 0)));
        assert!(matches!(
            s.tamper("missing", 0, 0),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn failure_injection_counts_down() {
        let s = AdversaryStore::new(MemStore::new());
        s.put("a", b"1").unwrap();
        s.fail_after(Some(2));
        assert!(s.get("a").is_ok());
        assert!(s.exists("a").is_ok());
        assert_eq!(s.get("a").unwrap_err(), StoreError::Injected);
        assert_eq!(s.put("b", b"x").unwrap_err(), StoreError::Injected);
        s.fail_after(None);
        assert!(s.get("a").is_ok());
    }
}
