//! On-disk object store.
//!
//! Each object is stored as one file whose name encodes the key
//! (percent-encoding, with a length cap for deep paths); the original key
//! is prepended inside the file so `list` can recover it even for
//! length-capped names. This mirrors the paper's deployment, where the
//! enclave's encrypted files land as regular files on the provider's disk
//! (§V-G: "the cloud provider only has to copy the files on disk" for
//! backups).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{IoStats, ObjectStore, StoreError};

/// Maximum encoded file-name length before switching to a hashed name.
const MAX_NAME: usize = 180;

/// An object store rooted at a directory on the local file system.
///
/// Every single-object mutation is crash-safe: `put` writes a temp
/// file, fsyncs it, atomically renames it over the target, and fsyncs
/// the parent directory; `delete` gets the same directory-durability
/// treatment. After a crash, each object is either its old or its new
/// value — never a torn mix — and acknowledged mutations survive.
///
/// `rename` is NOT atomic as a whole: it is a durable `put` of the
/// target followed by an unlink of the source, so a crash between the
/// two can leave BOTH keys present (never neither, never a torn
/// object). Callers that rename during recovery must tolerate such a
/// duplicate pair. Multi-object atomicity is [`crate::WalStore`]'s job.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
    fsyncs: AtomicU64,
    fsync_bytes: AtomicU64,
}

impl DirStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(DirStore {
            root,
            fsyncs: AtomicU64::new(0),
            fsync_bytes: AtomicU64::new(0),
        })
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_for(&self, key: &str) -> PathBuf {
        self.root.join(encode_name(key))
    }

    /// Makes the root directory's entry table durable (creations,
    /// renames, unlinks). Filesystems that refuse directory fsync
    /// degrade silently — the entry rename itself is still atomic.
    fn sync_root(&self) {
        if let Ok(d) = fs::File::open(&self.root) {
            if d.sync_all().is_ok() {
                self.fsyncs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Percent-encodes a key into a single safe file name.
fn encode_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 8);
    // Leading marker keeps encoded names from ever being "." / ".." or
    // colliding with our temp-file suffix handling.
    out.push_str("o.");
    for byte in key.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => {
                out.push(byte as char);
            }
            _ => out.push_str(&format!("%{byte:02x}")),
        }
    }
    if out.len() > MAX_NAME {
        // Deterministic fallback: prefix + FNV-1a hash of the full key.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        out.truncate(MAX_NAME - 17);
        out.push('~');
        out.push_str(&format!("{hash:016x}"));
    }
    out
}

/// On-disk record: `key_len (u32 le) || key || value`.
fn encode_record(key: &str, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + key.len() + value.len());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(value);
    out
}

fn decode_record(data: &[u8]) -> Result<(String, Vec<u8>), StoreError> {
    if data.len() < 4 {
        return Err(StoreError::Io("truncated record header".to_string()));
    }
    let key_len = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    if data.len() < 4 + key_len {
        return Err(StoreError::Io("truncated record key".to_string()));
    }
    let key = String::from_utf8(data[4..4 + key_len].to_vec())
        .map_err(|_| StoreError::Io("record key is not utf-8".to_string()))?;
    Ok((key, data[4 + key_len..].to_vec()))
}

impl ObjectStore for DirStore {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.file_for(key)) {
            Ok(data) => {
                let (stored_key, value) = decode_record(&data)?;
                if stored_key != key {
                    // Hash-name collision between distinct keys: treat as
                    // absent rather than returning the wrong object.
                    return Ok(None);
                }
                Ok(Some(value))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        // Write temp + fsync(file) + atomic rename + fsync(parent dir).
        // Temp files live in the "t." namespace (object files use "o.")
        // and carry a unique id so concurrent writers never share one.
        static TMP_ID: AtomicU64 = AtomicU64::new(0);
        let target = self.file_for(key);
        let tmp = self.root.join(format!(
            "t.{}-{}",
            std::process::id(),
            TMP_ID.fetch_add(1, Ordering::Relaxed)
        ));
        let record = encode_record(key, value);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&record)?;
            f.sync_data()?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            self.fsync_bytes
                .fetch_add(record.len() as u64, Ordering::Relaxed);
        }
        fs::rename(&tmp, &target)?;
        self.sync_root();
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        match fs::remove_file(self.file_for(key)) {
            Ok(()) => {
                self.sync_root();
                Ok(true)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        // The stored record embeds its key, so a pure file rename would
        // leave a stale key inside; rewrite under the new key (durable
        // put), then unlink the source, then one directory fsync for
        // both entry changes. Not atomic as a whole: a crash between
        // the put and the unlink leaves both keys (see the struct doc).
        let value = self
            .get(from)?
            .ok_or_else(|| StoreError::NotFound(from.to_string()))?;
        self.put(to, &value)?;
        if from != to {
            fs::remove_file(self.file_for(from))?;
            self.sync_root();
        }
        Ok(())
    }

    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        Ok(self.file_for(key).exists())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file()
                || !entry.file_name().to_string_lossy().starts_with("o.")
            {
                continue;
            }
            let data = fs::read(entry.path())?;
            let (key, _) = decode_record(&data)?;
            keys.push(key);
        }
        Ok(keys)
    }

    fn io_stats(&self) -> IoStats {
        IoStats {
            batches: 0,
            batch_ops: 0,
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            fsync_bytes: self.fsync_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seg-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_on_disk() {
        let dir = tempdir("roundtrip");
        let s = DirStore::open(&dir).unwrap();
        s.put("content/a/b.txt", b"hello").unwrap();
        assert_eq!(s.get("content/a/b.txt").unwrap(), Some(b"hello".to_vec()));
        // Survives reopening.
        let s2 = DirStore::open(&dir).unwrap();
        assert_eq!(s2.get("content/a/b.txt").unwrap(), Some(b"hello".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn odd_key_characters() {
        let dir = tempdir("oddkeys");
        let s = DirStore::open(&dir).unwrap();
        for key in ["/", "/a b/c%d", "ünïcødé/💾", "..", "a\tb"] {
            s.put(key, key.as_bytes()).unwrap();
            assert_eq!(
                s.get(key).unwrap(),
                Some(key.as_bytes().to_vec()),
                "key {key:?}"
            );
        }
        assert_eq!(s.len().unwrap(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn very_long_keys_hash_but_roundtrip() {
        let dir = tempdir("longkeys");
        let s = DirStore::open(&dir).unwrap();
        let k1 = format!("/{}", "x".repeat(500));
        let k2 = format!("/{}", "x".repeat(501));
        s.put(&k1, b"one").unwrap();
        s.put(&k2, b"two").unwrap();
        assert_eq!(s.get(&k1).unwrap(), Some(b"one".to_vec()));
        assert_eq!(s.get(&k2).unwrap(), Some(b"two".to_vec()));
        let mut listed = s.list().unwrap();
        listed.sort();
        let mut expected = vec![k1, k2];
        expected.sort();
        assert_eq!(listed, expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_and_rename() {
        let dir = tempdir("delren");
        let s = DirStore::open(&dir).unwrap();
        s.put("a", b"v").unwrap();
        s.rename("a", "b").unwrap();
        assert_eq!(s.get("a").unwrap(), None);
        assert_eq!(s.get("b").unwrap(), Some(b"v".to_vec()));
        assert!(s.delete("b").unwrap());
        assert!(s.is_empty().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }
}
