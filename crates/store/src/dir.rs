//! On-disk object store.
//!
//! Each object is stored as one file whose name encodes the key
//! (percent-encoding, with a length cap for deep paths); the original key
//! is prepended inside the file so `list` can recover it even for
//! length-capped names. This mirrors the paper's deployment, where the
//! enclave's encrypted files land as regular files on the provider's disk
//! (§V-G: "the cloud provider only has to copy the files on disk" for
//! backups).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::{ObjectStore, StoreError};

/// Maximum encoded file-name length before switching to a hashed name.
const MAX_NAME: usize = 180;

/// An object store rooted at a directory on the local file system.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the directory cannot be created.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        Ok(DirStore { root })
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_for(&self, key: &str) -> PathBuf {
        self.root.join(encode_name(key))
    }
}

/// Percent-encodes a key into a single safe file name.
fn encode_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 8);
    // Leading marker keeps encoded names from ever being "." / ".." or
    // colliding with our temp-file suffix handling.
    out.push_str("o.");
    for byte in key.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => {
                out.push(byte as char);
            }
            _ => out.push_str(&format!("%{byte:02x}")),
        }
    }
    if out.len() > MAX_NAME {
        // Deterministic fallback: prefix + FNV-1a hash of the full key.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        out.truncate(MAX_NAME - 17);
        out.push('~');
        out.push_str(&format!("{hash:016x}"));
    }
    out
}

/// On-disk record: `key_len (u32 le) || key || value`.
fn encode_record(key: &str, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + key.len() + value.len());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(value);
    out
}

fn decode_record(data: &[u8]) -> Result<(String, Vec<u8>), StoreError> {
    if data.len() < 4 {
        return Err(StoreError::Io("truncated record header".to_string()));
    }
    let key_len = u32::from_le_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    if data.len() < 4 + key_len {
        return Err(StoreError::Io("truncated record key".to_string()));
    }
    let key = String::from_utf8(data[4..4 + key_len].to_vec())
        .map_err(|_| StoreError::Io("record key is not utf-8".to_string()))?;
    Ok((key, data[4 + key_len..].to_vec()))
}

impl ObjectStore for DirStore {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match fs::read(self.file_for(key)) {
            Ok(data) => {
                let (stored_key, value) = decode_record(&data)?;
                if stored_key != key {
                    // Hash-name collision between distinct keys: treat as
                    // absent rather than returning the wrong object.
                    return Ok(None);
                }
                Ok(Some(value))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        // Write-then-rename for atomicity against torn writes. Temp files
        // live in the "t." namespace (object files use "o.") and carry a
        // unique id so concurrent writers never share one.
        static TMP_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let target = self.file_for(key);
        let tmp = self.root.join(format!(
            "t.{}-{}",
            std::process::id(),
            TMP_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&encode_record(key, value))?;
            f.sync_data().ok();
        }
        fs::rename(&tmp, &target)?;
        Ok(())
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        match fs::remove_file(self.file_for(key)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        Ok(self.file_for(key).exists())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file()
                || !entry.file_name().to_string_lossy().starts_with("o.")
            {
                continue;
            }
            let data = fs::read(entry.path())?;
            let (key, _) = decode_record(&data)?;
            keys.push(key);
        }
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("seg-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_on_disk() {
        let dir = tempdir("roundtrip");
        let s = DirStore::open(&dir).unwrap();
        s.put("content/a/b.txt", b"hello").unwrap();
        assert_eq!(s.get("content/a/b.txt").unwrap(), Some(b"hello".to_vec()));
        // Survives reopening.
        let s2 = DirStore::open(&dir).unwrap();
        assert_eq!(s2.get("content/a/b.txt").unwrap(), Some(b"hello".to_vec()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn odd_key_characters() {
        let dir = tempdir("oddkeys");
        let s = DirStore::open(&dir).unwrap();
        for key in ["/", "/a b/c%d", "ünïcødé/💾", "..", "a\tb"] {
            s.put(key, key.as_bytes()).unwrap();
            assert_eq!(
                s.get(key).unwrap(),
                Some(key.as_bytes().to_vec()),
                "key {key:?}"
            );
        }
        assert_eq!(s.len().unwrap(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn very_long_keys_hash_but_roundtrip() {
        let dir = tempdir("longkeys");
        let s = DirStore::open(&dir).unwrap();
        let k1 = format!("/{}", "x".repeat(500));
        let k2 = format!("/{}", "x".repeat(501));
        s.put(&k1, b"one").unwrap();
        s.put(&k2, b"two").unwrap();
        assert_eq!(s.get(&k1).unwrap(), Some(b"one".to_vec()));
        assert_eq!(s.get(&k2).unwrap(), Some(b"two".to_vec()));
        let mut listed = s.list().unwrap();
        listed.sort();
        let mut expected = vec![k1, k2];
        expected.sort();
        assert_eq!(listed, expected);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_and_rename() {
        let dir = tempdir("delren");
        let s = DirStore::open(&dir).unwrap();
        s.put("a", b"v").unwrap();
        s.rename("a", "b").unwrap();
        assert_eq!(s.get("a").unwrap(), None);
        assert_eq!(s.get("b").unwrap(), Some(b"v".to_vec()));
        assert!(s.delete("b").unwrap());
        assert!(s.is_empty().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }
}
