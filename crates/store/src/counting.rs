//! Instrumentation wrapper counting operations and bytes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::{CommitTicket, IoStats, ObjectStore, StoreError, WriteBatch};

/// Counters exported by [`CountingStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of `get` calls.
    pub gets: u64,
    /// Number of `put` calls.
    pub puts: u64,
    /// Number of `delete` calls.
    pub deletes: u64,
    /// Number of `exists` calls.
    pub exists: u64,
    /// Number of `rename` calls.
    pub renames: u64,
    /// Number of `list` calls.
    pub lists: u64,
    /// Total bytes returned by `get`.
    pub bytes_read: u64,
    /// Total bytes passed to `put`.
    pub bytes_written: u64,
    /// Number of write batches submitted or applied.
    pub batches: u64,
    /// Total operations carried inside those batches.
    pub batch_ops: u64,
}

impl StoreStats {
    /// Total operation count across every counted call type.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.exists + self.renames + self.lists
    }
}

/// Wraps any [`ObjectStore`], counting operations and transferred bytes.
///
/// The benchmark harness uses this to report the paper's storage-overhead
/// table and per-request I/O profiles; the enclave wraps its content,
/// group, and dedup stores with it so `seg-obs` snapshots can attribute
/// I/O per store.
#[derive(Debug)]
pub struct CountingStore<S> {
    inner: S,
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    exists: AtomicU64,
    renames: AtomicU64,
    lists: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    batches: AtomicU64,
    batch_ops: AtomicU64,
    // Transaction-window bookkeeping: `tx_begin`..`tx_seal` windows are
    // serialized by the caller (the enclave's commit mutex), so a flag
    // plus a pending-op counter is enough to attribute writes to the
    // current batch.
    tx_open: AtomicBool,
    tx_pending: AtomicU64,
}

impl<S: ObjectStore> CountingStore<S> {
    /// Wraps `inner`.
    #[must_use]
    pub fn new(inner: S) -> Self {
        CountingStore {
            inner,
            gets: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            exists: AtomicU64::new(0),
            renames: AtomicU64::new(0),
            lists: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_ops: AtomicU64::new(0),
            tx_open: AtomicBool::new(false),
            tx_pending: AtomicU64::new(0),
        }
    }

    /// Current counter values.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            exists: self.exists.load(Ordering::Relaxed),
            renames: self.renames.load(Ordering::Relaxed),
            lists: self.lists.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_ops: self.batch_ops.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.gets.store(0, Ordering::Relaxed);
        self.puts.store(0, Ordering::Relaxed);
        self.deletes.store(0, Ordering::Relaxed);
        self.exists.store(0, Ordering::Relaxed);
        self.renames.store(0, Ordering::Relaxed);
        self.lists.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batch_ops.store(0, Ordering::Relaxed);
    }

    fn count_batch(&self, batch: &WriteBatch) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_ops
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        for op in &batch.ops {
            match op {
                crate::BatchOp::Put { value, .. } => {
                    self.puts.fetch_add(1, Ordering::Relaxed);
                    self.bytes_written
                        .fetch_add(value.len() as u64, Ordering::Relaxed);
                }
                crate::BatchOp::Delete { .. } => {
                    self.deletes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// A reference to the wrapped store.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ObjectStore> ObjectStore for CountingStore<S> {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        let _prof = seg_obs::prof::phase("store_io");
        self.gets.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.get(key)?;
        if let Some(v) = &result {
            self.bytes_read.fetch_add(v.len() as u64, Ordering::Relaxed);
        }
        Ok(result)
    }

    fn get_arc(&self, key: &str) -> Result<Option<std::sync::Arc<[u8]>>, StoreError> {
        let _prof = seg_obs::prof::phase("store_io");
        self.gets.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.get_arc(key)?;
        if let Some(v) = &result {
            self.bytes_read.fetch_add(v.len() as u64, Ordering::Relaxed);
        }
        Ok(result)
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        let _prof = seg_obs::prof::phase("store_io");
        self.puts.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(value.len() as u64, Ordering::Relaxed);
        if self.tx_open.load(Ordering::Relaxed) {
            self.tx_pending.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.put(key, value)
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        let _prof = seg_obs::prof::phase("store_io");
        self.deletes.fetch_add(1, Ordering::Relaxed);
        if self.tx_open.load(Ordering::Relaxed) {
            self.tx_pending.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.delete(key)
    }

    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        let _prof = seg_obs::prof::phase("store_io");
        self.exists.fetch_add(1, Ordering::Relaxed);
        self.inner.exists(key)
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), StoreError> {
        let _prof = seg_obs::prof::phase("store_io");
        self.renames.fetch_add(1, Ordering::Relaxed);
        self.inner.rename(from, to)
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let _prof = seg_obs::prof::phase("store_io");
        self.lists.fetch_add(1, Ordering::Relaxed);
        self.inner.list()
    }

    fn len(&self) -> Result<usize, StoreError> {
        self.inner.len()
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        self.inner.total_bytes()
    }

    fn apply_batch(&self, batch: &WriteBatch) -> Result<(), StoreError> {
        let _prof = seg_obs::prof::phase("store_io");
        self.count_batch(batch);
        self.inner.apply_batch(batch)
    }

    fn submit_batch(&self, batch: WriteBatch) -> Result<CommitTicket, StoreError> {
        let _prof = seg_obs::prof::phase("store_io");
        self.count_batch(&batch);
        self.inner.submit_batch(batch)
    }

    fn tx_begin(&self) {
        self.tx_open.store(true, Ordering::Relaxed);
        self.tx_pending.store(0, Ordering::Relaxed);
        self.inner.tx_begin();
    }

    fn tx_seal(&self) -> Result<Option<CommitTicket>, StoreError> {
        self.tx_open.store(false, Ordering::Relaxed);
        let pending = self.tx_pending.swap(0, Ordering::Relaxed);
        let sealed = self.inner.tx_seal()?;
        if sealed.is_some() {
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.batch_ops.fetch_add(pending, Ordering::Relaxed);
        Ok(sealed)
    }

    fn io_stats(&self) -> IoStats {
        self.inner.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStore;

    #[test]
    fn counts_operations_and_bytes() {
        let s = CountingStore::new(MemStore::new());
        s.put("a", &[0u8; 100]).unwrap();
        s.put("b", &[0u8; 50]).unwrap();
        let _ = s.get("a").unwrap();
        let _ = s.get("missing").unwrap();
        s.delete("b").unwrap();
        let stats = s.stats();
        assert_eq!(stats.puts, 2);
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.deletes, 1);
        assert_eq!(stats.bytes_written, 150);
        assert_eq!(stats.bytes_read, 100); // the miss reads nothing
    }

    #[test]
    fn counts_exists_rename_and_list() {
        let s = CountingStore::new(MemStore::new());
        s.put("x", b"v").unwrap();
        assert!(s.exists("x").unwrap());
        assert!(!s.exists("missing").unwrap());
        s.rename("x", "y").unwrap();
        assert_eq!(s.list().unwrap(), vec!["y".to_string()]);
        let stats = s.stats();
        assert_eq!(stats.exists, 2);
        assert_eq!(stats.renames, 1);
        assert_eq!(stats.lists, 1);
        assert_eq!(stats.total_ops(), 1 + 2 + 1 + 1); // put + exists*2 + rename + list
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = CountingStore::new(MemStore::new());
        s.put("a", &[0u8; 10]).unwrap();
        s.rename("a", "b").unwrap();
        assert!(s.exists("b").unwrap());
        let _ = s.list().unwrap();
        s.reset();
        assert_eq!(s.stats(), StoreStats::default());
        // Store contents untouched (this exists call counts afresh).
        assert!(s.exists("b").unwrap());
        assert_eq!(s.stats().exists, 1);
    }

    #[test]
    fn passthrough_semantics() {
        let s = CountingStore::new(MemStore::new());
        s.put("x", b"v").unwrap();
        s.rename("x", "y").unwrap();
        assert_eq!(s.get("y").unwrap(), Some(b"v".to_vec()));
        assert_eq!(s.len().unwrap(), 1);
        assert_eq!(s.total_bytes().unwrap(), 1);
    }
}
