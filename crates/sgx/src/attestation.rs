//! Remote attestation quotes (§II-A "Attestation").
//!
//! A quote proves to a remote verifier (SeGShare's CA during setup,
//! §IV-A; peer enclaves during replication, §V-F) that specific report
//! data was produced by an enclave with a specific measurement on a
//! genuine platform. The platform's attestation key stands in for the
//! EPID/DCAP machinery and the attestation service.

use seg_crypto::ed25519::{PublicKey, Signature};

use crate::enclave::Measurement;
use crate::platform::Platform;
use crate::SgxError;

/// Maximum report-data length (matches SGX's 64-byte REPORTDATA field).
pub const REPORT_DATA_LEN: usize = 64;

/// An attestation quote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quote {
    measurement: Measurement,
    platform_id: [u8; 16],
    report_data: [u8; REPORT_DATA_LEN],
    signature: Signature,
}

impl Quote {
    pub(crate) fn issue(
        platform: &Platform,
        measurement: Measurement,
        report_data: &[u8],
    ) -> Quote {
        assert!(
            report_data.len() <= REPORT_DATA_LEN,
            "report data exceeds {REPORT_DATA_LEN} bytes"
        );
        let mut padded = [0u8; REPORT_DATA_LEN];
        padded[..report_data.len()].copy_from_slice(report_data);
        let signature = platform.inner.attestation_key.sign(&Self::signed_bytes(
            &measurement,
            &platform.inner.id,
            &padded,
        ));
        Quote {
            measurement,
            platform_id: platform.inner.id,
            report_data: padded,
            signature,
        }
    }

    fn signed_bytes(
        measurement: &Measurement,
        platform_id: &[u8; 16],
        report_data: &[u8; REPORT_DATA_LEN],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 32 + 16 + REPORT_DATA_LEN);
        out.extend_from_slice(b"SGXQUOTE");
        out.extend_from_slice(measurement);
        out.extend_from_slice(platform_id);
        out.extend_from_slice(report_data);
        out
    }

    /// Verifies this quote against a trusted attestation verification key
    /// and returns the attested measurement.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::QuoteInvalid`] if the signature does not
    /// verify.
    pub fn verify(&self, attestation_key: &PublicKey) -> Result<Measurement, SgxError> {
        attestation_key
            .verify(
                &Self::signed_bytes(&self.measurement, &self.platform_id, &self.report_data),
                &self.signature,
            )
            .map_err(|_| SgxError::QuoteInvalid)?;
        Ok(self.measurement)
    }

    /// The claimed (unverified) measurement.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The report data carried by the quote (zero-padded to 64 bytes).
    #[must_use]
    pub fn report_data(&self) -> &[u8; REPORT_DATA_LEN] {
        &self.report_data
    }

    /// The issuing platform's id.
    #[must_use]
    pub fn platform_id(&self) -> [u8; 16] {
        self.platform_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveImage;

    #[test]
    fn quote_verifies_under_platform_key() {
        let p = Platform::new_with_seed(5);
        let e = p.launch(&EnclaveImage::from_code(b"segshare"));
        let quote = e.quote(b"csr public key hash");
        let m = quote.verify(&p.attestation_public_key()).unwrap();
        assert_eq!(m, e.measurement());
        assert_eq!(&quote.report_data()[..19], b"csr public key hash");
        assert!(quote.report_data()[19..].iter().all(|&b| b == 0));
    }

    #[test]
    fn quote_rejected_under_wrong_key() {
        let p1 = Platform::new_with_seed(6);
        let p2 = Platform::new_with_seed(7);
        let quote = p1
            .launch(&EnclaveImage::from_code(b"segshare"))
            .quote(b"data");
        assert_eq!(
            quote.verify(&p2.attestation_public_key()).unwrap_err(),
            SgxError::QuoteInvalid
        );
    }

    #[test]
    fn forged_measurement_rejected() {
        let p = Platform::new_with_seed(8);
        let e = p.launch(&EnclaveImage::from_code(b"honest"));
        let mut quote = e.quote(b"");
        quote.measurement[0] ^= 1;
        assert!(quote.verify(&p.attestation_public_key()).is_err());
    }

    #[test]
    fn forged_report_data_rejected() {
        let p = Platform::new_with_seed(9);
        let e = p.launch(&EnclaveImage::from_code(b"honest"));
        let mut quote = e.quote(b"original");
        quote.report_data[0] = b'X';
        assert!(quote.verify(&p.attestation_public_key()).is_err());
    }

    #[test]
    #[should_panic(expected = "report data exceeds")]
    fn oversized_report_data_panics() {
        let p = Platform::new_with_seed(10);
        let e = p.launch(&EnclaveImage::from_code(b"x"));
        let _ = e.quote(&[0u8; 65]);
    }
}
