//! Enclave lifecycle, measurements, and sealing.

use seg_crypto::hkdf;
use seg_crypto::pae::{pae_dec, pae_enc, PaeKey};
use seg_crypto::rng::SystemRng;
use seg_crypto::sha256::Sha256;

use crate::attestation::Quote;
use crate::boundary::Boundary;
use crate::counter::CounterHandle;
use crate::epc::EpcTracker;
use crate::platform::Platform;
use crate::SgxError;

/// An enclave measurement (MRENCLAVE): SHA-256 over the initial code and
/// data.
pub type Measurement = [u8; 32];

/// The initial code and data loaded into an enclave; its hash is the
/// enclave's identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveImage {
    code: Vec<u8>,
}

impl EnclaveImage {
    /// Builds an image from raw code bytes.
    #[must_use]
    pub fn from_code(code: &[u8]) -> EnclaveImage {
        EnclaveImage {
            code: code.to_vec(),
        }
    }

    /// The image's measurement.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        let mut h = Sha256::new();
        h.update(b"sgx-sim-measurement-v1\0");
        h.update(&self.code);
        h.finalize()
    }
}

/// A running enclave on a [`Platform`].
///
/// Created via [`Platform::launch`]. Enclaves are *stateless across
/// restarts* (§II-A): relaunching the same image yields a new instance
/// whose only link to the past is sealed data and monotonic counters.
pub struct Enclave {
    platform: Platform,
    measurement: Measurement,
    boundary: Boundary,
    epc: EpcTracker,
}

impl std::fmt::Debug for Enclave {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Enclave({:02x}{:02x}.. on {:?})",
            self.measurement[0], self.measurement[1], self.platform
        )
    }
}

impl Enclave {
    pub(crate) fn launch(platform: Platform, image: &EnclaveImage) -> Enclave {
        let boundary = Boundary::new(platform.cost_model());
        let epc = EpcTracker::new(platform.inner.prm_bytes, platform.cost_model());
        Enclave {
            platform,
            measurement: image.measurement(),
            boundary,
            epc,
        }
    }

    /// This enclave's measurement (MRENCLAVE).
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The platform this enclave runs on.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Boundary-crossing accounting for this enclave.
    #[must_use]
    pub fn boundary(&self) -> &Boundary {
        &self.boundary
    }

    /// EPC (enclave memory) accounting for this enclave.
    #[must_use]
    pub fn epc(&self) -> &EpcTracker {
        &self.epc
    }

    /// The MRENCLAVE-policy sealing key: derived from the platform's
    /// fused master secret and this enclave's measurement, so it is
    /// identical across restarts of the *same* enclave on the *same*
    /// platform and unobtainable anywhere else.
    #[must_use]
    pub fn sealing_key(&self) -> [u8; 16] {
        hkdf::derive_key_128(
            &self.platform.inner.master_seal_key,
            "sgx-seal-mrenclave",
            &self.measurement,
        )
    }

    /// Seals `data` so only this enclave (identity) on this platform can
    /// recover it (§II-A "Data Sealing").
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; the `Result` mirrors the SDK API.
    pub fn seal(&self, data: &[u8]) -> Result<Vec<u8>, SgxError> {
        let key = PaeKey::from_bytes(&self.sealing_key());
        let mut blob = Vec::with_capacity(32 + data.len() + 28);
        blob.extend_from_slice(&self.measurement);
        blob.extend_from_slice(&pae_enc(
            &key,
            data,
            &self.measurement,
            &mut SystemRng::new(),
        ));
        Ok(blob)
    }

    /// Unseals a blob produced by [`Enclave::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::UnsealFailed`] if the blob was sealed by a
    /// different enclave identity, on a different platform, or was
    /// tampered with.
    pub fn unseal(&self, blob: &[u8]) -> Result<Vec<u8>, SgxError> {
        if blob.len() < 32 || blob[..32] != self.measurement {
            return Err(SgxError::UnsealFailed);
        }
        let key = PaeKey::from_bytes(&self.sealing_key());
        pae_dec(&key, &blob[32..], &self.measurement).map_err(|_| SgxError::UnsealFailed)
    }

    /// Produces an attestation quote over `report_data` (up to 64 bytes),
    /// signed by the platform's attestation key (§II-A "Attestation").
    ///
    /// # Panics
    ///
    /// Panics if `report_data` exceeds 64 bytes.
    #[must_use]
    pub fn quote(&self, report_data: &[u8]) -> Quote {
        Quote::issue(&self.platform, self.measurement, report_data)
    }

    /// Opens (creating on first use) the monotonic counter `id`, scoped
    /// to this enclave's measurement on this platform (§V-E).
    #[must_use]
    pub fn counter(&self, id: u64) -> CounterHandle {
        CounterHandle::new(self.platform.clone(), self.measurement, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::new_with_seed(42)
    }

    #[test]
    fn measurement_is_stable_and_code_sensitive() {
        let a = EnclaveImage::from_code(b"code v1");
        let b = EnclaveImage::from_code(b"code v1");
        let c = EnclaveImage::from_code(b"code v2");
        assert_eq!(a.measurement(), b.measurement());
        assert_ne!(a.measurement(), c.measurement());
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let e = platform().launch(&EnclaveImage::from_code(b"segshare"));
        let sealed = e.seal(b"secret root key").unwrap();
        assert_eq!(e.unseal(&sealed).unwrap(), b"secret root key");
    }

    #[test]
    fn sealing_survives_enclave_restart() {
        let p = platform();
        let image = EnclaveImage::from_code(b"segshare");
        let sealed = p.launch(&image).seal(b"persistent state").unwrap();
        // "Restart": a brand-new enclave instance from the same image.
        let restarted = p.launch(&image);
        assert_eq!(restarted.unseal(&sealed).unwrap(), b"persistent state");
    }

    #[test]
    fn different_enclave_cannot_unseal() {
        let p = platform();
        let sealed = p
            .launch(&EnclaveImage::from_code(b"good"))
            .seal(b"secret")
            .unwrap();
        let evil = p.launch(&EnclaveImage::from_code(b"evil"));
        assert_eq!(evil.unseal(&sealed).unwrap_err(), SgxError::UnsealFailed);
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let image = EnclaveImage::from_code(b"segshare");
        let sealed = Platform::new_with_seed(1)
            .launch(&image)
            .seal(b"secret")
            .unwrap();
        let other = Platform::new_with_seed(2).launch(&image);
        assert_eq!(other.unseal(&sealed).unwrap_err(), SgxError::UnsealFailed);
    }

    #[test]
    fn tampered_sealed_blob_rejected() {
        let e = platform().launch(&EnclaveImage::from_code(b"segshare"));
        let sealed = e.seal(b"secret").unwrap();
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 1;
            assert!(e.unseal(&bad).is_err(), "flip at byte {i}");
        }
        assert!(e.unseal(&[]).is_err());
        assert!(e.unseal(&sealed[..31]).is_err());
    }

    #[test]
    fn sealing_is_probabilistic_but_stable_key() {
        let e = platform().launch(&EnclaveImage::from_code(b"segshare"));
        let s1 = e.seal(b"x").unwrap();
        let s2 = e.seal(b"x").unwrap();
        assert_ne!(s1, s2, "sealing uses fresh IVs");
        assert_eq!(e.sealing_key(), e.sealing_key());
    }
}
