//! The simulated SGX-capable machine.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use seg_crypto::ed25519;
use seg_crypto::rng::{DeterministicRng, SecureRandom, SystemRng};

use crate::boundary::CostModel;
use crate::counter::CounterState;
use crate::enclave::{Enclave, EnclaveImage, Measurement};

/// Default Processor Reserved Memory size: 128 MiB (§II-A).
pub const DEFAULT_PRM_BYTES: u64 = 128 * 1024 * 1024;

pub(crate) struct PlatformInner {
    pub(crate) id: [u8; 16],
    /// Root of the sealing-key hierarchy, fused into the (simulated) CPU.
    pub(crate) master_seal_key: [u8; 32],
    /// Stands in for the platform's EPID/DCAP attestation key.
    pub(crate) attestation_key: ed25519::SecretKey,
    /// Monotonic counters, keyed by (owning measurement, counter id).
    pub(crate) counters: Mutex<HashMap<(Measurement, u64), CounterState>>,
    pub(crate) prm_bytes: u64,
    pub(crate) cost_model: CostModel,
}

/// A simulated SGX-capable machine: the source of sealing keys,
/// attestation signatures, and monotonic counters.
///
/// Cloning the handle shares the platform (all clones launch enclaves on
/// the same machine).
#[derive(Clone)]
pub struct Platform {
    pub(crate) inner: Arc<PlatformInner>,
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Platform({:02x}{:02x}..)",
            self.inner.id[0], self.inner.id[1]
        )
    }
}

impl Platform {
    /// Creates a platform with OS-random hardware secrets.
    #[must_use]
    pub fn new() -> Platform {
        Platform::from_rng(&mut SystemRng::new(), CostModel::default())
    }

    /// Creates a reproducible platform (tests and benchmarks).
    #[must_use]
    pub fn new_with_seed(seed: u64) -> Platform {
        Platform::from_rng(&mut DeterministicRng::seeded(seed), CostModel::default())
    }

    /// Creates a platform with an explicit boundary cost model.
    #[must_use]
    pub fn with_cost_model(seed: u64, cost_model: CostModel) -> Platform {
        Platform::from_rng(&mut DeterministicRng::seeded(seed), cost_model)
    }

    fn from_rng<R: SecureRandom>(rng: &mut R, cost_model: CostModel) -> Platform {
        Platform {
            inner: Arc::new(PlatformInner {
                id: rng.array(),
                master_seal_key: rng.array(),
                attestation_key: ed25519::SecretKey::generate(rng),
                counters: Mutex::new(HashMap::new()),
                prm_bytes: DEFAULT_PRM_BYTES,
                cost_model,
            }),
        }
    }

    /// Launches an enclave from `image` on this platform.
    ///
    /// Mirrors `sgx_create_enclave`: the enclave's identity is the
    /// measurement (SHA-256) of the image.
    #[must_use]
    pub fn launch(&self, image: &EnclaveImage) -> Enclave {
        Enclave::launch(self.clone(), image)
    }

    /// The platform's attestation verification key. In production this
    /// role is played by the attestation service's root of trust; parties
    /// verifying quotes are provisioned with it out of band.
    #[must_use]
    pub fn attestation_public_key(&self) -> ed25519::PublicKey {
        self.inner.attestation_key.public_key()
    }

    /// A stable identifier for this platform.
    #[must_use]
    pub fn id(&self) -> [u8; 16] {
        self.inner.id
    }

    /// The boundary cost model enclaves on this platform are charged.
    #[must_use]
    pub fn cost_model(&self) -> CostModel {
        self.inner.cost_model
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_platforms_are_reproducible() {
        let a = Platform::new_with_seed(1);
        let b = Platform::new_with_seed(1);
        assert_eq!(a.id(), b.id());
        assert_eq!(
            a.attestation_public_key().to_bytes(),
            b.attestation_public_key().to_bytes()
        );
        let c = Platform::new_with_seed(2);
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn clones_share_state() {
        let a = Platform::new_with_seed(3);
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }
}
