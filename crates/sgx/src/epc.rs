//! EPC (enclave page cache) accounting.
//!
//! SGX reserves 128 MiB of RAM for enclaves (§II-A); exceeding it forces
//! encrypted paging "with a major performance overhead". The paper's
//! streaming design exists precisely to keep the enclave's working set
//! small and constant (§VI). This tracker lets tests *prove* that
//! property: allocations register here, and peak usage plus paging events
//! are observable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::boundary::CostModel;

const PAGE: u64 = 4096;

#[derive(Debug, Default)]
struct EpcCounters {
    current: AtomicU64,
    peak: AtomicU64,
    paged_pages: AtomicU64,
}

/// Tracks one enclave's EPC usage.
#[derive(Debug, Clone)]
pub struct EpcTracker {
    limit: u64,
    model: CostModel,
    counters: Arc<EpcCounters>,
}

impl EpcTracker {
    /// Creates a tracker with the given PRM limit.
    #[must_use]
    pub fn new(limit: u64, model: CostModel) -> EpcTracker {
        EpcTracker {
            limit,
            model,
            counters: Arc::new(EpcCounters::default()),
        }
    }

    /// Registers an allocation of `bytes` inside the enclave; the
    /// returned guard releases it on drop. Usage beyond the PRM limit is
    /// charged as paging (it does not fail, matching SGX behaviour).
    #[must_use]
    pub fn alloc(&self, bytes: u64) -> EpcAllocation {
        let new_current = self.counters.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.counters.peak.fetch_max(new_current, Ordering::Relaxed);
        if new_current > self.limit {
            let over = new_current - self.limit.min(new_current);
            let pages = over.div_ceil(PAGE);
            self.counters
                .paged_pages
                .fetch_add(pages, Ordering::Relaxed);
            // Simulated cost: visible in the phase profile but kept out
            // of wall-clock self times (see seg_obs::prof::charge).
            seg_obs::prof::charge("epc_paging", pages * self.model.paging_ns_per_page);
        }
        EpcAllocation {
            tracker: self.clone(),
            bytes,
        }
    }

    /// Simulated cost of paging so far, in nanoseconds.
    #[must_use]
    pub fn paging_cost_ns(&self) -> u64 {
        self.counters.paged_pages.load(Ordering::Relaxed) * self.model.paging_ns_per_page
    }

    /// Current registered enclave memory in bytes.
    #[must_use]
    pub fn current_bytes(&self) -> u64 {
        self.counters.current.load(Ordering::Relaxed)
    }

    /// Peak registered enclave memory in bytes.
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.counters.peak.load(Ordering::Relaxed)
    }

    /// Pages that had to be swapped out of the EPC.
    #[must_use]
    pub fn paged_pages(&self) -> u64 {
        self.counters.paged_pages.load(Ordering::Relaxed)
    }

    /// The PRM limit in bytes.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// RAII guard for a registered enclave allocation.
#[derive(Debug)]
pub struct EpcAllocation {
    tracker: EpcTracker,
    bytes: u64,
}

impl Drop for EpcAllocation {
    fn drop(&mut self) {
        self.tracker
            .counters
            .current
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_current_and_peak() {
        let epc = EpcTracker::new(1 << 20, CostModel::default());
        let a = epc.alloc(1000);
        assert_eq!(epc.current_bytes(), 1000);
        {
            let _b = epc.alloc(2000);
            assert_eq!(epc.current_bytes(), 3000);
        }
        assert_eq!(epc.current_bytes(), 1000);
        assert_eq!(epc.peak_bytes(), 3000);
        drop(a);
        assert_eq!(epc.current_bytes(), 0);
        assert_eq!(epc.peak_bytes(), 3000);
    }

    #[test]
    fn within_limit_no_paging() {
        let epc = EpcTracker::new(1 << 20, CostModel::default());
        let _a = epc.alloc(1 << 19);
        assert_eq!(epc.paged_pages(), 0);
        assert_eq!(epc.paging_cost_ns(), 0);
    }

    #[test]
    fn over_limit_charges_paging() {
        let epc = EpcTracker::new(8192, CostModel::default());
        let _a = epc.alloc(8192 + 4096 * 3);
        assert_eq!(epc.paged_pages(), 3);
        assert_eq!(
            epc.paging_cost_ns(),
            3 * CostModel::default().paging_ns_per_page
        );
    }
}
