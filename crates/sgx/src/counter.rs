//! Monotonic counters (§V-E).
//!
//! SGX monotonic counters persist across enclave restarts but — as the
//! paper notes, citing ROTE — "increments are slow and the counter wears
//! out fast". The simulation models both: each increment is charged a
//! large latency in the boundary accounting, and counters refuse to
//! increment past a wear-out limit.

use crate::enclave::Measurement;
use crate::platform::Platform;
use crate::SgxError;

/// Number of increments before a counter wears out. Real SGX counters in
/// non-volatile platform flash are specified for on the order of a
/// million writes.
pub const WEAR_OUT_LIMIT: u64 = 1_048_576;

/// Simulated latency of one counter increment in nanoseconds (tens of
/// milliseconds on real hardware; we charge 80 ms, within the measured
/// 80–250 ms range reported by ROTE).
pub const INCREMENT_LATENCY_NS: u64 = 80_000_000;

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CounterState {
    pub(crate) value: u64,
    pub(crate) increments: u64,
}

/// A handle to one monotonic counter, scoped to an enclave measurement on
/// one platform. Obtained via [`crate::Enclave::counter`].
#[derive(Clone)]
pub struct CounterHandle {
    platform: Platform,
    owner: Measurement,
    id: u64,
}

impl std::fmt::Debug for CounterHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CounterHandle(id: {})", self.id)
    }
}

impl CounterHandle {
    pub(crate) fn new(platform: Platform, owner: Measurement, id: u64) -> CounterHandle {
        CounterHandle {
            platform,
            owner,
            id,
        }
    }

    /// Reads the current value.
    #[must_use]
    pub fn read(&self) -> u64 {
        self.platform
            .inner
            .counters
            .lock()
            .get(&(self.owner, self.id))
            .map(|s| s.value)
            .unwrap_or(0)
    }

    /// Increments and returns the new value, charging the increment
    /// latency.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::CounterWornOut`] once [`WEAR_OUT_LIMIT`]
    /// increments have been performed.
    pub fn increment(&self) -> Result<u64, SgxError> {
        let mut counters = self.platform.inner.counters.lock();
        let state = counters.entry((self.owner, self.id)).or_default();
        if state.increments >= WEAR_OUT_LIMIT {
            return Err(SgxError::CounterWornOut);
        }
        state.increments += 1;
        state.value += 1;
        // Simulated hardware latency, charged into the phase profile's
        // sim channel (never the wall clock).
        seg_obs::prof::charge("counter_wait", INCREMENT_LATENCY_NS);
        Ok(state.value)
    }

    /// Total increments ever performed (wear level).
    #[must_use]
    pub fn wear(&self) -> u64 {
        self.platform
            .inner
            .counters
            .lock()
            .get(&(self.owner, self.id))
            .map(|s| s.increments)
            .unwrap_or(0)
    }

    /// The latency one increment would cost on real hardware, for the
    /// benchmark harness's simulated-time accounting.
    #[must_use]
    pub fn increment_latency_ns(&self) -> u64 {
        INCREMENT_LATENCY_NS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::EnclaveImage;

    #[test]
    fn counters_start_at_zero_and_increment() {
        let p = Platform::new_with_seed(20);
        let e = p.launch(&EnclaveImage::from_code(b"c"));
        let ctr = e.counter(0);
        assert_eq!(ctr.read(), 0);
        assert_eq!(ctr.increment().unwrap(), 1);
        assert_eq!(ctr.increment().unwrap(), 2);
        assert_eq!(ctr.read(), 2);
        assert_eq!(ctr.wear(), 2);
    }

    #[test]
    fn counters_survive_enclave_restart() {
        let p = Platform::new_with_seed(21);
        let image = EnclaveImage::from_code(b"c");
        let e1 = p.launch(&image);
        e1.counter(7).increment().unwrap();
        drop(e1);
        let e2 = p.launch(&image);
        assert_eq!(e2.counter(7).read(), 1);
    }

    #[test]
    fn counters_are_scoped_per_measurement() {
        let p = Platform::new_with_seed(22);
        let a = p.launch(&EnclaveImage::from_code(b"a"));
        let b = p.launch(&EnclaveImage::from_code(b"b"));
        a.counter(0).increment().unwrap();
        assert_eq!(b.counter(0).read(), 0, "other enclave's counter hidden");
    }

    #[test]
    fn counters_are_scoped_per_id() {
        let p = Platform::new_with_seed(23);
        let e = p.launch(&EnclaveImage::from_code(b"a"));
        e.counter(0).increment().unwrap();
        assert_eq!(e.counter(1).read(), 0);
    }

    #[test]
    fn wear_out_enforced() {
        let p = Platform::new_with_seed(24);
        let e = p.launch(&EnclaveImage::from_code(b"a"));
        let ctr = e.counter(0);
        // Fast-forward wear by writing state directly through the public
        // API would take a million calls; instead verify the boundary.
        {
            let mut counters = p.inner.counters.lock();
            counters.insert(
                (e.measurement(), 0),
                CounterState {
                    value: 10,
                    increments: WEAR_OUT_LIMIT - 1,
                },
            );
        }
        assert_eq!(ctr.increment().unwrap(), 11);
        assert_eq!(ctr.increment().unwrap_err(), SgxError::CounterWornOut);
        // Value is frozen after wear-out.
        assert_eq!(ctr.read(), 11);
    }
}
