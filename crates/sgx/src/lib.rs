//! A software-simulated Intel SGX platform.
//!
//! The paper runs on real SGX hardware; this reproduction has none, so —
//! per the substitution rule in `DESIGN.md` — this crate rebuilds the SGX
//! primitives SeGShare consumes, with the same APIs, failure modes, and a
//! calibrated cost model:
//!
//! * [`Platform`] / [`Enclave`] — enclave lifecycle with code
//!   *measurements* (§II-A "Attestation"): launching an image yields an
//!   enclave whose identity is the SHA-256 of its initial code and data.
//! * **Sealing** ([`Enclave::seal`] / [`Enclave::unseal`], §II-A "Data
//!   Sealing") — MRENCLAVE-policy sealing keys derived from a
//!   platform-bound master secret and the measurement; unsealing on a
//!   different platform or from a different enclave fails.
//! * **Remote attestation** ([`Enclave::quote`], [`attestation`]) — quotes
//!   bind a measurement and 64 bytes of report data under the platform's
//!   attestation key (standing in for EPID/DCAP and the attestation
//!   service).
//! * **Monotonic counters** ([`counter`], §V-E) — persisted per
//!   (platform, enclave-measurement) with the slow-increment latency and
//!   wear-out limit the paper cites as the weakness of SGX counters.
//! * **Boundary accounting** ([`boundary`], §II-A "Switchless Calls") —
//!   every ecall/ocall is charged a transition cost; switchless mode
//!   charges the cheaper switchless cost, giving the ablation benchmark
//!   its signal.
//! * **EPC accounting** ([`epc`]) — tracks enclave memory pressure against
//!   the 128 MiB PRM and charges paging costs beyond it, letting tests
//!   prove the streaming design keeps enclave buffers constant.
//! * **Protected File System Library** ([`pfs`], §II-A) — 4 KiB-node
//!   encrypted files with a Merkle/“tag-tree” integrity structure,
//!   matching Intel PFS's ~1 % space overhead that the paper's storage
//!   table measures.
//!
//! # Example
//!
//! ```
//! use seg_sgx::{Platform, EnclaveImage};
//!
//! # fn main() -> Result<(), seg_sgx::SgxError> {
//! let platform = Platform::new_with_seed(7);
//! let enclave = platform.launch(&EnclaveImage::from_code(b"my enclave code"));
//! let sealed = enclave.seal(b"root key material")?;
//! assert_eq!(enclave.unseal(&sealed)?, b"root key material");
//!
//! // A different enclave (different measurement) cannot unseal it.
//! let other = platform.launch(&EnclaveImage::from_code(b"evil enclave"));
//! assert!(other.unseal(&sealed).is_err());
//! # Ok(())
//! # }
//! ```

pub mod attestation;
pub mod boundary;
pub mod counter;
pub mod enclave;
pub mod epc;
pub mod pfs;
pub mod platform;

pub use attestation::Quote;
pub use boundary::{Boundary, BoundaryStats, CostModel};
pub use counter::CounterHandle;
pub use enclave::{Enclave, EnclaveImage, Measurement};
pub use epc::{EpcAllocation, EpcTracker};
pub use platform::Platform;

use std::error::Error;
use std::fmt;

/// Errors from the simulated SGX platform.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgxError {
    /// Sealed blob failed authentication or was sealed by another
    /// enclave/platform.
    UnsealFailed,
    /// A quote signature or structure did not verify.
    QuoteInvalid,
    /// A monotonic counter exceeded its wear-out limit (§V-E).
    CounterWornOut,
    /// A protected file was corrupted, truncated, or tampered with.
    ProtectedFileCorrupted(String),
    /// An underlying cryptographic failure.
    Crypto(seg_crypto::CryptoError),
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::UnsealFailed => f.write_str("unsealing failed"),
            SgxError::QuoteInvalid => f.write_str("attestation quote invalid"),
            SgxError::CounterWornOut => f.write_str("monotonic counter worn out"),
            SgxError::ProtectedFileCorrupted(msg) => {
                write!(f, "protected file corrupted: {msg}")
            }
            SgxError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl Error for SgxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SgxError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<seg_crypto::CryptoError> for SgxError {
    fn from(e: seg_crypto::CryptoError) -> Self {
        SgxError::Crypto(e)
    }
}
