//! Enclave boundary-crossing accounting (§II-A "Switchless Calls", §VI).
//!
//! Transitions into and out of an enclave save and restore state and
//! flush microarchitectural structures; the paper calls them "a primary
//! performance overhead" and uses the SDK's *switchless calls* for all
//! network and file traffic. The simulation charges each crossing a cost
//! from a calibrated [`CostModel`], so the bench harness can report the
//! switchless ablation without real hardware.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-operation simulated costs in nanoseconds.
///
/// Defaults are calibrated from published measurements: a synchronous
/// enclave transition costs ~8,000–14,000 cycles (≈3–4 µs at 3.7 GHz,
/// counting both edges); a switchless call through a shared task queue
/// costs a few hundred nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost of a synchronous call into the enclave (ecall).
    pub ecall_ns: u64,
    /// Cost of a synchronous call out of the enclave (ocall).
    pub ocall_ns: u64,
    /// Cost of a switchless call in either direction.
    pub switchless_ns: u64,
    /// Cost of paging one 4 KiB EPC page in or out.
    pub paging_ns_per_page: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ecall_ns: 3_500,
            ocall_ns: 3_500,
            switchless_ns: 350,
            paging_ns_per_page: 12_000,
        }
    }
}

impl CostModel {
    /// A model with free transitions (to isolate other costs in
    /// ablations).
    #[must_use]
    pub fn zero() -> CostModel {
        CostModel {
            ecall_ns: 0,
            ocall_ns: 0,
            switchless_ns: 0,
            paging_ns_per_page: 0,
        }
    }
}

/// Counters accumulated at an enclave's boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoundaryStats {
    /// Calls into the enclave.
    pub ecalls: u64,
    /// Calls out of the enclave.
    pub ocalls: u64,
    /// Simulated nanoseconds charged for all crossings so far.
    pub simulated_ns: u64,
}

/// Boundary accounting for one enclave.
#[derive(Debug)]
pub struct Boundary {
    model: CostModel,
    switchless: AtomicBool,
    ecalls: AtomicU64,
    ocalls: AtomicU64,
    simulated_ns: AtomicU64,
}

impl Boundary {
    /// Creates accounting with the given cost model; switchless mode
    /// starts enabled, matching the paper's prototype (§VI).
    #[must_use]
    pub fn new(model: CostModel) -> Boundary {
        Boundary {
            model,
            switchless: AtomicBool::new(true),
            ecalls: AtomicU64::new(0),
            ocalls: AtomicU64::new(0),
            simulated_ns: AtomicU64::new(0),
        }
    }

    /// Enables or disables switchless calls (the ablation toggle).
    pub fn set_switchless(&self, enabled: bool) {
        self.switchless.store(enabled, Ordering::Relaxed);
    }

    /// Whether switchless calls are in use.
    #[must_use]
    pub fn switchless(&self) -> bool {
        self.switchless.load(Ordering::Relaxed)
    }

    /// Records a call into the enclave and runs it.
    pub fn ecall<T>(&self, f: impl FnOnce() -> T) -> T {
        self.ecalls.fetch_add(1, Ordering::Relaxed);
        self.charge(if self.switchless() {
            self.model.switchless_ns
        } else {
            self.model.ecall_ns
        });
        f()
    }

    /// Records a call out of the enclave and runs it.
    pub fn ocall<T>(&self, f: impl FnOnce() -> T) -> T {
        self.ocalls.fetch_add(1, Ordering::Relaxed);
        self.charge(if self.switchless() {
            self.model.switchless_ns
        } else {
            self.model.ocall_ns
        });
        f()
    }

    /// Adds simulated time directly (paging, counter latency).
    pub fn charge(&self, ns: u64) {
        self.simulated_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> BoundaryStats {
        BoundaryStats {
            ecalls: self.ecalls.load(Ordering::Relaxed),
            ocalls: self.ocalls.load(Ordering::Relaxed),
            simulated_ns: self.simulated_ns.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.ecalls.store(0, Ordering::Relaxed);
        self.ocalls.store(0, Ordering::Relaxed);
        self.simulated_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_calls_and_charges_switchless_cost() {
        let b = Boundary::new(CostModel::default());
        let x = b.ecall(|| 41) + 1;
        assert_eq!(x, 42);
        b.ocall(|| ());
        let stats = b.stats();
        assert_eq!(stats.ecalls, 1);
        assert_eq!(stats.ocalls, 1);
        assert_eq!(stats.simulated_ns, 2 * CostModel::default().switchless_ns);
    }

    #[test]
    fn non_switchless_costs_more() {
        let model = CostModel::default();
        let b = Boundary::new(model);
        b.set_switchless(false);
        b.ecall(|| ());
        b.ocall(|| ());
        assert_eq!(b.stats().simulated_ns, model.ecall_ns + model.ocall_ns);
        assert!(model.ecall_ns > model.switchless_ns);
    }

    #[test]
    fn reset_clears_counters() {
        let b = Boundary::new(CostModel::default());
        b.ecall(|| ());
        b.charge(1000);
        b.reset();
        assert_eq!(b.stats(), BoundaryStats::default());
    }

    #[test]
    fn zero_model_charges_nothing() {
        let b = Boundary::new(CostModel::zero());
        b.set_switchless(false);
        b.ecall(|| ());
        b.ocall(|| ());
        assert_eq!(b.stats().simulated_ns, 0);
    }
}
