//! Reimplementation of the Intel SGX Protected File System Library
//! (§II-A "Protected File System Library").
//!
//! The library stores a byte stream as uniform 4 KiB nodes: on write,
//! "data is separated into 4kB chunks, the data's integrity is ensured
//! with a Merkle hash tree variant, and each chunk is encrypted with
//! AES-GCM". This module reproduces that design:
//!
//! * **Node format** — every node is exactly [`NODE_LEN`] bytes:
//!   `IV (12) || ciphertext || tag (16) || zero padding`. Data nodes
//!   carry up to [`DATA_PER_NODE`] plaintext bytes.
//! * **Tag tree** — the GCM tag of each node is authenticated data for
//!   its parent: *meta* nodes hold the concatenated tags of up to
//!   [`TAGS_PER_NODE`] children, themselves encrypted and tagged, up to a
//!   single top node whose tag lives in the encrypted header. Any
//!   modification, truncation, or node swap breaks a tag somewhere on the
//!   path to the root.
//! * **IV discipline** — per-file random nonce XOR (level, index), so IVs
//!   never repeat within a file; rewriting draws a fresh nonce.
//! * **Space overhead** — 28 bytes of framing per 4,068 data bytes plus
//!   one meta node per 254 children plus one header node: ~1.1 % for
//!   large files, matching the paper's measured 1.05–1.48 % storage
//!   overheads (§VII-B).
//!
//! Writing is streaming: [`PfsWriter`] buffers only the current node plus
//! 16 bytes per finished node (the tag list), which is what lets the
//! enclave re-encrypt arbitrarily large uploads with a small, constant
//! data buffer (§VI).

use seg_crypto::gcm::{Gcm, IV_LEN, TAG_LEN};
use seg_crypto::rng::SecureRandom;

use crate::SgxError;

/// Size of every stored node.
pub const NODE_LEN: usize = 4096;
/// Framing per node: IV plus GCM tag.
pub const NODE_OVERHEAD: usize = IV_LEN + TAG_LEN;
/// Plaintext data capacity of a data node.
pub const DATA_PER_NODE: usize = NODE_LEN - NODE_OVERHEAD;
/// Child tags per meta node.
pub const TAGS_PER_NODE: usize = DATA_PER_NODE / TAG_LEN;

const MAGIC: &[u8; 8] = b"SEGPFS1\0";
/// Encrypted header payload: magic 8 | version 2 | levels 2 | data_len 8 |
/// nonce 12 | top tag 16.
const HEADER_PT_LEN: usize = 8 + 2 + 2 + 8 + IV_LEN + TAG_LEN;

fn node_iv(nonce: &[u8; IV_LEN], level: u8, index: u64) -> [u8; IV_LEN] {
    let mut iv = *nonce;
    for (slot, b) in iv.iter_mut().zip(index.to_le_bytes()) {
        *slot ^= b;
    }
    iv[8] ^= level;
    iv
}

fn node_aad(level: u8, index: u64) -> [u8; 9] {
    let mut aad = [0u8; 9];
    aad[0] = level;
    aad[1..].copy_from_slice(&index.to_le_bytes());
    aad
}

/// Encrypts `plaintext` into a padded 4 KiB node.
fn seal_node(
    gcm: &Gcm,
    nonce: &[u8; IV_LEN],
    level: u8,
    index: u64,
    plaintext: &[u8],
) -> ([u8; TAG_LEN], Vec<u8>) {
    debug_assert!(plaintext.len() <= DATA_PER_NODE);
    let iv = node_iv(nonce, level, index);
    let sealed = gcm.seal(&iv, &node_aad(level, index), plaintext);
    let (ct, tag) = sealed.split_at(plaintext.len());
    let mut node = Vec::with_capacity(NODE_LEN);
    node.extend_from_slice(&iv);
    node.extend_from_slice(ct);
    node.extend_from_slice(tag);
    node.resize(NODE_LEN, 0);
    let mut tag_arr = [0u8; TAG_LEN];
    tag_arr.copy_from_slice(tag);
    (tag_arr, node)
}

/// Decrypts a node, checking its tag against `expected_tag`.
fn open_node(
    gcm: &Gcm,
    node: &[u8],
    level: u8,
    index: u64,
    plaintext_len: usize,
    expected_tag: &[u8; TAG_LEN],
) -> Result<Vec<u8>, SgxError> {
    if node.len() != NODE_LEN || plaintext_len > DATA_PER_NODE {
        return Err(SgxError::ProtectedFileCorrupted(format!(
            "bad node length at level {level} index {index}"
        )));
    }
    let iv: [u8; IV_LEN] = node[..IV_LEN].try_into().expect("12 bytes");
    let ct = &node[IV_LEN..IV_LEN + plaintext_len];
    let stored_tag = &node[IV_LEN + plaintext_len..IV_LEN + plaintext_len + TAG_LEN];
    // Padding is structurally zero; reject any modification so every
    // stored byte is covered by some check.
    if node[IV_LEN + plaintext_len + TAG_LEN..]
        .iter()
        .any(|&b| b != 0)
    {
        return Err(SgxError::ProtectedFileCorrupted(format!(
            "nonzero padding at level {level} index {index}"
        )));
    }
    if !seg_crypto::ct::ct_eq(stored_tag, expected_tag) {
        return Err(SgxError::ProtectedFileCorrupted(format!(
            "tag mismatch at level {level} index {index} (rollback or tamper)"
        )));
    }
    let mut sealed = Vec::with_capacity(plaintext_len + TAG_LEN);
    sealed.extend_from_slice(ct);
    sealed.extend_from_slice(stored_tag);
    gcm.open(&iv, &node_aad(level, index), &sealed)
        .map_err(|_| {
            SgxError::ProtectedFileCorrupted(format!(
                "authentication failed at level {level} index {index}"
            ))
        })
}

/// Number of data nodes for a given plaintext length.
fn data_node_count(data_len: u64) -> u64 {
    data_len.div_ceil(DATA_PER_NODE as u64)
}

/// Node counts per level: `counts[0]` is the data level.
fn level_counts(data_len: u64) -> Vec<u64> {
    let mut counts = vec![data_node_count(data_len)];
    while *counts.last().expect("non-empty") > 1 {
        let next = counts
            .last()
            .expect("non-empty")
            .div_ceil(TAGS_PER_NODE as u64);
        counts.push(next);
    }
    counts
}

/// Total stored size (bytes) for a plaintext of `data_len` bytes —
/// the quantity the paper's storage-overhead table reports.
#[must_use]
pub fn encrypted_size(data_len: u64) -> u64 {
    let counts = level_counts(data_len);
    let data_nodes = counts[0];
    let meta_nodes: u64 = if counts.len() > 1 {
        counts[1..].iter().sum()
    } else {
        0
    };
    (1 + data_nodes + meta_nodes) * NODE_LEN as u64
}

/// Streaming writer producing a protected-file blob.
pub struct PfsWriter {
    gcm: Gcm,
    nonce: [u8; IV_LEN],
    buffer: Vec<u8>,
    tags: Vec<[u8; TAG_LEN]>,
    /// Blob under construction; node 0 (header) is patched in `finish`.
    out: Vec<u8>,
    data_len: u64,
}

impl std::fmt::Debug for PfsWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PfsWriter")
            .field("data_len", &self.data_len)
            .finish()
    }
}

impl PfsWriter {
    /// Starts a protected file under `key` (16, 24, or 32 bytes — the
    /// caller provides the file key, as the paper's trusted file manager
    /// does; deriving from the sealing key is the caller's choice).
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::Crypto`] for invalid key lengths.
    pub fn new<R: SecureRandom>(key: &[u8], rng: &mut R) -> Result<PfsWriter, SgxError> {
        Ok(PfsWriter {
            gcm: Gcm::new(key)?,
            nonce: rng.array(),
            buffer: Vec::with_capacity(DATA_PER_NODE),
            tags: Vec::new(),
            out: vec![0u8; NODE_LEN], // header placeholder
            data_len: 0,
        })
    }

    /// Appends plaintext; full nodes are encrypted and emitted
    /// immediately (constant data buffering).
    pub fn write(&mut self, mut data: &[u8]) {
        let _prof = seg_obs::prof::phase("pfs");
        self.data_len += data.len() as u64;
        while !data.is_empty() {
            let take = (DATA_PER_NODE - self.buffer.len()).min(data.len());
            self.buffer.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buffer.len() == DATA_PER_NODE {
                self.flush_node();
            }
        }
    }

    fn flush_node(&mut self) {
        let index = self.tags.len() as u64;
        let (tag, node) = seal_node(&self.gcm, &self.nonce, 0, index, &self.buffer);
        self.tags.push(tag);
        self.out.extend_from_slice(&node);
        self.buffer.clear();
    }

    /// Finishes the file and returns the complete blob.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let _prof = seg_obs::prof::phase("pfs");
        if !self.buffer.is_empty() {
            self.flush_node();
        }
        // Build meta levels bottom-up until a single node remains.
        let mut level_tags = std::mem::take(&mut self.tags);
        let mut level = 1u8;
        let mut levels = 0u16;
        while level_tags.len() > 1 {
            let mut next_tags = Vec::with_capacity(level_tags.len().div_ceil(TAGS_PER_NODE));
            for (idx, group) in level_tags.chunks(TAGS_PER_NODE).enumerate() {
                let mut pt = Vec::with_capacity(group.len() * TAG_LEN);
                for tag in group {
                    pt.extend_from_slice(tag);
                }
                let (tag, node) = seal_node(&self.gcm, &self.nonce, level, idx as u64, &pt);
                next_tags.push(tag);
                self.out.extend_from_slice(&node);
            }
            level_tags = next_tags;
            level += 1;
            levels += 1;
        }
        let top_tag = level_tags.first().copied().unwrap_or([0u8; TAG_LEN]);

        // Header.
        let mut header_pt = Vec::with_capacity(HEADER_PT_LEN);
        header_pt.extend_from_slice(MAGIC);
        header_pt.extend_from_slice(&1u16.to_le_bytes()); // version
        header_pt.extend_from_slice(&levels.to_le_bytes());
        header_pt.extend_from_slice(&self.data_len.to_le_bytes());
        header_pt.extend_from_slice(&self.nonce);
        header_pt.extend_from_slice(&top_tag);
        debug_assert_eq!(header_pt.len(), HEADER_PT_LEN);
        // The header uses a fixed distinct level (0xff) at index 0; its IV
        // is still nonce-derived, which is safe because no other node uses
        // level 0xff.
        let (_, header_node) = seal_node(&self.gcm, &self.nonce, 0xff, 0, &header_pt);
        self.out[..NODE_LEN].copy_from_slice(&header_node);
        self.out
    }
}

/// A verified reader over a protected-file blob.
///
/// Opening verifies the meta-node path from the header's top tag down to
/// the per-data-node tags; [`read_node`](Self::read_node) then serves
/// random-access decryption of individual 4 KiB chunks.
pub struct PfsReader<'a> {
    gcm: Gcm,
    blob: &'a [u8],
    data_len: u64,
    data_tags: Vec<[u8; TAG_LEN]>,
}

impl std::fmt::Debug for PfsReader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PfsReader")
            .field("data_len", &self.data_len)
            .finish()
    }
}

impl<'a> PfsReader<'a> {
    /// Opens and integrity-verifies the blob's meta structure.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ProtectedFileCorrupted`] for any structural,
    /// cryptographic, or rollback problem.
    pub fn open(key: &[u8], blob: &'a [u8]) -> Result<PfsReader<'a>, SgxError> {
        let _prof = seg_obs::prof::phase("pfs");
        let gcm = Gcm::new(key)?;
        if blob.len() < NODE_LEN || !blob.len().is_multiple_of(NODE_LEN) {
            return Err(SgxError::ProtectedFileCorrupted(
                "blob is not a whole number of nodes".to_string(),
            ));
        }
        // The header authenticates itself via GCM (we do not know its tag
        // in advance, so open it directly from its stored IV and tag).
        let header_node = &blob[..NODE_LEN];
        let iv: [u8; IV_LEN] = header_node[..IV_LEN].try_into().expect("12 bytes");
        if header_node[IV_LEN + HEADER_PT_LEN + TAG_LEN..]
            .iter()
            .any(|&b| b != 0)
        {
            return Err(SgxError::ProtectedFileCorrupted(
                "nonzero header padding".to_string(),
            ));
        }
        let mut sealed = Vec::with_capacity(HEADER_PT_LEN + TAG_LEN);
        sealed.extend_from_slice(&header_node[IV_LEN..IV_LEN + HEADER_PT_LEN + TAG_LEN]);
        let header_pt = gcm.open(&iv, &node_aad(0xff, 0), &sealed).map_err(|_| {
            SgxError::ProtectedFileCorrupted("header authentication failed".to_string())
        })?;
        if &header_pt[..8] != MAGIC {
            return Err(SgxError::ProtectedFileCorrupted("bad magic".to_string()));
        }
        let version = u16::from_le_bytes(header_pt[8..10].try_into().expect("2 bytes"));
        if version != 1 {
            return Err(SgxError::ProtectedFileCorrupted(format!(
                "unsupported version {version}"
            )));
        }
        let levels = u16::from_le_bytes(header_pt[10..12].try_into().expect("2 bytes")) as usize;
        let data_len = u64::from_le_bytes(header_pt[12..20].try_into().expect("8 bytes"));
        // Per-node IVs are read from the nodes themselves; the header's
        // nonce field exists so a future in-place updater can derive them.
        let _nonce: [u8; IV_LEN] = header_pt[20..32].try_into().expect("12 bytes");
        let top_tag: [u8; TAG_LEN] = header_pt[32..48].try_into().expect("16 bytes");

        let counts = level_counts(data_len);
        if counts.len() != levels + 1 {
            return Err(SgxError::ProtectedFileCorrupted(
                "level count inconsistent with data length".to_string(),
            ));
        }
        let total_nodes: u64 = 1 + counts.iter().sum::<u64>();
        if blob.len() as u64 != total_nodes * NODE_LEN as u64 {
            return Err(SgxError::ProtectedFileCorrupted(
                "blob size inconsistent with header (truncation or extension)".to_string(),
            ));
        }

        // Node offsets: header, data level, then meta levels ascending.
        let mut level_offsets = Vec::with_capacity(counts.len());
        let mut offset = 1u64;
        for &c in &counts {
            level_offsets.push(offset);
            offset += c;
        }

        // Walk meta levels top-down, verifying tags and collecting the
        // level below's expected tags.
        let mut expected: Vec<[u8; TAG_LEN]> = vec![top_tag];
        for level in (1..=levels).rev() {
            let count = counts[level];
            debug_assert_eq!(expected.len() as u64, count);
            let child_count = counts[level - 1];
            let mut child_tags = Vec::with_capacity(child_count as usize);
            for idx in 0..count {
                let node_start = ((level_offsets[level] + idx) as usize) * NODE_LEN;
                let node = &blob[node_start..node_start + NODE_LEN];
                let children_here =
                    (child_count - idx * TAGS_PER_NODE as u64).min(TAGS_PER_NODE as u64) as usize;
                let pt = open_node(
                    &gcm,
                    node,
                    level as u8,
                    idx,
                    children_here * TAG_LEN,
                    &expected[idx as usize],
                )?;
                for chunk in pt.chunks_exact(TAG_LEN) {
                    child_tags.push(chunk.try_into().expect("16 bytes"));
                }
            }
            expected = child_tags;
        }
        // `expected` now holds the data-node tags (or the single data
        // node's tag when levels == 0, or nothing for an empty file).
        if data_len > 0 && expected.len() as u64 != counts[0] {
            return Err(SgxError::ProtectedFileCorrupted(
                "data tag count mismatch".to_string(),
            ));
        }
        Ok(PfsReader {
            gcm,
            blob,
            data_len,
            data_tags: if data_len == 0 { Vec::new() } else { expected },
        })
    }

    /// Plaintext length of the protected file.
    #[must_use]
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Number of data nodes.
    #[must_use]
    pub fn node_count(&self) -> u64 {
        data_node_count(self.data_len)
    }

    /// Decrypts and verifies data node `index`.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ProtectedFileCorrupted`] on tamper/rollback or
    /// out-of-range index.
    pub fn read_node(&self, index: u64) -> Result<Vec<u8>, SgxError> {
        let _prof = seg_obs::prof::phase("pfs");
        read_data_node(&self.gcm, self.blob, self.data_len, &self.data_tags, index)
    }

    /// Decrypts the whole file.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ProtectedFileCorrupted`] on any integrity
    /// failure.
    pub fn read_all(&self) -> Result<Vec<u8>, SgxError> {
        let _prof = seg_obs::prof::phase("pfs");
        let mut out = Vec::with_capacity(self.data_len as usize);
        for i in 0..self.node_count() {
            out.extend_from_slice(&self.read_node(i)?);
        }
        Ok(out)
    }
}

fn read_data_node(
    gcm: &Gcm,
    blob: &[u8],
    data_len: u64,
    data_tags: &[[u8; TAG_LEN]],
    index: u64,
) -> Result<Vec<u8>, SgxError> {
    let n = data_node_count(data_len);
    if index >= n {
        return Err(SgxError::ProtectedFileCorrupted(format!(
            "node index {index} out of range ({n} nodes)"
        )));
    }
    let len = if index == n - 1 {
        (data_len - index * DATA_PER_NODE as u64) as usize
    } else {
        DATA_PER_NODE
    };
    let start = ((1 + index) as usize) * NODE_LEN;
    let node = &blob[start..start + NODE_LEN];
    open_node(gcm, node, 0, index, len, &data_tags[index as usize])
}

/// An owning variant of [`PfsReader`], for callers that stream a file's
/// chunks across multiple turns (the enclave's download sessions): the
/// encrypted blob stays in (conceptually untrusted) memory inside this
/// struct while the enclave holds only the current decrypted chunk.
pub struct PfsFile {
    gcm: Gcm,
    blob: Vec<u8>,
    data_len: u64,
    data_tags: Vec<[u8; TAG_LEN]>,
}

impl std::fmt::Debug for PfsFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PfsFile")
            .field("data_len", &self.data_len)
            .finish()
    }
}

impl PfsFile {
    /// Opens and integrity-verifies `blob`, taking ownership.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ProtectedFileCorrupted`] for any structural,
    /// cryptographic, or rollback problem.
    pub fn open(key: &[u8], blob: Vec<u8>) -> Result<PfsFile, SgxError> {
        let _prof = seg_obs::prof::phase("pfs");
        let reader = PfsReader::open(key, &blob)?;
        let data_len = reader.data_len;
        let data_tags = reader.data_tags;
        let gcm = reader.gcm;
        Ok(PfsFile {
            gcm,
            blob,
            data_len,
            data_tags,
        })
    }

    /// Plaintext length.
    #[must_use]
    pub fn data_len(&self) -> u64 {
        self.data_len
    }

    /// Number of data nodes.
    #[must_use]
    pub fn node_count(&self) -> u64 {
        data_node_count(self.data_len)
    }

    /// Decrypts and verifies data node `index`.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ProtectedFileCorrupted`] on tamper/rollback or
    /// out-of-range index.
    pub fn read_node(&self, index: u64) -> Result<Vec<u8>, SgxError> {
        let _prof = seg_obs::prof::phase("pfs");
        read_data_node(&self.gcm, &self.blob, self.data_len, &self.data_tags, index)
    }

    /// Decrypts the whole file.
    ///
    /// # Errors
    ///
    /// Returns [`SgxError::ProtectedFileCorrupted`] on any integrity
    /// failure.
    pub fn read_all(&self) -> Result<Vec<u8>, SgxError> {
        let _prof = seg_obs::prof::phase("pfs");
        let mut out = Vec::with_capacity(self.data_len as usize);
        for i in 0..self.node_count() {
            out.extend_from_slice(&self.read_node(i)?);
        }
        Ok(out)
    }
}

/// One-shot encryption of `plaintext` into a protected-file blob.
///
/// # Errors
///
/// Returns [`SgxError::Crypto`] for invalid key lengths.
pub fn pfs_encrypt<R: SecureRandom>(
    key: &[u8],
    plaintext: &[u8],
    rng: &mut R,
) -> Result<Vec<u8>, SgxError> {
    let _prof = seg_obs::prof::phase("pfs");
    let mut w = PfsWriter::new(key, rng)?;
    w.write(plaintext);
    Ok(w.finish())
}

/// One-shot verification and decryption of a protected-file blob.
///
/// # Errors
///
/// Returns [`SgxError::ProtectedFileCorrupted`] on any integrity failure.
pub fn pfs_decrypt(key: &[u8], blob: &[u8]) -> Result<Vec<u8>, SgxError> {
    let _prof = seg_obs::prof::phase("pfs");
    PfsReader::open(key, blob)?.read_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seg_crypto::rng::DeterministicRng;

    const KEY: [u8; 16] = [7u8; 16];

    fn rng() -> DeterministicRng {
        DeterministicRng::seeded(99)
    }

    #[test]
    fn roundtrip_various_sizes() {
        for len in [
            0usize,
            1,
            100,
            DATA_PER_NODE - 1,
            DATA_PER_NODE,
            DATA_PER_NODE + 1,
            3 * DATA_PER_NODE + 17,
            255 * DATA_PER_NODE, // forces two meta levels
        ] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let blob = pfs_encrypt(&KEY, &pt, &mut rng()).unwrap();
            assert_eq!(blob.len() as u64, encrypted_size(len as u64), "len {len}");
            assert_eq!(pfs_decrypt(&KEY, &blob).unwrap(), pt, "len {len}");
        }
    }

    #[test]
    fn streaming_write_matches_one_shot_semantics() {
        let pt: Vec<u8> = (0..3 * DATA_PER_NODE + 100)
            .map(|i| (i % 256) as u8)
            .collect();
        let mut w = PfsWriter::new(&KEY, &mut rng()).unwrap();
        for chunk in pt.chunks(1000) {
            w.write(chunk);
        }
        let blob = w.finish();
        assert_eq!(pfs_decrypt(&KEY, &blob).unwrap(), pt);
    }

    #[test]
    fn random_access_reads() {
        let pt: Vec<u8> = (0..5 * DATA_PER_NODE + 123)
            .map(|i| (i % 201) as u8)
            .collect();
        let blob = pfs_encrypt(&KEY, &pt, &mut rng()).unwrap();
        let r = PfsReader::open(&KEY, &blob).unwrap();
        assert_eq!(r.node_count(), 6);
        // Middle node.
        assert_eq!(
            r.read_node(2).unwrap(),
            &pt[2 * DATA_PER_NODE..3 * DATA_PER_NODE]
        );
        // Short last node.
        assert_eq!(r.read_node(5).unwrap(), &pt[5 * DATA_PER_NODE..]);
        assert!(r.read_node(6).is_err());
    }

    #[test]
    fn wrong_key_rejected() {
        let blob = pfs_encrypt(&KEY, b"secret contents", &mut rng()).unwrap();
        assert!(matches!(
            pfs_decrypt(&[8u8; 16], &blob),
            Err(SgxError::ProtectedFileCorrupted(_))
        ));
    }

    #[test]
    fn every_node_tamper_detected() {
        let pt: Vec<u8> = (0..2 * DATA_PER_NODE + 50)
            .map(|i| (i % 256) as u8)
            .collect();
        let blob = pfs_encrypt(&KEY, &pt, &mut rng()).unwrap();
        let nodes = blob.len() / NODE_LEN;
        assert_eq!(nodes, 5); // header + 3 data + 1 meta
        for node in 0..nodes {
            // Flip a byte inside each node's ciphertext region.
            let mut bad = blob.clone();
            bad[node * NODE_LEN + IV_LEN + 3] ^= 1;
            assert!(
                pfs_decrypt(&KEY, &bad).is_err(),
                "tamper in node {node} undetected"
            );
        }
    }

    #[test]
    fn node_swap_detected() {
        let pt: Vec<u8> = (0..3 * DATA_PER_NODE).map(|i| (i % 256) as u8).collect();
        let blob = pfs_encrypt(&KEY, &pt, &mut rng()).unwrap();
        let mut swapped = blob.clone();
        // Swap data nodes 0 and 1 (blob nodes 1 and 2).
        let (a, b) = (NODE_LEN, 2 * NODE_LEN);
        let tmp = swapped[a..a + NODE_LEN].to_vec();
        swapped.copy_within(b..b + NODE_LEN, a);
        swapped[b..b + NODE_LEN].copy_from_slice(&tmp);
        assert!(pfs_decrypt(&KEY, &swapped).is_err());
    }

    #[test]
    fn truncation_and_extension_detected() {
        let pt = vec![1u8; 2 * DATA_PER_NODE];
        let blob = pfs_encrypt(&KEY, &pt, &mut rng()).unwrap();
        assert!(pfs_decrypt(&KEY, &blob[..blob.len() - NODE_LEN]).is_err());
        let mut extended = blob.clone();
        extended.extend_from_slice(&vec![0u8; NODE_LEN]);
        assert!(pfs_decrypt(&KEY, &extended).is_err());
        assert!(pfs_decrypt(&KEY, &blob[..100]).is_err());
        assert!(pfs_decrypt(&KEY, &[]).is_err());
    }

    #[test]
    fn cross_file_node_replay_detected() {
        // Two files under the same key: nodes cannot be transplanted
        // because tags are checked against each file's own tag tree.
        let blob_a = pfs_encrypt(&KEY, &vec![0xaa; DATA_PER_NODE * 2], &mut rng()).unwrap();
        let blob_b = pfs_encrypt(&KEY, &vec![0xbb; DATA_PER_NODE * 2], &mut rng()).unwrap();
        let mut franken = blob_a.clone();
        franken[NODE_LEN..2 * NODE_LEN].copy_from_slice(&blob_b[NODE_LEN..2 * NODE_LEN]);
        assert!(pfs_decrypt(&KEY, &franken).is_err());
    }

    #[test]
    fn encrypted_size_matches_paper_scale() {
        // ~1.1 % overhead for 10 MB and 200 MB files, matching §VII-B.
        for (plain, lo, hi) in [(10_000_000u64, 1.0, 1.25), (200_000_000u64, 1.0, 1.15)] {
            let enc = encrypted_size(plain) as f64;
            let overhead = (enc - plain as f64) / plain as f64 * 100.0;
            assert!(
                overhead > lo && overhead < hi,
                "overhead {overhead:.2}% for {plain} bytes outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn rewrites_use_fresh_nonces() {
        let mut rng = rng();
        let b1 = pfs_encrypt(&KEY, b"same content", &mut rng).unwrap();
        let b2 = pfs_encrypt(&KEY, b"same content", &mut rng).unwrap();
        assert_ne!(b1, b2, "re-encryption must be probabilistic");
    }
}
