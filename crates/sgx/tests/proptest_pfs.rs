//! Property-based tests for the Protected File System reimplementation
//! and the sealing/attestation primitives.

use proptest::prelude::*;
use seg_crypto::rng::DeterministicRng;
use seg_sgx::pfs::{self, PfsFile, PfsWriter, DATA_PER_NODE};
use seg_sgx::{EnclaveImage, Platform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pfs_roundtrip_arbitrary_sizes(
        len in 0usize..3 * DATA_PER_NODE + 7,
        key in proptest::array::uniform16(any::<u8>()),
        seed in any::<u64>(),
    ) {
        let data: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
        let mut rng = DeterministicRng::seeded(seed);
        let blob = pfs::pfs_encrypt(&key, &data, &mut rng).expect("encrypt");
        prop_assert_eq!(blob.len() as u64, pfs::encrypted_size(len as u64));
        prop_assert_eq!(pfs::pfs_decrypt(&key, &blob).expect("decrypt"), data);
    }

    #[test]
    fn pfs_streamed_writes_equal_one_shot(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..5000), 0..8),
        seed in any::<u64>(),
    ) {
        let key = [9u8; 16];
        let mut rng = DeterministicRng::seeded(seed);
        let mut writer = PfsWriter::new(&key, &mut rng).expect("writer");
        let mut all = Vec::new();
        for chunk in &chunks {
            writer.write(chunk);
            all.extend_from_slice(chunk);
        }
        let blob = writer.finish();
        prop_assert_eq!(pfs::pfs_decrypt(&key, &blob).expect("decrypt"), all);
    }

    #[test]
    fn pfs_detects_any_tamper(
        len in 1usize..2 * DATA_PER_NODE,
        flip_at in any::<u32>(),
        bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        let key = [3u8; 16];
        let data = vec![0x5au8; len];
        let mut rng = DeterministicRng::seeded(seed);
        let mut blob = pfs::pfs_encrypt(&key, &data, &mut rng).expect("encrypt");
        let idx = (flip_at as usize) % blob.len();
        blob[idx] ^= 1 << bit;
        prop_assert!(pfs::pfs_decrypt(&key, &blob).is_err());
    }

    #[test]
    fn pfs_random_access_matches_linear(
        len in 1usize..4 * DATA_PER_NODE,
        node in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let key = [4u8; 16];
        let data: Vec<u8> = (0..len).map(|i| (i % 249) as u8).collect();
        let mut rng = DeterministicRng::seeded(seed);
        let blob = pfs::pfs_encrypt(&key, &data, &mut rng).expect("encrypt");
        let file = PfsFile::open(&key, blob).expect("open");
        let node = node % file.node_count();
        let expected =
            &data[(node as usize) * DATA_PER_NODE..len.min((node as usize + 1) * DATA_PER_NODE)];
        prop_assert_eq!(file.read_node(node).expect("read"), expected);
    }

    #[test]
    fn sealing_roundtrip_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        seed in any::<u64>(),
    ) {
        let platform = Platform::new_with_seed(seed);
        let enclave = platform.launch(&EnclaveImage::from_code(b"prop"));
        let sealed = enclave.seal(&payload).expect("seal");
        prop_assert_eq!(enclave.unseal(&sealed).expect("unseal"), payload);
    }

    #[test]
    fn quotes_verify_only_under_their_platform(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        prop_assume!(seed_a != seed_b);
        let a = Platform::new_with_seed(seed_a);
        let b = Platform::new_with_seed(seed_b);
        let enclave = a.launch(&EnclaveImage::from_code(b"prop"));
        let quote = enclave.quote(b"report");
        prop_assert!(quote.verify(&a.attestation_public_key()).is_ok());
        prop_assert!(quote.verify(&b.attestation_public_key()).is_err());
    }
}
