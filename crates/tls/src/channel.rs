//! The record layer: AES-128-GCM with sequence-number nonces.

use seg_crypto::gcm::{Gcm, IV_LEN};

use crate::TlsError;

/// Traffic keys for one direction.
#[derive(Clone)]
pub(crate) struct DirectionKeys {
    pub key: [u8; 16],
    pub iv_base: [u8; IV_LEN],
}

/// An established secure channel endpoint (one side).
///
/// Produced by a completed handshake. `seal` turns plaintext into an
/// opaque record; `open` authenticates and decrypts a peer record.
/// Records carry implicit sequence numbers: dropping, reordering, or
/// replaying records makes `open` fail.
pub struct TlsChannel {
    send: Gcm,
    recv: Gcm,
    send_iv: [u8; IV_LEN],
    recv_iv: [u8; IV_LEN],
    send_seq: u64,
    recv_seq: u64,
}

impl std::fmt::Debug for TlsChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TlsChannel")
            .field("send_seq", &self.send_seq)
            .field("recv_seq", &self.recv_seq)
            .finish()
    }
}

fn nonce(iv_base: &[u8; IV_LEN], seq: u64) -> [u8; IV_LEN] {
    let mut iv = *iv_base;
    for (slot, b) in iv[IV_LEN - 8..].iter_mut().zip(seq.to_be_bytes()) {
        *slot ^= b;
    }
    iv
}

fn record_aad(seq: u64) -> [u8; 11] {
    let mut aad = *b"rec\0\0\0\0\0\0\0\0";
    aad[3..].copy_from_slice(&seq.to_be_bytes());
    aad
}

impl TlsChannel {
    pub(crate) fn new(send: DirectionKeys, recv: DirectionKeys) -> TlsChannel {
        TlsChannel {
            send: Gcm::new(&send.key).expect("16-byte key"),
            recv: Gcm::new(&recv.key).expect("16-byte key"),
            send_iv: send.iv_base,
            recv_iv: recv.iv_base,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Encrypts one record.
    #[must_use]
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let _prof = seg_obs::prof::phase("tls_record");
        let seq = self.send_seq;
        self.send_seq += 1;
        self.send
            .seal(&nonce(&self.send_iv, seq), &record_aad(seq), plaintext)
    }

    /// Authenticates and decrypts one record.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::RecordRejected`] on tampering, replay,
    /// reorder, or truncation.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, TlsError> {
        let _prof = seg_obs::prof::phase("tls_record");
        let seq = self.recv_seq;
        let plaintext = self
            .recv
            .open(&nonce(&self.recv_iv, seq), &record_aad(seq), record)
            .map_err(|_| TlsError::RecordRejected)?;
        self.recv_seq += 1;
        Ok(plaintext)
    }

    /// Records sent so far.
    #[must_use]
    pub fn sent_records(&self) -> u64 {
        self.send_seq
    }

    /// Records received so far.
    #[must_use]
    pub fn received_records(&self) -> u64 {
        self.recv_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (TlsChannel, TlsChannel) {
        let a = DirectionKeys {
            key: [1u8; 16],
            iv_base: [2u8; 12],
        };
        let b = DirectionKeys {
            key: [3u8; 16],
            iv_base: [4u8; 12],
        };
        (TlsChannel::new(a.clone(), b.clone()), TlsChannel::new(b, a))
    }

    #[test]
    fn seal_open_roundtrip() {
        let (mut c, mut s) = pair();
        for i in 0..10u32 {
            let msg = format!("message {i}");
            let rec = c.seal(msg.as_bytes());
            assert_eq!(s.open(&rec).unwrap(), msg.as_bytes());
        }
        // And the other direction.
        let rec = s.seal(b"reply");
        assert_eq!(c.open(&rec).unwrap(), b"reply");
    }

    #[test]
    fn replay_rejected() {
        let (mut c, mut s) = pair();
        let rec = c.seal(b"once");
        s.open(&rec).unwrap();
        assert_eq!(s.open(&rec).unwrap_err(), TlsError::RecordRejected);
    }

    #[test]
    fn reorder_rejected() {
        let (mut c, mut s) = pair();
        let r1 = c.seal(b"first");
        let r2 = c.seal(b"second");
        assert_eq!(s.open(&r2).unwrap_err(), TlsError::RecordRejected);
        // The failed open must not advance state: r1 still opens.
        assert_eq!(s.open(&r1).unwrap(), b"first");
        assert_eq!(s.open(&r2).unwrap(), b"second");
    }

    #[test]
    fn tamper_rejected() {
        let (mut c, mut s) = pair();
        let mut rec = c.seal(b"payload");
        rec[0] ^= 1;
        assert_eq!(s.open(&rec).unwrap_err(), TlsError::RecordRejected);
    }

    #[test]
    fn direction_keys_differ() {
        let (mut c, mut s) = pair();
        // A record sealed by the client cannot be opened by the client's
        // own receive state (reflection attack).
        let rec = c.seal(b"to server");
        assert!(c.open(&rec).is_err());
        assert!(s.open(&rec).is_ok());
    }
}
