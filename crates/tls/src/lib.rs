//! A TLS-1.2-shaped, mutually-authenticated secure channel.
//!
//! The paper found public SGX TLS stacks inadequate and built its own
//! hybrid (§VI: Intel's crypto library plus OpenSSL's networking). The
//! architectural point — reproduced here — is the *split* of §IV-B:
//!
//! > "The untrusted TLS interface terminates the network connection
//! > (e.g., TCP), because the enclave cannot perform I/O. All TLS records
//! > are forwarded to the trusted TLS interface, which first performs the
//! > TLS handshake... Next, it decrypts/encrypts all incoming/outgoing
//! > TLS records."
//!
//! Accordingly the handshake ([`handshake`]) and record layer
//! ([`channel`]) are *sans-I/O* state machines that only ever consume and
//! produce opaque byte frames; the untrusted host pumps those frames
//! to/from a [`seg_net::FrameTransport`]. [`stream::SecureStream`] is the
//! client-side convenience that owns both halves.
//!
//! The handshake is ECDHE (X25519) with Ed25519 certificates on both
//! sides (mutual authentication, §IV-A), an HKDF-SHA-256 key schedule
//! bound to the handshake transcript, and AES-128-GCM records with
//! sequence-number nonces. The wire format is this crate's own — the
//! paper's guarantees need the handshake's properties, not RFC 5246
//! byte-compatibility.

pub mod channel;
pub mod handshake;
mod msg;
pub mod stream;

pub use channel::TlsChannel;
pub use handshake::{ClientHandshake, HandshakeStep, ServerHandshake};
pub use stream::SecureStream;

use std::error::Error;
use std::fmt;

/// Errors from the secure channel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TlsError {
    /// A handshake or record message was malformed.
    Malformed(String),
    /// The peer's certificate failed validation.
    CertificateInvalid(String),
    /// A handshake signature or finished MAC failed.
    HandshakeFailed(String),
    /// A record failed authentication (tamper, replay, reorder).
    RecordRejected,
    /// A message arrived in the wrong handshake state.
    UnexpectedMessage,
    /// The underlying transport failed.
    Net(seg_net::NetError),
    /// Key agreement produced a weak secret.
    Crypto(seg_crypto::CryptoError),
}

impl fmt::Display for TlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsError::Malformed(msg) => write!(f, "malformed tls message: {msg}"),
            TlsError::CertificateInvalid(msg) => write!(f, "peer certificate invalid: {msg}"),
            TlsError::HandshakeFailed(msg) => write!(f, "handshake failed: {msg}"),
            TlsError::RecordRejected => f.write_str("record failed authentication"),
            TlsError::UnexpectedMessage => f.write_str("message in unexpected handshake state"),
            TlsError::Net(e) => write!(f, "transport error: {e}"),
            TlsError::Crypto(e) => write!(f, "crypto error: {e}"),
        }
    }
}

impl Error for TlsError {}

impl From<seg_net::NetError> for TlsError {
    fn from(e: seg_net::NetError) -> Self {
        TlsError::Net(e)
    }
}

impl From<seg_crypto::CryptoError> for TlsError {
    fn from(e: seg_crypto::CryptoError) -> Self {
        TlsError::Crypto(e)
    }
}
