//! Blocking convenience wrapper: a [`TlsChannel`] bound to a transport.
//!
//! The *client* side owns both halves (user applications have no
//! trusted/untrusted split). The server host instead pumps frames
//! between its transport and the enclave's sans-I/O state machines.

use seg_crypto::ed25519::{PublicKey, SecretKey};
use seg_crypto::rng::SecureRandom;
use seg_net::FrameTransport;
use seg_pki::Certificate;

use crate::channel::TlsChannel;
use crate::handshake::ClientHandshake;
use crate::TlsError;

/// An established secure connection over a frame transport.
pub struct SecureStream<T: FrameTransport> {
    transport: T,
    channel: TlsChannel,
    peer_certificate: Certificate,
}

impl<T: FrameTransport> std::fmt::Debug for SecureStream<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureStream")
            .field("channel", &self.channel)
            .finish()
    }
}

impl<T: FrameTransport> SecureStream<T> {
    /// Performs the client side of the handshake over `transport`.
    ///
    /// # Errors
    ///
    /// Returns any [`TlsError`] from the handshake or transport.
    pub fn connect<R: SecureRandom>(
        mut transport: T,
        certificate: Certificate,
        key: SecretKey,
        ca_key: PublicKey,
        now: u64,
        rng: &mut R,
    ) -> Result<SecureStream<T>, TlsError> {
        let (mut hs, first) = ClientHandshake::start(certificate, key, ca_key, now, rng);
        transport.send_frame(&first)?;
        loop {
            let frame = transport.recv_frame()?;
            let step = hs.process(&frame)?;
            for reply in &step.replies {
                transport.send_frame(reply)?;
            }
            if step.done {
                break;
            }
        }
        let (channel, peer_certificate) = hs.into_established().expect("handshake reported done");
        Ok(SecureStream {
            transport,
            channel,
            peer_certificate,
        })
    }

    /// Wraps an already-established channel (server-side helper for
    /// tests and the baselines).
    #[must_use]
    pub fn from_parts(transport: T, channel: TlsChannel, peer_certificate: Certificate) -> Self {
        SecureStream {
            transport,
            channel,
            peer_certificate,
        }
    }

    /// The peer's validated certificate.
    #[must_use]
    pub fn peer_certificate(&self) -> &Certificate {
        &self.peer_certificate
    }

    /// Encrypts and sends one message.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::Net`] on transport failure.
    pub fn send(&mut self, plaintext: &[u8]) -> Result<(), TlsError> {
        let record = self.channel.seal(plaintext);
        self.transport.send_frame(&record)?;
        Ok(())
    }

    /// Receives and decrypts one message.
    ///
    /// # Errors
    ///
    /// Returns [`TlsError::Net`] / [`TlsError::RecordRejected`].
    pub fn recv(&mut self) -> Result<Vec<u8>, TlsError> {
        let record = self.transport.recv_frame()?;
        self.channel.open(&record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::ServerHandshake;
    use seg_crypto::rng::DeterministicRng;
    use seg_pki::{CertificateAuthority, Csr, Identity};

    #[test]
    fn stream_over_duplex_with_threaded_server() {
        let mut rng = DeterministicRng::seeded(11);
        let ca = CertificateAuthority::new("ca", &mut rng);
        let (client_cert, client_key) = ca.issue_user(
            Identity::user("bob", "b@example.com", "Bob").unwrap(),
            0,
            1000,
            &mut rng,
        );
        let server_key = SecretKey::generate(&mut rng);
        let csr = Csr::new(Identity::server("s"), &server_key);
        let server_cert = ca.issue_server_from_csr(&csr, 0, 1000).unwrap();
        let ca_key = ca.public_key();

        let (client_t, mut server_t) = seg_net::duplex();

        let server_cert2 = server_cert.clone();
        let server = std::thread::spawn(move || {
            let mut srng = DeterministicRng::seeded(12);
            let mut hs = ServerHandshake::new(
                std::sync::Arc::new(server_cert2),
                server_key,
                ca_key,
                500,
                &mut srng,
            );
            let (channel, client_cert) = loop {
                let frame = server_t.recv_frame().unwrap();
                let step = hs.process(&frame, &mut srng).unwrap();
                for reply in &step.replies {
                    server_t.send_frame(reply).unwrap();
                }
                if step.done {
                    break hs.into_established().unwrap();
                }
            };
            let mut stream = SecureStream::from_parts(server_t, channel, client_cert);
            // Echo until close.
            while let Ok(msg) = stream.recv() {
                stream.send(&msg).unwrap();
            }
        });

        let mut crng = DeterministicRng::seeded(13);
        let mut stream =
            SecureStream::connect(client_t, client_cert, client_key, ca_key, 500, &mut crng)
                .unwrap();
        assert!(matches!(
            stream.peer_certificate().subject(),
            Identity::Server { .. }
        ));
        for size in [0usize, 1, 1000, 100_000] {
            let msg: Vec<u8> = (0..size).map(|i| (i % 256) as u8).collect();
            stream.send(&msg).unwrap();
            assert_eq!(stream.recv().unwrap(), msg);
        }
        drop(stream);
        server.join().unwrap();
    }
}
