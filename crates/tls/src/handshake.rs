//! The mutually-authenticated ECDHE handshake, as sans-I/O state
//! machines.
//!
//! Frame flow (each frame is opaque to the untrusted pump):
//!
//! ```text
//! client                                server
//!   | -- M1 ClientHello (random, cert) -->|
//!   |<-- M2 ServerHello (random, cert,  --|
//!   |        ecdhe pub, kex signature)    |
//!   | -- M3 ClientKex (ecdhe pub,      -->|
//!   |        certificate-verify)          |
//!   | -- F1 Finished (encrypted)       -->|
//!   |<-- F2 Finished (encrypted)        --|
//! ```
//!
//! Both finished MACs are keyed with the master secret and bound to the
//! handshake transcript, so any tampering with M1–M3 aborts the session.

use std::sync::Arc;

use seg_crypto::ed25519::{PublicKey, SecretKey, Signature};
use seg_crypto::hkdf;
use seg_crypto::hmac::Hmac;
use seg_crypto::rng::SecureRandom;
use seg_crypto::sha256::Sha256;
use seg_crypto::x25519::EphemeralKeyPair;
use seg_pki::{Certificate, Identity};

use crate::channel::{DirectionKeys, TlsChannel};
use crate::msg::{ClientHello, ClientKex, ServerHello};
use crate::TlsError;

const KEX_LABEL: &[u8] = b"segtls-server-kex";
const VERIFY_LABEL: &[u8] = b"segtls-client-verify";

/// Output of feeding one frame into a handshake state machine.
#[derive(Debug, Default)]
pub struct HandshakeStep {
    /// Frames to transmit to the peer, in order.
    pub replies: Vec<Vec<u8>>,
    /// Whether the handshake just completed.
    pub done: bool,
}

/// Key material both sides derive identically.
struct SessionKeys {
    master: [u8; 32],
    client: DirectionKeys,
    server: DirectionKeys,
    transcript_hash: [u8; 32],
}

fn derive_keys(
    shared: &[u8; 32],
    client_random: &[u8; 32],
    server_random: &[u8; 32],
    transcript_hash: [u8; 32],
) -> SessionKeys {
    let mut salt = Vec::with_capacity(9 + 64);
    salt.extend_from_slice(b"segtls-v1");
    salt.extend_from_slice(client_random);
    salt.extend_from_slice(server_random);
    let master_vec = hkdf::extract::<Sha256>(&salt, shared);
    let master: [u8; 32] = master_vec.as_slice().try_into().expect("32 bytes");

    let mut info = Vec::with_capacity(20 + 32);
    info.extend_from_slice(b"segtls key expansion");
    info.extend_from_slice(&transcript_hash);
    let okm = hkdf::expand::<Sha256>(&master, &info, 56);
    SessionKeys {
        master,
        client: DirectionKeys {
            key: okm[0..16].try_into().expect("16 bytes"),
            iv_base: okm[32..44].try_into().expect("12 bytes"),
        },
        server: DirectionKeys {
            key: okm[16..32].try_into().expect("16 bytes"),
            iv_base: okm[44..56].try_into().expect("12 bytes"),
        },
        transcript_hash,
    }
}

fn finished_mac(master: &[u8; 32], role: &str, transcript_hash: &[u8; 32]) -> Vec<u8> {
    let mut h = Hmac::<Sha256>::new(master);
    h.update(role.as_bytes());
    h.update(b" finished");
    h.update(transcript_hash);
    h.finalize()
}

fn kex_signed_bytes(
    client_random: &[u8; 32],
    server_random: &[u8; 32],
    server_pub: &[u8; 32],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(KEX_LABEL.len() + 96);
    out.extend_from_slice(KEX_LABEL);
    out.extend_from_slice(client_random);
    out.extend_from_slice(server_random);
    out.extend_from_slice(server_pub);
    out
}

fn verify_signed_bytes(
    client_random: &[u8; 32],
    server_random: &[u8; 32],
    client_pub: &[u8; 32],
    server_pub: &[u8; 32],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(VERIFY_LABEL.len() + 128);
    out.extend_from_slice(VERIFY_LABEL);
    out.extend_from_slice(client_random);
    out.extend_from_slice(server_random);
    out.extend_from_slice(client_pub);
    out.extend_from_slice(server_pub);
    out
}

// ---------------------------------------------------------------- client

enum ClientState {
    AwaitServerHello,
    AwaitServerFinished {
        channel: TlsChannel,
        master: [u8; 32],
        transcript_hash: [u8; 32],
        server_cert: Certificate,
    },
    Done {
        channel: TlsChannel,
        server_cert: Certificate,
    },
    Failed,
}

/// The client (user application) side of the handshake.
pub struct ClientHandshake {
    certificate: Certificate,
    key: SecretKey,
    ca_key: PublicKey,
    now: u64,
    random: [u8; 32],
    ephemeral: EphemeralKeyPair,
    transcript: Sha256,
    state: ClientState,
}

impl std::fmt::Debug for ClientHandshake {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ClientHandshake(..)")
    }
}

impl ClientHandshake {
    /// Starts a handshake; returns the state machine and the first frame
    /// (M1) to send.
    #[must_use]
    pub fn start<R: SecureRandom>(
        certificate: Certificate,
        key: SecretKey,
        ca_key: PublicKey,
        now: u64,
        rng: &mut R,
    ) -> (ClientHandshake, Vec<u8>) {
        let random: [u8; 32] = rng.array();
        let hello = ClientHello {
            random,
            certificate: certificate.clone(),
        }
        .encode();
        let mut transcript = Sha256::new();
        transcript.update(&hello);
        (
            ClientHandshake {
                certificate,
                key,
                ca_key,
                now,
                random,
                ephemeral: EphemeralKeyPair::generate(rng),
                transcript,
                state: ClientState::AwaitServerHello,
            },
            hello,
        )
    }

    /// Feeds one frame from the server.
    ///
    /// # Errors
    ///
    /// Any [`TlsError`] aborts the handshake permanently.
    pub fn process(&mut self, frame: &[u8]) -> Result<HandshakeStep, TlsError> {
        let state = std::mem::replace(&mut self.state, ClientState::Failed);
        match state {
            ClientState::AwaitServerHello => self.on_server_hello(frame),
            ClientState::AwaitServerFinished {
                mut channel,
                master,
                transcript_hash,
                server_cert,
            } => {
                let mac = channel.open(frame)?;
                let expected = finished_mac(&master, "server", &transcript_hash);
                if !seg_crypto::ct::ct_eq(&mac, &expected) {
                    return Err(TlsError::HandshakeFailed(
                        "server finished mac mismatch".to_string(),
                    ));
                }
                self.state = ClientState::Done {
                    channel,
                    server_cert,
                };
                Ok(HandshakeStep {
                    replies: Vec::new(),
                    done: true,
                })
            }
            ClientState::Done { .. } | ClientState::Failed => Err(TlsError::UnexpectedMessage),
        }
    }

    fn on_server_hello(&mut self, frame: &[u8]) -> Result<HandshakeStep, TlsError> {
        let hello = ServerHello::decode(frame)?;
        hello
            .certificate
            .validate(&self.ca_key, self.now)
            .map_err(|e| TlsError::CertificateInvalid(e.to_string()))?;
        if !matches!(hello.certificate.subject(), Identity::Server { .. }) {
            return Err(TlsError::CertificateInvalid(
                "peer presented a non-server certificate".to_string(),
            ));
        }
        // Verify the server's key-exchange signature.
        let signed = kex_signed_bytes(&self.random, &hello.random, &hello.ecdhe_public);
        hello
            .certificate
            .public_key()
            .verify(&signed, &Signature(hello.signature))
            .map_err(|_| TlsError::HandshakeFailed("bad server kex signature".to_string()))?;

        self.transcript.update(frame);

        // Build and sign M3.
        let client_pub = *self.ephemeral.public();
        let verify_sig = self.key.sign(&verify_signed_bytes(
            &self.random,
            &hello.random,
            &client_pub,
            &hello.ecdhe_public,
        ));
        let kex = ClientKex {
            ecdhe_public: client_pub,
            signature: verify_sig.to_bytes(),
        }
        .encode();
        self.transcript.update(&kex);

        let shared = self.ephemeral.diffie_hellman(&hello.ecdhe_public)?;
        let transcript_hash = self.transcript.clone().finalize();
        let keys = derive_keys(&shared, &self.random, &hello.random, transcript_hash);
        let mut channel = TlsChannel::new(keys.client.clone(), keys.server.clone());
        let finished = channel.seal(&finished_mac(&keys.master, "client", &keys.transcript_hash));

        self.state = ClientState::AwaitServerFinished {
            channel,
            master: keys.master,
            transcript_hash: keys.transcript_hash,
            server_cert: hello.certificate,
        };
        Ok(HandshakeStep {
            replies: vec![kex, finished],
            done: false,
        })
    }

    /// Consumes a completed handshake, yielding the channel and the
    /// validated server certificate.
    #[must_use]
    pub fn into_established(self) -> Option<(TlsChannel, Certificate)> {
        match self.state {
            ClientState::Done {
                channel,
                server_cert,
            } => Some((channel, server_cert)),
            _ => None,
        }
    }

    /// The client certificate this handshake authenticates with.
    #[must_use]
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }
}

// ---------------------------------------------------------------- server

enum ServerState {
    AwaitClientHello,
    AwaitClientKex {
        client_hello: ClientHello,
        server_random: [u8; 32],
    },
    AwaitClientFinished {
        channel: TlsChannel,
        master: [u8; 32],
        transcript_hash: [u8; 32],
        client_cert: Certificate,
    },
    Done {
        channel: TlsChannel,
        client_cert: Certificate,
    },
    Failed,
}

/// The server (trusted TLS interface) side of the handshake.
///
/// Runs *inside the enclave*; the untrusted host only shuttles the opaque
/// frames (§IV-B).
pub struct ServerHandshake {
    /// Shared with the enclave's installed certificate: every session
    /// handshake serves the same bytes, so no per-session deep copy.
    certificate: Arc<Certificate>,
    key: SecretKey,
    ca_key: PublicKey,
    now: u64,
    ephemeral: EphemeralKeyPair,
    transcript: Sha256,
    state: ServerState,
}

impl std::fmt::Debug for ServerHandshake {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ServerHandshake(..)")
    }
}

impl ServerHandshake {
    /// Creates the server side with its (CA-issued) certificate.
    #[must_use]
    pub fn new<R: SecureRandom>(
        certificate: Arc<Certificate>,
        key: SecretKey,
        ca_key: PublicKey,
        now: u64,
        rng: &mut R,
    ) -> ServerHandshake {
        ServerHandshake {
            certificate,
            key,
            ca_key,
            now,
            ephemeral: EphemeralKeyPair::generate(rng),
            transcript: Sha256::new(),
            state: ServerState::AwaitClientHello,
        }
    }

    /// Feeds one frame from the client.
    ///
    /// # Errors
    ///
    /// Any [`TlsError`] aborts the handshake permanently.
    pub fn process<R: SecureRandom>(
        &mut self,
        frame: &[u8],
        rng: &mut R,
    ) -> Result<HandshakeStep, TlsError> {
        let state = std::mem::replace(&mut self.state, ServerState::Failed);
        match state {
            ServerState::AwaitClientHello => self.on_client_hello(frame, rng),
            ServerState::AwaitClientKex {
                client_hello,
                server_random,
            } => self.on_client_kex(frame, client_hello, server_random),
            ServerState::AwaitClientFinished {
                mut channel,
                master,
                transcript_hash,
                client_cert,
            } => {
                let mac = channel.open(frame)?;
                let expected = finished_mac(&master, "client", &transcript_hash);
                if !seg_crypto::ct::ct_eq(&mac, &expected) {
                    return Err(TlsError::HandshakeFailed(
                        "client finished mac mismatch".to_string(),
                    ));
                }
                let reply = channel.seal(&finished_mac(&master, "server", &transcript_hash));
                self.state = ServerState::Done {
                    channel,
                    client_cert,
                };
                Ok(HandshakeStep {
                    replies: vec![reply],
                    done: true,
                })
            }
            ServerState::Done { .. } | ServerState::Failed => Err(TlsError::UnexpectedMessage),
        }
    }

    fn on_client_hello<R: SecureRandom>(
        &mut self,
        frame: &[u8],
        rng: &mut R,
    ) -> Result<HandshakeStep, TlsError> {
        let hello = ClientHello::decode(frame)?;
        // "the enclave ... validates the certificate using the CA's
        // public key" (§IV-A).
        hello
            .certificate
            .validate(&self.ca_key, self.now)
            .map_err(|e| TlsError::CertificateInvalid(e.to_string()))?;
        if hello.certificate.subject().user_id().is_none() {
            return Err(TlsError::CertificateInvalid(
                "peer presented a non-user certificate".to_string(),
            ));
        }
        self.transcript.update(frame);

        let server_random: [u8; 32] = rng.array();
        let signed = kex_signed_bytes(&hello.random, &server_random, self.ephemeral.public());
        // Encode M2 from borrowed parts: the certificate is the
        // `Arc`-shared installed one, serialized without cloning.
        let reply = ServerHello::encode_parts(
            &server_random,
            &self.certificate,
            self.ephemeral.public(),
            &self.key.sign(&signed).to_bytes(),
        );
        self.transcript.update(&reply);
        self.state = ServerState::AwaitClientKex {
            client_hello: hello,
            server_random,
        };
        Ok(HandshakeStep {
            replies: vec![reply],
            done: false,
        })
    }

    fn on_client_kex(
        &mut self,
        frame: &[u8],
        client_hello: ClientHello,
        server_random: [u8; 32],
    ) -> Result<HandshakeStep, TlsError> {
        let kex = ClientKex::decode(frame)?;
        // CertificateVerify: proof that the TLS client controls the
        // certified key.
        let signed = verify_signed_bytes(
            &client_hello.random,
            &server_random,
            &kex.ecdhe_public,
            self.ephemeral.public(),
        );
        client_hello
            .certificate
            .public_key()
            .verify(&signed, &Signature(kex.signature))
            .map_err(|_| {
                TlsError::HandshakeFailed("bad client certificate-verify signature".to_string())
            })?;
        self.transcript.update(frame);

        let shared = self.ephemeral.diffie_hellman(&kex.ecdhe_public)?;
        let transcript_hash = self.transcript.clone().finalize();
        let keys = derive_keys(
            &shared,
            &client_hello.random,
            &server_random,
            transcript_hash,
        );
        // Server sends with server keys, receives with client keys.
        let channel = TlsChannel::new(keys.server.clone(), keys.client.clone());
        self.state = ServerState::AwaitClientFinished {
            channel,
            master: keys.master,
            transcript_hash: keys.transcript_hash,
            client_cert: client_hello.certificate,
        };
        Ok(HandshakeStep::default())
    }

    /// Consumes a completed handshake, yielding the channel and the
    /// validated client certificate (whose identity information the
    /// request handler uses for authorization, §IV-B).
    #[must_use]
    pub fn into_established(self) -> Option<(TlsChannel, Certificate)> {
        match self.state {
            ServerState::Done {
                channel,
                client_cert,
            } => Some((channel, client_cert)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seg_crypto::rng::DeterministicRng;
    use seg_pki::CertificateAuthority;

    struct Setup {
        ca_key: PublicKey,
        client_cert: Certificate,
        client_key: SecretKey,
        server_cert: Certificate,
        server_key: SecretKey,
    }

    fn setup(seed: u64) -> Setup {
        let mut rng = DeterministicRng::seeded(seed);
        let ca = CertificateAuthority::new("ca", &mut rng);
        let (client_cert, client_key) = ca.issue_user(
            Identity::user("alice", "a@example.com", "Alice").unwrap(),
            0,
            1_000_000,
            &mut rng,
        );
        let server_key = SecretKey::generate(&mut rng);
        let csr = seg_pki::Csr::new(Identity::server("segshare"), &server_key);
        let server_cert = ca.issue_server_from_csr(&csr, 0, 1_000_000).unwrap();
        Setup {
            ca_key: ca.public_key(),
            client_cert,
            client_key,
            server_cert,
            server_key,
        }
    }

    /// Drives a full handshake in memory, returning both channels and the
    /// certificates each side saw.
    fn run_handshake(s: &Setup) -> (TlsChannel, TlsChannel, Certificate, Certificate) {
        let mut crng = DeterministicRng::seeded(100);
        let mut srng = DeterministicRng::seeded(200);
        let (mut client, m1) = ClientHandshake::start(
            s.client_cert.clone(),
            s.client_key.clone(),
            s.ca_key,
            500,
            &mut crng,
        );
        let mut server = ServerHandshake::new(
            Arc::new(s.server_cert.clone()),
            s.server_key.clone(),
            s.ca_key,
            500,
            &mut srng,
        );

        let step = server.process(&m1, &mut srng).unwrap();
        assert_eq!(step.replies.len(), 1);
        let m2 = &step.replies[0];

        let step = client.process(m2).unwrap();
        assert_eq!(step.replies.len(), 2);
        let (m3, f1) = (&step.replies[0], &step.replies[1]);

        let step = server.process(m3, &mut srng).unwrap();
        assert!(step.replies.is_empty() && !step.done);
        let step = server.process(f1, &mut srng).unwrap();
        assert!(step.done);
        let f2 = &step.replies[0];

        let step = client.process(f2).unwrap();
        assert!(step.done);

        let (c_chan, server_cert_seen) = client.into_established().unwrap();
        let (s_chan, client_cert_seen) = server.into_established().unwrap();
        (c_chan, s_chan, server_cert_seen, client_cert_seen)
    }

    #[test]
    fn full_handshake_and_data_flow() {
        let s = setup(1);
        let (mut c, mut srv, server_cert_seen, client_cert_seen) = run_handshake(&s);
        assert_eq!(server_cert_seen, s.server_cert);
        assert_eq!(client_cert_seen, s.client_cert);
        assert_eq!(
            client_cert_seen.subject().user_id().unwrap().as_str(),
            "alice"
        );
        // Application data both ways.
        let rec = c.seal(b"PUT /file");
        assert_eq!(srv.open(&rec).unwrap(), b"PUT /file");
        let rec = srv.seal(b"201 Created");
        assert_eq!(c.open(&rec).unwrap(), b"201 Created");
    }

    #[test]
    fn expired_client_cert_rejected() {
        let s = setup(2);
        let mut crng = DeterministicRng::seeded(100);
        let mut srng = DeterministicRng::seeded(200);
        let (_client, m1) = ClientHandshake::start(
            s.client_cert.clone(),
            s.client_key.clone(),
            s.ca_key,
            500,
            &mut crng,
        );
        // Server clock far in the future: client certificate expired.
        let mut server = ServerHandshake::new(
            Arc::new(s.server_cert.clone()),
            s.server_key.clone(),
            s.ca_key,
            2_000_000,
            &mut srng,
        );
        assert!(matches!(
            server.process(&m1, &mut srng),
            Err(TlsError::CertificateInvalid(_))
        ));
    }

    #[test]
    fn client_rejects_untrusted_server() {
        let s = setup(3);
        let mut rng = DeterministicRng::seeded(9);
        // A different CA signs the server's certificate.
        let rogue_ca = CertificateAuthority::new("rogue", &mut rng);
        let rogue_key = SecretKey::generate(&mut rng);
        let csr = seg_pki::Csr::new(Identity::server("fake"), &rogue_key);
        let rogue_cert = rogue_ca.issue_server_from_csr(&csr, 0, 1_000_000).unwrap();

        let mut crng = DeterministicRng::seeded(100);
        let mut srng = DeterministicRng::seeded(200);
        let (mut client, m1) = ClientHandshake::start(
            s.client_cert.clone(),
            s.client_key.clone(),
            s.ca_key,
            500,
            &mut crng,
        );
        let mut rogue_server = ServerHandshake::new(
            Arc::new(rogue_cert),
            rogue_key,
            rogue_ca.public_key(),
            500,
            &mut srng,
        );
        // The rogue server accepts the hello (it validates against its
        // own CA)...
        let step = rogue_server.process(&m1, &mut srng);
        // ...but whatever it replies, the honest client rejects it.
        if let Ok(step) = step {
            assert!(matches!(
                client.process(&step.replies[0]),
                Err(TlsError::CertificateInvalid(_))
            ));
        }
    }

    #[test]
    fn user_cert_cannot_impersonate_server() {
        let s = setup(4);
        let mut crng = DeterministicRng::seeded(100);
        let mut srng = DeterministicRng::seeded(200);
        let (mut client, m1) = ClientHandshake::start(
            s.client_cert.clone(),
            s.client_key.clone(),
            s.ca_key,
            500,
            &mut crng,
        );
        // An attacker with a *valid user* certificate tries to act as the
        // server.
        let mut mitm = ServerHandshake::new(
            Arc::new(s.client_cert.clone()),
            s.client_key.clone(),
            s.ca_key,
            500,
            &mut srng,
        );
        let step = mitm.process(&m1, &mut srng).unwrap();
        assert!(matches!(
            client.process(&step.replies[0]),
            Err(TlsError::CertificateInvalid(_))
        ));
    }

    #[test]
    fn tampered_handshake_frames_abort() {
        let s = setup(5);
        let mut crng = DeterministicRng::seeded(100);
        let mut srng = DeterministicRng::seeded(200);
        let (mut client, m1) = ClientHandshake::start(
            s.client_cert.clone(),
            s.client_key.clone(),
            s.ca_key,
            500,
            &mut crng,
        );
        let mut server = ServerHandshake::new(
            Arc::new(s.server_cert.clone()),
            s.server_key.clone(),
            s.ca_key,
            500,
            &mut srng,
        );
        let m2 = server.process(&m1, &mut srng).unwrap().replies.remove(0);
        // Tamper with the server's ephemeral key inside M2.
        let mut bad = m2.clone();
        let idx = bad.len() - 70; // inside ecdhe_public/signature region
        bad[idx] ^= 1;
        assert!(client.process(&bad).is_err());
        // The state machine is poisoned afterwards.
        assert!(client.process(&m2).is_err());
    }

    #[test]
    fn wrong_client_key_fails_certificate_verify() {
        let s = setup(6);
        let mut crng = DeterministicRng::seeded(100);
        let mut srng = DeterministicRng::seeded(200);
        // Client presents alice's certificate but signs with a different
        // key (stolen certificate without the private key).
        let mut wrong_rng = DeterministicRng::seeded(42);
        let wrong_key = SecretKey::generate(&mut wrong_rng);
        let (mut client, m1) =
            ClientHandshake::start(s.client_cert.clone(), wrong_key, s.ca_key, 500, &mut crng);
        let mut server = ServerHandshake::new(
            Arc::new(s.server_cert.clone()),
            s.server_key.clone(),
            s.ca_key,
            500,
            &mut srng,
        );
        let m2 = server.process(&m1, &mut srng).unwrap().replies.remove(0);
        let step = client.process(&m2).unwrap();
        assert!(matches!(
            server.process(&step.replies[0], &mut srng),
            Err(TlsError::HandshakeFailed(_))
        ));
    }
}
