//! Handshake message encodings.

use seg_fs::codec::{Decoder, Encoder};
use seg_pki::Certificate;

use crate::TlsError;

fn codec_err(e: seg_fs::FsError) -> TlsError {
    TlsError::Malformed(e.to_string())
}

/// M1: ClientHello — client random and client certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ClientHello {
    pub random: [u8; 32],
    pub certificate: Certificate,
}

impl ClientHello {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.tag(b"TLH1");
        e.raw(&self.random);
        e.bytes(&self.certificate.encode());
        e.finish()
    }

    pub fn decode(data: &[u8]) -> Result<ClientHello, TlsError> {
        let mut d = Decoder::new(data);
        d.tag(b"TLH1").map_err(codec_err)?;
        let random: [u8; 32] = d.raw(32).map_err(codec_err)?.try_into().expect("32 bytes");
        let cert_bytes = d.bytes().map_err(codec_err)?;
        d.finish().map_err(codec_err)?;
        let certificate = Certificate::decode(&cert_bytes)
            .map_err(|e| TlsError::Malformed(format!("client certificate: {e}")))?;
        Ok(ClientHello {
            random,
            certificate,
        })
    }
}

/// M2: ServerHello — server random, certificate, ephemeral ECDHE key,
/// and a signature binding them to the client random.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ServerHello {
    pub random: [u8; 32],
    pub certificate: Certificate,
    pub ecdhe_public: [u8; 32],
    pub signature: [u8; 64],
}

impl ServerHello {
    // The send path encodes from borrowed parts (`encode_parts`); the
    // owned form remains for codec roundtrip tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn encode(&self) -> Vec<u8> {
        Self::encode_parts(
            &self.random,
            &self.certificate,
            &self.ecdhe_public,
            &self.signature,
        )
    }

    /// Encodes M2 from borrowed parts, so the server can serialize its
    /// long-lived (`Arc`-shared) certificate without cloning it into a
    /// message struct first.
    pub fn encode_parts(
        random: &[u8; 32],
        certificate: &Certificate,
        ecdhe_public: &[u8; 32],
        signature: &[u8; 64],
    ) -> Vec<u8> {
        let mut e = Encoder::new();
        e.tag(b"TLH2");
        e.raw(random);
        e.bytes(&certificate.encode());
        e.raw(ecdhe_public);
        e.raw(signature);
        e.finish()
    }

    pub fn decode(data: &[u8]) -> Result<ServerHello, TlsError> {
        let mut d = Decoder::new(data);
        d.tag(b"TLH2").map_err(codec_err)?;
        let random: [u8; 32] = d.raw(32).map_err(codec_err)?.try_into().expect("32 bytes");
        let cert_bytes = d.bytes().map_err(codec_err)?;
        let ecdhe_public: [u8; 32] = d.raw(32).map_err(codec_err)?.try_into().expect("32 bytes");
        let signature: [u8; 64] = d.raw(64).map_err(codec_err)?.try_into().expect("64 bytes");
        d.finish().map_err(codec_err)?;
        let certificate = Certificate::decode(&cert_bytes)
            .map_err(|e| TlsError::Malformed(format!("server certificate: {e}")))?;
        Ok(ServerHello {
            random,
            certificate,
            ecdhe_public,
            signature,
        })
    }
}

/// M3: ClientKeyExchange — client ephemeral key plus CertificateVerify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ClientKex {
    pub ecdhe_public: [u8; 32],
    pub signature: [u8; 64],
}

impl ClientKex {
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.tag(b"TLH3");
        e.raw(&self.ecdhe_public);
        e.raw(&self.signature);
        e.finish()
    }

    pub fn decode(data: &[u8]) -> Result<ClientKex, TlsError> {
        let mut d = Decoder::new(data);
        d.tag(b"TLH3").map_err(codec_err)?;
        let ecdhe_public: [u8; 32] = d.raw(32).map_err(codec_err)?.try_into().expect("32 bytes");
        let signature: [u8; 64] = d.raw(64).map_err(codec_err)?.try_into().expect("64 bytes");
        d.finish().map_err(codec_err)?;
        Ok(ClientKex {
            ecdhe_public,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seg_crypto::rng::DeterministicRng;
    use seg_pki::{CertificateAuthority, Identity};

    fn cert() -> Certificate {
        let mut rng = DeterministicRng::seeded(5);
        let ca = CertificateAuthority::new("ca", &mut rng);
        ca.issue_user(
            Identity::user("u", "u@example.com", "U").unwrap(),
            0,
            100,
            &mut rng,
        )
        .0
    }

    #[test]
    fn hello_roundtrips() {
        let m = ClientHello {
            random: [9u8; 32],
            certificate: cert(),
        };
        assert_eq!(ClientHello::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn server_hello_roundtrips() {
        let m = ServerHello {
            random: [1u8; 32],
            certificate: cert(),
            ecdhe_public: [2u8; 32],
            signature: [3u8; 64],
        };
        assert_eq!(ServerHello::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn kex_roundtrips() {
        let m = ClientKex {
            ecdhe_public: [4u8; 32],
            signature: [5u8; 64],
        };
        assert_eq!(ClientKex::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn truncated_messages_rejected() {
        let m = ClientHello {
            random: [9u8; 32],
            certificate: cert(),
        }
        .encode();
        for cut in [0, 1, 4, 20, m.len() - 1] {
            assert!(ClientHello::decode(&m[..cut]).is_err(), "cut {cut}");
        }
    }
}
