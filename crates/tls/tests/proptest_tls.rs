//! Property-based tests for the secure channel: handshakes under
//! arbitrary seeds, record-layer integrity under arbitrary payloads and
//! tampering.

use proptest::prelude::*;
use seg_crypto::ed25519::SecretKey;
use seg_crypto::rng::DeterministicRng;
use seg_pki::{Certificate, CertificateAuthority, Csr, Identity};
use seg_tls::{ClientHandshake, ServerHandshake, TlsChannel};

struct Rig {
    ca_key: seg_crypto::ed25519::PublicKey,
    client_cert: Certificate,
    client_key: SecretKey,
    server_cert: Certificate,
    server_key: SecretKey,
}

fn rig(seed: u64) -> Rig {
    let mut rng = DeterministicRng::seeded(seed);
    let ca = CertificateAuthority::new("ca", &mut rng);
    let (client_cert, client_key) = ca.issue_user(
        Identity::user("alice", "a@x", "Alice").expect("valid"),
        0,
        1000,
        &mut rng,
    );
    let server_key = SecretKey::generate(&mut rng);
    let csr = Csr::new(Identity::server("s"), &server_key);
    let server_cert = ca.issue_server_from_csr(&csr, 0, 1000).expect("issue");
    Rig {
        ca_key: ca.public_key(),
        client_cert,
        client_key,
        server_cert,
        server_key,
    }
}

fn handshake(r: &Rig, seed: u64) -> (TlsChannel, TlsChannel) {
    let mut crng = DeterministicRng::seeded(seed ^ 0xAAAA);
    let mut srng = DeterministicRng::seeded(seed ^ 0x5555);
    let (mut client, m1) = ClientHandshake::start(
        r.client_cert.clone(),
        r.client_key.clone(),
        r.ca_key,
        500,
        &mut crng,
    );
    let mut server = ServerHandshake::new(
        std::sync::Arc::new(r.server_cert.clone()),
        r.server_key.clone(),
        r.ca_key,
        500,
        &mut srng,
    );
    let m2 = server
        .process(&m1, &mut srng)
        .expect("hello")
        .replies
        .remove(0);
    let step = client.process(&m2).expect("kex");
    let mut frames = step.replies.into_iter();
    let m3 = frames.next().expect("m3");
    let f1 = frames.next().expect("f1");
    server.process(&m3, &mut srng).expect("kex");
    let f2 = server
        .process(&f1, &mut srng)
        .expect("finished")
        .replies
        .remove(0);
    client.process(&f2).expect("finished");
    let (c, _) = client.into_established().expect("established");
    let (s, _) = server.into_established().expect("established");
    (c, s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn handshake_succeeds_for_any_seed(seed in any::<u64>()) {
        let r = rig(seed);
        let (mut c, mut s) = handshake(&r, seed);
        let rec = c.seal(b"probe");
        prop_assert_eq!(s.open(&rec).expect("open"), b"probe");
    }

    #[test]
    fn records_roundtrip_any_payload(
        seed in any::<u64>(),
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..4096), 1..8),
    ) {
        let r = rig(seed);
        let (mut c, mut s) = handshake(&r, seed);
        for p in &payloads {
            let rec = c.seal(p);
            prop_assert_eq!(&s.open(&rec).expect("open"), p);
            let reply = s.seal(p);
            prop_assert_eq!(&c.open(&reply).expect("open"), p);
        }
    }

    #[test]
    fn tampered_records_always_rejected(
        seed in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        flip_at in any::<u32>(),
        bit in 0u8..8,
    ) {
        let r = rig(seed);
        let (mut c, mut s) = handshake(&r, seed);
        let mut rec = c.seal(&payload);
        let idx = (flip_at as usize) % rec.len();
        rec[idx] ^= 1 << bit;
        prop_assert!(s.open(&rec).is_err());
    }

    #[test]
    fn tampered_handshake_frames_never_complete(
        seed in any::<u64>(),
        flip_at in any::<u32>(),
        which in 0u8..2,
    ) {
        let r = rig(seed);
        let mut crng = DeterministicRng::seeded(seed ^ 1);
        let mut srng = DeterministicRng::seeded(seed ^ 2);
        let (mut client, m1) = ClientHandshake::start(
            r.client_cert.clone(),
            r.client_key.clone(),
            r.ca_key,
            500,
            &mut crng,
        );
        let mut server = ServerHandshake::new(
            std::sync::Arc::new(r.server_cert.clone()),
            r.server_key.clone(),
            r.ca_key,
            500,
            &mut srng,
        );
        if which == 0 {
            // Tamper with M1 (client hello). Flips inside the client
            // certificate are rejected immediately; flips in the random
            // are nonce changes a server cannot detect yet — but then the
            // client's certificate-verify signature (which binds the
            // random the *client* sent) fails at M3, or the finished MACs
            // diverge. Either way the handshake must never complete.
            let mut bad = m1.clone();
            let idx = (flip_at as usize) % bad.len();
            bad[idx] ^= 1;
            let outcome = (|| -> Result<(), seg_tls::TlsError> {
                let step = server.process(&bad, &mut srng)?;
                let m2 = step
                    .replies
                    .first()
                    .ok_or(seg_tls::TlsError::UnexpectedMessage)?;
                let step = client.process(m2)?;
                let mut done = false;
                for frame in &step.replies {
                    done |= server.process(frame, &mut srng)?.done;
                }
                if done {
                    Ok(())
                } else {
                    Err(seg_tls::TlsError::UnexpectedMessage)
                }
            })();
            prop_assert!(
                outcome.is_err(),
                "handshake completed despite a tampered ClientHello"
            );
        } else {
            // Tamper with M2 (server hello).
            let mut m2 = server.process(&m1, &mut srng).expect("hello").replies.remove(0);
            let idx = (flip_at as usize) % m2.len();
            m2[idx] ^= 1;
            prop_assert!(client.process(&m2).is_err());
        }
    }
}
