//! Property-based tests over the cryptographic substrate.

use proptest::prelude::*;
use seg_crypto::ct::ct_eq;
use seg_crypto::curve25519::{EdwardsPoint, Scalar};
use seg_crypto::ed25519::SecretKey;
use seg_crypto::gcm::Gcm;
use seg_crypto::hkdf;
use seg_crypto::hmac::Hmac;
use seg_crypto::mset::{MsetHash, MsetKey};
use seg_crypto::pae::{pae_dec, pae_enc, PaeKey, PAE_OVERHEAD};
use seg_crypto::rng::DeterministicRng;
use seg_crypto::sha256::Sha256;
use seg_crypto::sha512::Sha512;
use seg_crypto::x25519;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha512_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = Sha512::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha512::digest(&data));
    }

    #[test]
    fn hmac_key_and_data_sensitivity(
        key in proptest::collection::vec(any::<u8>(), 1..128),
        data in proptest::collection::vec(any::<u8>(), 0..256),
        flip in any::<u8>(),
    ) {
        let tag = Hmac::<Sha256>::mac(&key, &data);
        prop_assert!(Hmac::<Sha256>::verify(&key, &data, &tag));
        // Flipping any key bit changes the tag.
        let mut key2 = key.clone();
        let idx = (flip as usize) % key2.len();
        key2[idx] ^= 1;
        prop_assert_ne!(Hmac::<Sha256>::mac(&key2, &data), tag);
    }

    #[test]
    fn hkdf_output_prefix_consistency(
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        info in proptest::collection::vec(any::<u8>(), 0..32),
        len_a in 1usize..200,
        len_b in 1usize..200,
    ) {
        let (short, long) = if len_a < len_b { (len_a, len_b) } else { (len_b, len_a) };
        let okm_long = hkdf::hkdf::<Sha256>(b"salt", &ikm, &info, long);
        let okm_short = hkdf::hkdf::<Sha256>(b"salt", &ikm, &info, short);
        prop_assert_eq!(&okm_long[..short], &okm_short[..]);
    }

    #[test]
    fn gcm_roundtrip(
        key in proptest::array::uniform16(any::<u8>()),
        iv in proptest::array::uniform12(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let gcm = Gcm::new(&key).expect("valid key");
        let sealed = gcm.seal(&iv, &aad, &pt);
        prop_assert_eq!(gcm.open(&iv, &aad, &sealed).expect("authentic"), pt);
    }

    #[test]
    fn gcm_detects_any_single_bit_flip(
        key in proptest::array::uniform16(any::<u8>()),
        pt in proptest::collection::vec(any::<u8>(), 1..128),
        byte_idx in any::<u16>(),
        bit in 0u8..8,
    ) {
        let gcm = Gcm::new(&key).expect("valid key");
        let iv = [1u8; 12];
        let mut sealed = gcm.seal(&iv, b"", &pt);
        let idx = (byte_idx as usize) % sealed.len();
        sealed[idx] ^= 1 << bit;
        prop_assert!(gcm.open(&iv, b"", &sealed).is_err());
    }

    #[test]
    fn pae_roundtrip_and_overhead(
        key in proptest::array::uniform16(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        pt in proptest::collection::vec(any::<u8>(), 0..512),
        seed in any::<u64>(),
    ) {
        let key = PaeKey::from_bytes(&key);
        let mut rng = DeterministicRng::seeded(seed);
        let c = pae_enc(&key, &pt, &aad, &mut rng);
        prop_assert_eq!(c.len(), pt.len() + PAE_OVERHEAD);
        prop_assert_eq!(pae_dec(&key, &c, &aad).expect("authentic"), pt);
    }

    #[test]
    fn mset_hash_is_order_independent(
        elements in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..12),
        seed in any::<u64>(),
    ) {
        let key = MsetKey::from_bytes([3u8; 32]);
        let mut forward = MsetHash::empty();
        for e in &elements {
            forward.add(&key, e);
        }
        // Shuffle deterministically by sorting with a keyed comparator.
        let mut shuffled = elements.clone();
        shuffled.sort_by_key(|e| seg_crypto::hmac::hmac_sha256(&seed.to_le_bytes(), e));
        let mut reordered = MsetHash::empty();
        for e in &shuffled {
            reordered.add(&key, e);
        }
        prop_assert_eq!(forward, reordered);
        prop_assert_eq!(forward.count(), elements.len() as u64);
        let _ = seed;
    }

    #[test]
    fn mset_incremental_update_equals_rebuild(
        base in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 1..8),
        replacement in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let key = MsetKey::from_bytes([4u8; 32]);
        let mut incremental = MsetHash::empty();
        for e in &base {
            incremental.add(&key, e);
        }
        incremental.replace(&key, &base[0], &replacement);

        let mut rebuilt = MsetHash::empty();
        rebuilt.add(&key, &replacement);
        for e in &base[1..] {
            rebuilt.add(&key, e);
        }
        prop_assert_eq!(incremental, rebuilt);
    }

    #[test]
    fn ed25519_sign_verify(seed in proptest::array::uniform32(any::<u8>()), msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        let sk = SecretKey::from_seed(&seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.public_key().verify(&msg, &sig).is_ok());
    }

    #[test]
    fn ed25519_rejects_cross_messages(
        seed in proptest::array::uniform32(any::<u8>()),
        msg1 in proptest::collection::vec(any::<u8>(), 0..64),
        msg2 in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assume!(msg1 != msg2);
        let sk = SecretKey::from_seed(&seed);
        let sig = sk.sign(&msg1);
        prop_assert!(sk.public_key().verify(&msg2, &sig).is_err());
    }

    #[test]
    fn x25519_dh_agreement(seed in any::<u64>()) {
        let mut rng = DeterministicRng::seeded(seed);
        let a = x25519::EphemeralKeyPair::generate(&mut rng);
        let b = x25519::EphemeralKeyPair::generate(&mut rng);
        prop_assert_eq!(
            a.diffie_hellman(b.public()).expect("strong"),
            b.diffie_hellman(a.public()).expect("strong")
        );
    }

    #[test]
    fn scalar_point_homomorphism(a in any::<u64>(), b in any::<u64>()) {
        // (a + b) * B == a*B + b*B
        let sa = Scalar::from_u64(a);
        let sb = Scalar::from_u64(b);
        let lhs = EdwardsPoint::mul_base(&sa.add(&sb));
        let rhs = EdwardsPoint::mul_base(&sa).add(&EdwardsPoint::mul_base(&sb));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn ct_eq_matches_plain_equality(a in proptest::collection::vec(any::<u8>(), 0..64), b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct_eq(&a, &b), a == b);
    }
}
