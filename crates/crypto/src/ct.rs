//! Constant-time comparison helpers.
//!
//! Authentication-tag and MAC comparisons must not leak the position of the
//! first mismatching byte; these helpers accumulate differences without
//! early exit.

/// Compares two byte slices in constant time (with respect to content).
///
/// Returns `true` iff the slices have equal length and equal content. The
/// comparison time depends only on the lengths, never on where the first
/// difference occurs.
///
/// # Examples
///
/// ```
/// use seg_crypto::ct::ct_eq;
/// assert!(ct_eq(b"tag", b"tag"));
/// assert!(!ct_eq(b"tag", b"tab"));
/// assert!(!ct_eq(b"tag", b"tag-longer"));
/// ```
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Conditionally selects `b` (if `choice` is 1) or `a` (if `choice` is 0)
/// per element without branching.
///
/// # Panics
///
/// Panics if the slices have different lengths or `choice` is not 0 or 1.
pub fn ct_select(choice: u8, a: &[u8], b: &[u8], out: &mut [u8]) {
    assert!(choice <= 1, "choice must be a bit");
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    let mask = 0u8.wrapping_sub(choice);
    for ((o, x), y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = x ^ (mask & (x ^ y));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"a", b"a"));
        assert!(!ct_eq(b"a", b"b"));
        assert!(!ct_eq(b"", b"a"));
        assert!(!ct_eq(b"aa", b"a"));
    }

    #[test]
    fn eq_differs_in_each_position() {
        let base = [0u8; 16];
        for i in 0..16 {
            let mut other = base;
            other[i] = 1;
            assert!(!ct_eq(&base, &other), "difference at byte {i} not detected");
        }
    }

    #[test]
    fn select_picks_correct_operand() {
        let a = [1u8, 2, 3];
        let b = [9u8, 8, 7];
        let mut out = [0u8; 3];
        ct_select(0, &a, &b, &mut out);
        assert_eq!(out, a);
        ct_select(1, &a, &b, &mut out);
        assert_eq!(out, b);
    }

    #[test]
    #[should_panic(expected = "choice must be a bit")]
    fn select_rejects_non_bit_choice() {
        let mut out = [0u8; 1];
        ct_select(2, &[0], &[1], &mut out);
    }
}
