//! Randomness plumbing.
//!
//! All key and IV generation in the workspace goes through the
//! [`SecureRandom`] trait so tests and benchmarks can substitute a
//! deterministic generator while production paths use the OS-seeded one.

use rand::{Rng, SeedableRng};

/// A source of cryptographically strong random bytes.
pub trait SecureRandom {
    /// Fills `out` with random bytes.
    fn fill(&mut self, out: &mut [u8]);

    /// Returns a random array.
    fn array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.fill(&mut out);
        out
    }
}

/// OS-seeded randomness (thread-local CSPRNG).
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemRng;

impl SystemRng {
    /// Creates a handle to the thread-local CSPRNG.
    #[must_use]
    pub fn new() -> Self {
        SystemRng
    }
}

impl SecureRandom for SystemRng {
    fn fill(&mut self, out: &mut [u8]) {
        rand::rng().fill_bytes(out);
    }
}

/// Deterministic randomness for tests and reproducible benchmarks.
///
/// Never use this for real keys: the entire stream is determined by a
/// 64-bit seed.
#[derive(Debug)]
pub struct DeterministicRng(rand::rngs::StdRng);

impl DeterministicRng {
    /// Creates a generator whose output is fully determined by `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        DeterministicRng(rand::rngs::StdRng::seed_from_u64(seed))
    }
}

impl SecureRandom for DeterministicRng {
    fn fill(&mut self, out: &mut [u8]) {
        self.0.fill_bytes(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = DeterministicRng::seeded(7);
        let mut b = DeterministicRng::seeded(7);
        assert_eq!(a.array::<32>(), b.array::<32>());
        let mut c = DeterministicRng::seeded(8);
        assert_ne!(a.array::<32>(), c.array::<32>());
    }

    #[test]
    fn system_rng_is_not_constant() {
        let mut rng = SystemRng::new();
        let a = rng.array::<32>();
        let b = rng.array::<32>();
        assert_ne!(a, b, "two 256-bit draws collided; rng is broken");
    }
}
