//! Derivation of the SHA-2 round constants and initial hash values.
//!
//! FIPS 180-4 defines the constants as the leading fractional bits of the
//! square/cube roots of the first primes. Rather than transcribing 144
//! magic numbers (an easy place to introduce a silent bug), we derive them
//! with exact integer arithmetic and pin the result with known-answer tests
//! in [`crate::sha256`] / [`crate::sha512`].

/// Returns the first `n` prime numbers.
pub(crate) fn first_primes(n: usize) -> Vec<u64> {
    let mut primes = Vec::with_capacity(n);
    let mut candidate = 2u64;
    while primes.len() < n {
        if primes.iter().all(|p| !candidate.is_multiple_of(*p)) {
            primes.push(candidate);
        }
        candidate += 1;
    }
    primes
}

/// A minimal unsigned 256-bit integer, just enough for exact root extraction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct U256 {
    hi: u128,
    lo: u128,
}

impl U256 {
    pub(crate) const fn new(hi: u128, lo: u128) -> Self {
        U256 { hi, lo }
    }
}

/// Full 256-bit product of two 128-bit integers.
fn mul_wide(a: u128, b: u128) -> U256 {
    const MASK: u128 = (1u128 << 64) - 1;
    let (a0, a1) = (a & MASK, a >> 64);
    let (b0, b1) = (b & MASK, b >> 64);
    let p00 = a0 * b0;
    let p01 = a0 * b1;
    let p10 = a1 * b0;
    let p11 = a1 * b1;
    let (mid, mid_carry) = p01.overflowing_add(p10);
    let (lo, lo_carry) = p00.overflowing_add(mid << 64);
    let hi = p11 + (mid >> 64) + ((mid_carry as u128) << 64) + lo_carry as u128;
    U256 { hi, lo }
}

/// `x * x` as a 256-bit value (`x` unrestricted).
fn square(x: u128) -> U256 {
    mul_wide(x, x)
}

/// `x^3` as a 256-bit value. Requires `x < 2^85` so the result fits.
fn cube(x: u128) -> U256 {
    debug_assert!(x < 1u128 << 85);
    let x2 = mul_wide(x, x);
    let lo_part = mul_wide(x2.lo, x);
    // x2.hi * x fits in u128: x2.hi < 2^(170-128) = 2^42, x < 2^85.
    let hi_part = x2.hi * x;
    U256 {
        hi: lo_part.hi + hi_part,
        lo: lo_part.lo,
    }
}

/// Largest `x` with `x^2 <= target`.
fn isqrt_u256(target: U256) -> u128 {
    let mut lo = 0u128;
    let mut hi = 1u128 << 85;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if square(mid) <= target {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Largest `x` with `x^3 <= target`.
fn icbrt_u256(target: U256) -> u128 {
    let mut lo = 0u128;
    let mut hi = 1u128 << 85;
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if cube(mid) <= target {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// First 32 fractional bits of `sqrt(p)`.
pub(crate) fn sqrt_frac32(p: u64) -> u32 {
    // sqrt(p) * 2^32 = sqrt(p * 2^64)
    (isqrt_u256(U256::new(0, (p as u128) << 64)) & 0xffff_ffff) as u32
}

/// First 32 fractional bits of `cbrt(p)`.
pub(crate) fn cbrt_frac32(p: u64) -> u32 {
    // cbrt(p) * 2^32 = cbrt(p * 2^96)
    (icbrt_u256(U256::new(0, (p as u128) << 96)) & 0xffff_ffff) as u32
}

/// First 64 fractional bits of `sqrt(p)`.
pub(crate) fn sqrt_frac64(p: u64) -> u64 {
    // sqrt(p) * 2^64 = sqrt(p * 2^128)
    (isqrt_u256(U256::new(p as u128, 0)) & 0xffff_ffff_ffff_ffff) as u64
}

/// First 64 fractional bits of `cbrt(p)`.
pub(crate) fn cbrt_frac64(p: u64) -> u64 {
    // cbrt(p) * 2^64 = cbrt(p * 2^192); p * 2^192 has hi limb p << 64.
    (icbrt_u256(U256::new((p as u128) << 64, 0)) & 0xffff_ffff_ffff_ffff) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primes_are_correct() {
        assert_eq!(first_primes(10), vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        let p80 = first_primes(80);
        assert_eq!(p80.len(), 80);
        assert_eq!(p80[63], 311);
        assert_eq!(p80[79], 409);
    }

    #[test]
    fn known_sha256_leading_constants() {
        // Widely known values: h0 = frac(sqrt(2)), k0 = frac(cbrt(2)).
        assert_eq!(sqrt_frac32(2), 0x6a09_e667);
        assert_eq!(sqrt_frac32(3), 0xbb67_ae85);
        assert_eq!(cbrt_frac32(2), 0x428a_2f98);
    }

    #[test]
    fn known_sha512_leading_constants() {
        assert_eq!(sqrt_frac64(2), 0x6a09_e667_f3bc_c908);
        assert_eq!(cbrt_frac64(2), 0x428a_2f98_d728_ae22);
    }

    #[test]
    fn mul_wide_matches_native_for_small_inputs() {
        let cases = [
            (0u128, 0u128),
            (1, u64::MAX as u128),
            (u64::MAX as u128, u64::MAX as u128),
            (12345678901234567890, 9876543210987654321),
        ];
        for (a, b) in cases {
            let got = mul_wide(a, b);
            let expect = a.checked_mul(b).expect("fits in u128");
            assert_eq!(got, U256::new(0, expect));
        }
    }

    #[test]
    fn mul_wide_high_part() {
        // (2^127) * 2 = 2^128 -> hi = 1, lo = 0.
        assert_eq!(mul_wide(1u128 << 127, 2), U256::new(1, 0));
    }

    #[test]
    fn roots_are_exact_floors() {
        for p in first_primes(20) {
            let s = isqrt_u256(U256::new(0, (p as u128) << 64));
            assert!(square(s) <= U256::new(0, (p as u128) << 64));
            assert!(square(s + 1) > U256::new(0, (p as u128) << 64));
            let c = icbrt_u256(U256::new(0, (p as u128) << 96));
            assert!(cube(c) <= U256::new(0, (p as u128) << 96));
            assert!(cube(c + 1) > U256::new(0, (p as u128) << 96));
        }
    }
}
