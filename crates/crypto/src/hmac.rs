//! HMAC (FIPS 198-1 / RFC 2104), generic over the crate's hash functions.
//!
//! SeGShare uses HMAC-SHA-256 keyed with the root key `SK_r` for two
//! purposes: deduplication names (§V-A) and pseudorandom storage paths when
//! hiding the directory structure (§V-C). The TLS substrate uses it inside
//! HKDF.

use crate::digest::Digest;

/// Streaming HMAC state over digest `D`.
///
/// # Examples
///
/// ```
/// use seg_crypto::hmac::Hmac;
/// use seg_crypto::sha256::Sha256;
///
/// let tag = Hmac::<Sha256>::mac(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
#[derive(Clone, Debug)]
pub struct Hmac<D: Digest> {
    inner: D,
    outer: D,
}

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC state keyed with `key` (any length).
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = vec![0u8; D::BLOCK_LEN];
        if key.len() > D::BLOCK_LEN {
            let mut d = D::new();
            d.update(key);
            let hashed = d.finalize_vec();
            block_key[..hashed.len()].copy_from_slice(&hashed);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut inner = D::new();
        let ipad: Vec<u8> = block_key.iter().map(|b| b ^ 0x36).collect();
        inner.update(&ipad);

        let mut outer = D::new();
        let opad: Vec<u8> = block_key.iter().map(|b| b ^ 0x5c).collect();
        outer.update(&opad);

        Hmac { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes and returns the MAC.
    #[must_use]
    pub fn finalize(mut self) -> Vec<u8> {
        let inner_digest = self.inner.finalize_vec();
        self.outer.update(&inner_digest);
        self.outer.finalize_vec()
    }

    /// One-shot convenience.
    #[must_use]
    pub fn mac(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut h = Hmac::<D>::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies `tag` against the MAC of `data` in constant time.
    #[must_use]
    pub fn verify(key: &[u8], data: &[u8], tag: &[u8]) -> bool {
        crate::ct::ct_eq(&Hmac::<D>::mac(key, data), tag)
    }
}

/// One-shot HMAC-SHA-256 returning a fixed-size array, the common case in
/// SeGShare (dedup names, hidden paths).
#[must_use]
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    let v = Hmac::<crate::sha256::Sha256>::mac(key, data);
    let mut out = [0u8; 32];
    out.copy_from_slice(&v);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Sha256;
    use crate::sha512::Sha512;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1_sha256() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case1_sha512() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex(&Hmac::<Sha512>::mac(&key, data)),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
                .replace(char::is_whitespace, "")
        );
    }

    // RFC 4231 test case 2: key "Jefe", data "what do ya want for nothing?".
    #[test]
    fn rfc4231_case2_sha256() {
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(
                b"Jefe",
                b"what do ya want for nothing?"
            )),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
    #[test]
    fn rfc4231_case3_sha256() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key_sha256() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex(&Hmac::<Sha256>::mac(&key, &data[..])),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let key = b"a moderately long key for streaming";
        let data: Vec<u8> = (0..500u32).map(|i| (i * 7 % 256) as u8).collect();
        let one_shot = Hmac::<Sha256>::mac(key, &data);
        let mut h = Hmac::<Sha256>::new(key);
        for chunk in data.chunks(11) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), one_shot);
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = Hmac::<Sha256>::mac(b"k", b"m");
        assert!(Hmac::<Sha256>::verify(b"k", b"m", &tag));
        assert!(!Hmac::<Sha256>::verify(b"k", b"m2", &tag));
        assert!(!Hmac::<Sha256>::verify(b"k2", b"m", &tag));
        let mut bad = tag.clone();
        bad[0] ^= 1;
        assert!(!Hmac::<Sha256>::verify(b"k", b"m", &bad));
        assert!(!Hmac::<Sha256>::verify(b"k", b"m", &tag[..31]));
    }

    #[test]
    fn distinct_keys_give_distinct_tags() {
        let t1 = hmac_sha256(b"key1", b"data");
        let t2 = hmac_sha256(b"key2", b"data");
        assert_ne!(t1, t2);
    }
}
