//! X25519 Diffie-Hellman (RFC 7748), the key agreement of the TLS
//! substrate's ECDHE handshake.

use crate::curve25519::FieldElement;
use crate::rng::SecureRandom;
use crate::CryptoError;

/// Length of public keys, secret keys, and shared secrets.
pub const KEY_LEN: usize = 32;

/// The Montgomery curve constant (A − 2)/4 = 121665.
fn a24() -> FieldElement {
    FieldElement::from_u64(121_665)
}

/// Clamps a 32-byte scalar per RFC 7748.
#[must_use]
pub fn clamp(mut k: [u8; KEY_LEN]) -> [u8; KEY_LEN] {
    k[0] &= 0xf8;
    k[31] &= 0x7f;
    k[31] |= 0x40;
    k
}

/// The Montgomery ladder: `scalar * u`, both as 32-byte strings.
///
/// `scalar` is clamped internally per RFC 7748.
#[must_use]
pub fn scalar_mult(scalar: &[u8; KEY_LEN], u: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let k = clamp(*scalar);
    let x1 = FieldElement::from_bytes(u);
    let mut x2 = FieldElement::ONE;
    let mut z2 = FieldElement::ZERO;
    let mut x3 = x1;
    let mut z3 = FieldElement::ONE;
    let mut swap = 0u8;

    for t in (0..255).rev() {
        let k_t = (k[t / 8] >> (t % 8)) & 1;
        swap ^= k_t;
        if swap == 1 {
            std::mem::swap(&mut x2, &mut x3);
            std::mem::swap(&mut z2, &mut z3);
        }
        swap = k_t;

        let a = x2.add(&z2);
        let aa = a.square();
        let b = x2.sub(&z2);
        let bb = b.square();
        let e = aa.sub(&bb);
        let c = x3.add(&z3);
        let d = x3.sub(&z3);
        let da = d.mul(&a);
        let cb = c.mul(&b);
        x3 = da.add(&cb).square();
        z3 = x1.mul(&da.sub(&cb).square());
        x2 = aa.mul(&bb);
        z2 = e.mul(&aa.add(&a24().mul(&e)));
    }
    if swap == 1 {
        std::mem::swap(&mut x2, &mut x3);
        std::mem::swap(&mut z2, &mut z3);
    }
    x2.mul(&z2.invert()).to_bytes()
}

/// `scalar * 9` — the public key for a secret scalar.
#[must_use]
pub fn base_mult(scalar: &[u8; KEY_LEN]) -> [u8; KEY_LEN] {
    let mut base = [0u8; KEY_LEN];
    base[0] = 9;
    scalar_mult(scalar, &base)
}

/// An ephemeral X25519 key pair.
#[derive(Clone)]
pub struct EphemeralKeyPair {
    secret: [u8; KEY_LEN],
    public: [u8; KEY_LEN],
}

impl std::fmt::Debug for EphemeralKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EphemeralKeyPair(public: {:02x}{:02x}..)",
            self.public[0], self.public[1]
        )
    }
}

impl EphemeralKeyPair {
    /// Generates a fresh key pair.
    #[must_use]
    pub fn generate<R: SecureRandom>(rng: &mut R) -> EphemeralKeyPair {
        let secret = clamp(rng.array::<KEY_LEN>());
        let public = base_mult(&secret);
        EphemeralKeyPair { secret, public }
    }

    /// The public half.
    #[must_use]
    pub fn public(&self) -> &[u8; KEY_LEN] {
        &self.public
    }

    /// Computes the shared secret with a peer's public key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::WeakSharedSecret`] if the result is all
    /// zeros (the peer sent a low-order point), per RFC 7748 §6.1.
    pub fn diffie_hellman(
        &self,
        peer_public: &[u8; KEY_LEN],
    ) -> Result<[u8; KEY_LEN], CryptoError> {
        let shared = scalar_mult(&self.secret, peer_public);
        if shared == [0u8; KEY_LEN] {
            return Err(CryptoError::WeakSharedSecret);
        }
        Ok(shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex");
        }
        out
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 7748 §5.2 test vector 1.
    #[test]
    fn rfc7748_vector1() {
        let scalar = unhex32("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
        let u = unhex32("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
        assert_eq!(
            hex(&scalar_mult(&scalar, &u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552"
        );
    }

    // RFC 7748 §5.2 iterated test, 1 iteration.
    #[test]
    fn rfc7748_iterated_once() {
        let mut k = [0u8; 32];
        k[0] = 9;
        let u = k;
        let out = scalar_mult(&k, &u);
        assert_eq!(
            hex(&out),
            "422c8e7a6227d7bca1350b3e2bb7279f7897b87bb6854b783c60e80311ae3079"
        );
    }

    #[test]
    fn diffie_hellman_agrees() {
        let mut rng = DeterministicRng::seeded(31);
        for _ in 0..5 {
            let alice = EphemeralKeyPair::generate(&mut rng);
            let bob = EphemeralKeyPair::generate(&mut rng);
            let s1 = alice.diffie_hellman(bob.public()).expect("strong secret");
            let s2 = bob.diffie_hellman(alice.public()).expect("strong secret");
            assert_eq!(s1, s2);
            assert_ne!(s1, [0u8; 32]);
        }
    }

    #[test]
    fn different_peers_different_secrets() {
        let mut rng = DeterministicRng::seeded(32);
        let alice = EphemeralKeyPair::generate(&mut rng);
        let bob = EphemeralKeyPair::generate(&mut rng);
        let carol = EphemeralKeyPair::generate(&mut rng);
        let s_ab = alice.diffie_hellman(bob.public()).expect("strong secret");
        let s_ac = alice.diffie_hellman(carol.public()).expect("strong secret");
        assert_ne!(s_ab, s_ac);
    }

    #[test]
    fn low_order_point_rejected() {
        let mut rng = DeterministicRng::seeded(33);
        let alice = EphemeralKeyPair::generate(&mut rng);
        // u = 0 is a low-order point; the ladder maps it to 0.
        assert_eq!(
            alice.diffie_hellman(&[0u8; 32]).unwrap_err(),
            CryptoError::WeakSharedSecret
        );
    }

    #[test]
    fn clamping_is_idempotent_and_effective() {
        let k = [0xffu8; 32];
        let c = clamp(k);
        assert_eq!(c[0] & 0x07, 0);
        assert_eq!(c[31] & 0x80, 0);
        assert_eq!(c[31] & 0x40, 0x40);
        assert_eq!(clamp(c), c);
    }
}
