//! SHA-256 (FIPS 180-4).
//!
//! SeGShare uses SHA-256 everywhere a collision-resistant hash is needed:
//! enclave measurements, Merkle-tree leaves, deduplication HMAC names, and
//! the TLS transcript hash.

use std::sync::OnceLock;

use crate::digest::Digest;
use crate::sha2gen;

/// Digest length in bytes.
pub const DIGEST_LEN: usize = 32;
/// Internal block length in bytes.
pub const BLOCK_LEN: usize = 64;

fn round_constants() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = sha2gen::first_primes(64);
        let mut k = [0u32; 64];
        for (slot, p) in k.iter_mut().zip(primes) {
            *slot = sha2gen::cbrt_frac32(p);
        }
        k
    })
}

fn initial_state() -> [u32; 8] {
    static H: OnceLock<[u32; 8]> = OnceLock::new();
    *H.get_or_init(|| {
        let primes = sha2gen::first_primes(8);
        let mut h = [0u32; 8];
        for (slot, p) in h.iter_mut().zip(primes) {
            *slot = sha2gen::sqrt_frac32(p);
        }
        h
    })
}

/// Streaming SHA-256 state.
///
/// # Examples
///
/// ```
/// use seg_crypto::sha256::Sha256;
/// use seg_crypto::digest::Digest;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     hex(&h.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    total_len: u64,
}

impl Sha256 {
    /// Creates a fresh hash state.
    #[must_use]
    pub fn new() -> Self {
        Sha256 {
            state: initial_state(),
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes hashing and returns the 32-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update_padding(&[0x80]);
        while self.buffered != 56 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience.
    #[must_use]
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// `update` that does not count towards the message length (for padding).
    fn update_padding(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffered] = byte;
            self.buffered += 1;
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let k = round_constants();
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Digest for Sha256 {
    const BLOCK_LEN: usize = BLOCK_LEN;
    const OUTPUT_LEN: usize = DIGEST_LEN;

    fn new() -> Self {
        Sha256::new()
    }

    fn update(&mut self, data: &[u8]) {
        Sha256::update(self, data);
    }

    fn finalize_into(self, out: &mut [u8]) {
        assert_eq!(out.len(), DIGEST_LEN);
        out.copy_from_slice(&self.finalize());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 100, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for &b in data.iter() {
            h.update(&[b]);
        }
        assert_eq!(h.finalize(), Sha256::digest(data));
    }

    #[test]
    fn lengths_around_block_boundary() {
        // Padding logic is most fragile at 55/56/57 and 63/64/65 bytes.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128, 129] {
            let data = vec![0xa5u8; len];
            let d1 = Sha256::digest(&data);
            let mut h = Sha256::new();
            for chunk in data.chunks(7) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
