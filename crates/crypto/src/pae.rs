//! Probabilistic Authenticated Encryption (PAE), §II-B of the paper.
//!
//! The paper defines `PAE_Enc(SK, IV, v) -> c` and `PAE_Dec(SK, c) -> v`
//! with a random IV per encryption, instantiated as AES-128-GCM. This
//! module provides exactly that interface; the ciphertext is
//! `IV || ciphertext || tag` so decryption needs only the key.

use crate::gcm::{Gcm, IV_LEN, TAG_LEN};
use crate::rng::SecureRandom;
use crate::CryptoError;

/// Ciphertext expansion of PAE in bytes (IV plus tag).
pub const PAE_OVERHEAD: usize = IV_LEN + TAG_LEN;

/// A 128-bit PAE key (the paper's `SK`).
#[derive(Clone)]
pub struct PaeKey(Gcm);

impl std::fmt::Debug for PaeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PaeKey(..)")
    }
}

impl PaeKey {
    /// Wraps raw 16-byte key material.
    #[must_use]
    pub fn from_bytes(key: &[u8; 16]) -> Self {
        PaeKey(Gcm::new(key).expect("16 bytes is a valid AES key"))
    }

    /// Generates a fresh random key.
    #[must_use]
    pub fn generate<R: SecureRandom>(rng: &mut R) -> Self {
        PaeKey::from_bytes(&rng.array::<16>())
    }
}

/// `PAE_Enc`: encrypts `v` under `key` with a random IV, binding `aad`.
///
/// Probabilistic: every call produces a different ciphertext for the same
/// plaintext.
#[must_use]
pub fn pae_enc<R: SecureRandom>(key: &PaeKey, v: &[u8], aad: &[u8], rng: &mut R) -> Vec<u8> {
    let iv: [u8; IV_LEN] = rng.array();
    let mut out = Vec::with_capacity(v.len() + PAE_OVERHEAD);
    out.extend_from_slice(&iv);
    out.extend_from_slice(&key.0.seal(&iv, aad, v));
    out
}

/// `PAE_Dec`: authenticates and decrypts a [`pae_enc`] ciphertext.
///
/// # Errors
///
/// Returns [`CryptoError::AeadAuthenticationFailed`] if the ciphertext is
/// malformed, truncated, tampered with, bound to different `aad`, or
/// encrypted under a different key.
pub fn pae_dec(key: &PaeKey, c: &[u8], aad: &[u8]) -> Result<Vec<u8>, CryptoError> {
    if c.len() < PAE_OVERHEAD {
        return Err(CryptoError::AeadAuthenticationFailed);
    }
    let (iv, sealed) = c.split_at(IV_LEN);
    let iv: [u8; IV_LEN] = iv.try_into().expect("split at IV_LEN");
    key.0.open(&iv, aad, sealed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;

    fn key() -> PaeKey {
        PaeKey::from_bytes(&[0x42; 16])
    }

    #[test]
    fn roundtrip() {
        let mut rng = DeterministicRng::seeded(1);
        let c = pae_enc(&key(), b"value", b"path:/a", &mut rng);
        assert_eq!(c.len(), 5 + PAE_OVERHEAD);
        assert_eq!(
            pae_dec(&key(), &c, b"path:/a").expect("authentic"),
            b"value"
        );
    }

    #[test]
    fn probabilistic_encryption() {
        let mut rng = DeterministicRng::seeded(2);
        let c1 = pae_enc(&key(), b"same", b"", &mut rng);
        let c2 = pae_enc(&key(), b"same", b"", &mut rng);
        assert_ne!(c1, c2, "PAE must be probabilistic (random IV)");
    }

    #[test]
    fn wrong_key_fails() {
        let mut rng = DeterministicRng::seeded(3);
        let c = pae_enc(&key(), b"v", b"", &mut rng);
        let other = PaeKey::from_bytes(&[0x43; 16]);
        assert_eq!(
            pae_dec(&other, &c, b"").unwrap_err(),
            CryptoError::AeadAuthenticationFailed
        );
    }

    #[test]
    fn wrong_aad_fails() {
        let mut rng = DeterministicRng::seeded(4);
        let c = pae_enc(&key(), b"v", b"file:/x", &mut rng);
        assert!(pae_dec(&key(), &c, b"file:/y").is_err());
    }

    #[test]
    fn truncated_and_empty_inputs_fail() {
        let mut rng = DeterministicRng::seeded(5);
        let c = pae_enc(&key(), b"v", b"", &mut rng);
        assert!(pae_dec(&key(), &c[..PAE_OVERHEAD - 1], b"").is_err());
        assert!(pae_dec(&key(), &[], b"").is_err());
    }

    #[test]
    fn empty_plaintext_roundtrips() {
        let mut rng = DeterministicRng::seeded(6);
        let c = pae_enc(&key(), b"", b"", &mut rng);
        assert_eq!(c.len(), PAE_OVERHEAD);
        assert_eq!(pae_dec(&key(), &c, b"").expect("authentic"), b"");
    }

    #[test]
    fn every_bit_flip_detected_small() {
        let mut rng = DeterministicRng::seeded(7);
        let c = pae_enc(&key(), b"secret", b"", &mut rng);
        for i in 0..c.len() {
            let mut bad = c.clone();
            bad[i] ^= 1;
            assert!(pae_dec(&key(), &bad, b"").is_err(), "flip at byte {i}");
        }
    }
}
