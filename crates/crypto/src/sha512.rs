//! SHA-512 (FIPS 180-4), required by Ed25519 (RFC 8032).

use std::sync::OnceLock;

use crate::digest::Digest;
use crate::sha2gen;

/// Digest length in bytes.
pub const DIGEST_LEN: usize = 64;
/// Internal block length in bytes.
pub const BLOCK_LEN: usize = 128;

fn round_constants() -> &'static [u64; 80] {
    static K: OnceLock<[u64; 80]> = OnceLock::new();
    K.get_or_init(|| {
        let primes = sha2gen::first_primes(80);
        let mut k = [0u64; 80];
        for (slot, p) in k.iter_mut().zip(primes) {
            *slot = sha2gen::cbrt_frac64(p);
        }
        k
    })
}

fn initial_state() -> [u64; 8] {
    static H: OnceLock<[u64; 8]> = OnceLock::new();
    *H.get_or_init(|| {
        let primes = sha2gen::first_primes(8);
        let mut h = [0u64; 8];
        for (slot, p) in h.iter_mut().zip(primes) {
            *slot = sha2gen::sqrt_frac64(p);
        }
        h
    })
}

/// Streaming SHA-512 state.
///
/// # Examples
///
/// ```
/// use seg_crypto::sha512::Sha512;
///
/// let digest = Sha512::digest(b"abc");
/// assert_eq!(digest.len(), 64);
/// ```
#[derive(Clone, Debug)]
pub struct Sha512 {
    state: [u64; 8],
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    total_len: u128,
}

impl Sha512 {
    /// Creates a fresh hash state.
    #[must_use]
    pub fn new() -> Self {
        Sha512 {
            state: initial_state(),
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u128);
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            let mut b = [0u8; BLOCK_LEN];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffered = data.len();
        }
    }

    /// Finishes hashing and returns the 64-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update_padding(&[0x80]);
        while self.buffered != 112 {
            self.update_padding(&[0]);
        }
        self.update_padding(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (chunk, word) in out.chunks_exact_mut(8).zip(self.state.iter()) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience.
    #[must_use]
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = Sha512::new();
        h.update(data);
        h.finalize()
    }

    fn update_padding(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffered] = byte;
            self.buffered += 1;
            if self.buffered == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let k = round_constants();
        let mut w = [0u64; 80];
        for (i, chunk) in block.chunks_exact(8).enumerate() {
            w[i] = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        for i in 16..80 {
            let s0 = w[i - 15].rotate_right(1) ^ w[i - 15].rotate_right(8) ^ (w[i - 15] >> 7);
            let s1 = w[i - 2].rotate_right(19) ^ w[i - 2].rotate_right(61) ^ (w[i - 2] >> 6);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..80 {
            let s1 = e.rotate_right(14) ^ e.rotate_right(18) ^ e.rotate_right(41);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(k[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(28) ^ a.rotate_right(34) ^ a.rotate_right(39);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

impl Default for Sha512 {
    fn default() -> Self {
        Sha512::new()
    }
}

impl Digest for Sha512 {
    const BLOCK_LEN: usize = BLOCK_LEN;
    const OUTPUT_LEN: usize = DIGEST_LEN;

    fn new() -> Self {
        Sha512::new()
    }

    fn update(&mut self, data: &[u8]) {
        Sha512::update(self, data);
    }

    fn finalize_into(self, out: &mut [u8]) {
        assert_eq!(out.len(), DIGEST_LEN);
        out.copy_from_slice(&self.finalize());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha512::digest(b"abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a\
             2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&Sha512::digest(b"")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce\
             47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn two_block_message() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                    hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        let msg: Vec<u8> = msg
            .iter()
            .copied()
            .filter(|b| !b.is_ascii_whitespace())
            .collect();
        assert_eq!(
            hex(&Sha512::digest(&msg)),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018\
             501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 253) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 128, 129, 1000, 4096] {
            let mut h = Sha512::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha512::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn lengths_around_block_boundary() {
        for len in [0usize, 1, 110, 111, 112, 113, 127, 128, 129, 255, 256, 257] {
            let data = vec![0x5au8; len];
            let d1 = Sha512::digest(&data);
            let mut h = Sha512::new();
            for chunk in data.chunks(13) {
                h.update(chunk);
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
