//! Incremental multiset hashes (MSet-XOR-Hash, Clarke et al. ASIACRYPT
//! 2003), used by SeGShare's individual-file rollback protection (§V-D).
//!
//! The rollback-protection Merkle tree variant replaces plain hash
//! concatenation with multiset hashes so that a single child update can be
//! folded into an inner node *incrementally* — subtract the old child's
//! hash, add the new one — without touching any sibling file. XOR is its
//! own inverse, so addition and removal are the same operation; a separate
//! element count distinguishes multiplicities that XOR alone would cancel.
//!
//! The construction is keyed (the enclave keys it with a key derived from
//! the sealed root key `SK_r`), matching the secret-key setting of the
//! MSet-XOR-Hash security proof: an attacker who cannot evaluate
//! `HMAC(K, ·)` cannot craft a colliding multiset.

use crate::hmac::hmac_sha256;

/// Serialized size of a [`MsetHash`] in bytes (32-byte accumulator plus
/// 8-byte count).
pub const MSET_HASH_LEN: usize = 40;

/// The key for a multiset hash domain.
#[derive(Clone)]
pub struct MsetKey([u8; 32]);

impl std::fmt::Debug for MsetKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MsetKey(..)")
    }
}

impl MsetKey {
    /// Wraps raw 32-byte key material.
    #[must_use]
    pub fn from_bytes(key: [u8; 32]) -> Self {
        MsetKey(key)
    }

    /// Hashes one element into its accumulator contribution.
    fn element_hash(&self, element: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.0, element)
    }
}

/// An incremental multiset hash value.
///
/// The hash of the empty multiset is [`MsetHash::empty`]; elements are
/// [added](MsetHash::add) and [removed](MsetHash::remove) in O(1), and two
/// hashes [combine](MsetHash::combine) in O(1) independent of order.
///
/// # Examples
///
/// ```
/// use seg_crypto::mset::{MsetKey, MsetHash};
///
/// let key = MsetKey::from_bytes([7u8; 32]);
/// let mut a = MsetHash::empty();
/// a.add(&key, b"x");
/// a.add(&key, b"y");
/// let mut b = MsetHash::empty();
/// b.add(&key, b"y");
/// b.add(&key, b"x");
/// assert_eq!(a, b); // order independence
/// a.remove(&key, b"y");
/// let mut only_x = MsetHash::empty();
/// only_x.add(&key, b"x");
/// assert_eq!(a, only_x); // incremental removal
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsetHash {
    acc: [u8; 32],
    count: u64,
}

impl std::fmt::Debug for MsetHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MsetHash {{ count: {}, acc: {:02x}{:02x}{:02x}{:02x}.. }}",
            self.count, self.acc[0], self.acc[1], self.acc[2], self.acc[3]
        )
    }
}

impl Default for MsetHash {
    fn default() -> Self {
        MsetHash::empty()
    }
}

impl MsetHash {
    /// The hash of the empty multiset.
    #[must_use]
    pub fn empty() -> Self {
        MsetHash {
            acc: [0u8; 32],
            count: 0,
        }
    }

    /// Hash of a single-element multiset.
    #[must_use]
    pub fn of(key: &MsetKey, element: &[u8]) -> Self {
        let mut h = MsetHash::empty();
        h.add(key, element);
        h
    }

    /// Adds one element occurrence.
    pub fn add(&mut self, key: &MsetKey, element: &[u8]) {
        let eh = key.element_hash(element);
        for (a, e) in self.acc.iter_mut().zip(eh.iter()) {
            *a ^= e;
        }
        self.count = self.count.wrapping_add(1);
    }

    /// Removes one element occurrence.
    ///
    /// Removing an element that was never added silently corrupts the
    /// accumulator (as with any XOR accumulator); callers maintain that
    /// invariant — in SeGShare the trusted file manager only removes a
    /// child hash it previously stored.
    pub fn remove(&mut self, key: &MsetKey, element: &[u8]) {
        let eh = key.element_hash(element);
        for (a, e) in self.acc.iter_mut().zip(eh.iter()) {
            *a ^= e;
        }
        self.count = self.count.wrapping_sub(1);
    }

    /// Replaces one occurrence of `old` with `new` in O(1).
    pub fn replace(&mut self, key: &MsetKey, old: &[u8], new: &[u8]) {
        self.remove(key, old);
        self.add(key, new);
    }

    /// Multiset union: folds `other` into `self`.
    pub fn combine(&mut self, other: &MsetHash) {
        for (a, o) in self.acc.iter_mut().zip(other.acc.iter()) {
            *a ^= o;
        }
        self.count = self.count.wrapping_add(other.count);
    }

    /// Number of element occurrences folded into this hash.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Serializes to a fixed 40-byte encoding.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; MSET_HASH_LEN] {
        let mut out = [0u8; MSET_HASH_LEN];
        out[..32].copy_from_slice(&self.acc);
        out[32..].copy_from_slice(&self.count.to_le_bytes());
        out
    }

    /// Parses the [`MsetHash::to_bytes`] encoding.
    #[must_use]
    pub fn from_bytes(bytes: &[u8; MSET_HASH_LEN]) -> Self {
        let mut acc = [0u8; 32];
        acc.copy_from_slice(&bytes[..32]);
        let count = u64::from_le_bytes(bytes[32..].try_into().expect("8 bytes"));
        MsetHash { acc, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> MsetKey {
        MsetKey::from_bytes([9u8; 32])
    }

    #[test]
    fn empty_is_identity_for_combine() {
        let k = key();
        let mut h = MsetHash::of(&k, b"a");
        let before = h;
        h.combine(&MsetHash::empty());
        assert_eq!(h, before);
    }

    #[test]
    fn order_independence() {
        let k = key();
        let elements: [&[u8]; 4] = [b"alpha", b"beta", b"gamma", b"delta"];
        let mut forward = MsetHash::empty();
        for e in elements {
            forward.add(&k, e);
        }
        let mut backward = MsetHash::empty();
        for e in elements.iter().rev() {
            backward.add(&k, e);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn multiplicity_matters() {
        let k = key();
        let mut once = MsetHash::of(&k, b"x");
        let mut twice = MsetHash::of(&k, b"x");
        twice.add(&k, b"x");
        assert_ne!(once, twice, "counts must distinguish multiplicities");
        // XOR cancels the accumulator but not the count.
        assert_eq!(twice.to_bytes()[..32], MsetHash::empty().to_bytes()[..32]);
        once.add(&k, b"x");
        assert_eq!(once, twice);
    }

    #[test]
    fn add_then_remove_restores() {
        let k = key();
        let mut h = MsetHash::of(&k, b"base");
        let snapshot = h;
        h.add(&k, b"transient");
        assert_ne!(h, snapshot);
        h.remove(&k, b"transient");
        assert_eq!(h, snapshot);
    }

    #[test]
    fn replace_is_remove_plus_add() {
        let k = key();
        let mut h = MsetHash::of(&k, b"old");
        h.replace(&k, b"old", b"new");
        assert_eq!(h, MsetHash::of(&k, b"new"));
    }

    #[test]
    fn combine_matches_sequential_adds() {
        let k = key();
        let mut left = MsetHash::empty();
        left.add(&k, b"1");
        left.add(&k, b"2");
        let mut right = MsetHash::empty();
        right.add(&k, b"3");
        left.combine(&right);
        let mut all = MsetHash::empty();
        for e in [&b"1"[..], b"2", b"3"] {
            all.add(&k, e);
        }
        assert_eq!(left, all);
        assert_eq!(left.count(), 3);
    }

    #[test]
    fn different_keys_different_hashes() {
        let k1 = MsetKey::from_bytes([1u8; 32]);
        let k2 = MsetKey::from_bytes([2u8; 32]);
        assert_ne!(MsetHash::of(&k1, b"e"), MsetHash::of(&k2, b"e"));
    }

    #[test]
    fn serialization_roundtrip() {
        let k = key();
        let mut h = MsetHash::empty();
        h.add(&k, b"a");
        h.add(&k, b"b");
        assert_eq!(MsetHash::from_bytes(&h.to_bytes()), h);
    }
}
