//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! GHASH is implemented with per-key nibble tables: multiplication by the
//! hash subkey `H` is GF(2)-linear, so the product decomposes into 32
//! table lookups (one per nibble position), each table built once per key
//! with a slow-but-obviously-correct bit-serial multiply.

use crate::aes::{Aes, BLOCK_LEN};
use crate::ct::ct_eq;
use crate::CryptoError;

/// Authentication tag length in bytes.
pub const TAG_LEN: usize = 16;
/// The only IV length this implementation accepts (the GCM fast path).
pub const IV_LEN: usize = 12;

/// Bit-serial multiplication in GF(2^128) with the GCM reduction
/// polynomial. Blocks are interpreted big-endian, bit 0 = MSB (the GCM
/// "reflected" convention folded into the u128 representation).
///
/// The hot path uses the per-key tables below; this reference
/// implementation remains as the test oracle for them.
#[cfg_attr(not(test), allow(dead_code))]
fn gf_mul_slow(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// A GCM key: the expanded AES key plus GHASH byte tables.
#[derive(Clone)]
pub struct Gcm {
    aes: Aes,
    /// `htable[pos][b]` = `(b << 8*pos) * H` in GF(2^128).
    ///
    /// Built incrementally: the product for a single operand bit is a
    /// shift-reduce of `H` (multiplication by the field's `X` is linear),
    /// and each byte entry is the XOR of its bits' products — so key
    /// setup needs 128 shift-reduces plus XORs, no generic multiplies.
    htable: Box<[[u128; 256]; 16]>,
}

impl std::fmt::Debug for Gcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gcm").field("aes", &self.aes).finish()
    }
}

impl Gcm {
    /// Creates a GCM instance from a raw AES key (16, 24, or 32 bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] for other key lengths.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let aes = Aes::new(key)?;
        let h = u128::from_be_bytes(aes.encrypt_block([0u8; BLOCK_LEN]));
        // basis[j] = (1 << j) * H: u128 bit j is the coefficient of
        // X^(127-j), and multiplying by X is a right-shift with
        // reduction, so walk from the top bit down.
        const R: u128 = 0xe1 << 120;
        let mut basis = [0u128; 128];
        let mut v = h; // (1 << 127) * H = X^0 * H = H
        for j in (0..128).rev() {
            basis[j] = v;
            let lsb = v & 1;
            v >>= 1;
            if lsb == 1 {
                v ^= R;
            }
        }
        let mut htable = Box::new([[0u128; 256]; 16]);
        for pos in 0..16 {
            for b in 1usize..256 {
                let low_bit = b.trailing_zeros() as usize;
                htable[pos][b] = htable[pos][b & (b - 1)] ^ basis[8 * pos + low_bit];
            }
        }
        Ok(Gcm { aes, htable })
    }

    /// Table-driven multiplication by the hash subkey.
    fn mul_h(&self, x: u128) -> u128 {
        let mut z = 0u128;
        for pos in 0..16 {
            z ^= self.htable[pos][((x >> (8 * pos)) & 0xff) as usize];
        }
        z
    }

    fn ghash(&self, aad: &[u8], ciphertext: &[u8]) -> [u8; BLOCK_LEN] {
        let mut y = 0u128;
        for part in [aad, ciphertext] {
            for chunk in part.chunks(BLOCK_LEN) {
                let mut block = [0u8; BLOCK_LEN];
                block[..chunk.len()].copy_from_slice(chunk);
                y = self.mul_h(y ^ u128::from_be_bytes(block));
            }
        }
        let lengths = ((aad.len() as u128 * 8) << 64) | (ciphertext.len() as u128 * 8);
        y = self.mul_h(y ^ lengths);
        y.to_be_bytes()
    }

    /// CTR-mode keystream application starting at counter block `ctr`.
    fn ctr_xor(&self, mut ctr: [u8; BLOCK_LEN], data: &mut [u8]) {
        for chunk in data.chunks_mut(BLOCK_LEN) {
            inc32(&mut ctr);
            let keystream = self.aes.encrypt_block(ctr);
            for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
                *b ^= k;
            }
        }
    }

    fn j0(iv: &[u8; IV_LEN]) -> [u8; BLOCK_LEN] {
        let mut j0 = [0u8; BLOCK_LEN];
        j0[..IV_LEN].copy_from_slice(iv);
        j0[15] = 1;
        j0
    }

    /// Encrypts `plaintext` in place and returns the authentication tag.
    pub fn seal_in_place(&self, iv: &[u8; IV_LEN], aad: &[u8], data: &mut [u8]) -> [u8; TAG_LEN] {
        let _prof = seg_obs::prof::phase("crypto_gcm");
        let j0 = Self::j0(iv);
        self.ctr_xor(j0, data);
        let s = self.ghash(aad, data);
        let ekj0 = self.aes.encrypt_block(j0);
        let mut tag = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            tag[i] = s[i] ^ ekj0[i];
        }
        tag
    }

    /// Verifies `tag` and decrypts `data` in place.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::AeadAuthenticationFailed`] on tag mismatch;
    /// in that case `data` is left *encrypted* (never releases unverified
    /// plaintext).
    pub fn open_in_place(
        &self,
        iv: &[u8; IV_LEN],
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> Result<(), CryptoError> {
        let _prof = seg_obs::prof::phase("crypto_gcm");
        let j0 = Self::j0(iv);
        let s = self.ghash(aad, data);
        let ekj0 = self.aes.encrypt_block(j0);
        let mut expected = [0u8; TAG_LEN];
        for i in 0..TAG_LEN {
            expected[i] = s[i] ^ ekj0[i];
        }
        if !ct_eq(&expected, tag) {
            return Err(CryptoError::AeadAuthenticationFailed);
        }
        self.ctr_xor(j0, data);
        Ok(())
    }

    /// Convenience: encrypts `plaintext`, returning `ciphertext || tag`.
    #[must_use]
    pub fn seal(&self, iv: &[u8; IV_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let _prof = seg_obs::prof::phase("crypto_gcm");
        let mut out = plaintext.to_vec();
        let tag = self.seal_in_place(iv, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Convenience: verifies and decrypts `ciphertext || tag`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::AeadAuthenticationFailed`] if the input is
    /// shorter than a tag or fails authentication.
    pub fn open(
        &self,
        iv: &[u8; IV_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let _prof = seg_obs::prof::phase("crypto_gcm");
        if sealed.len() < TAG_LEN {
            return Err(CryptoError::AeadAuthenticationFailed);
        }
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let mut data = ct.to_vec();
        self.open_in_place(iv, aad, &mut data, tag)?;
        Ok(data)
    }
}

/// Increments the low 32 bits of a counter block (GCM `inc32`).
fn inc32(block: &mut [u8; BLOCK_LEN]) {
    let mut ctr = u32::from_be_bytes(block[12..16].try_into().expect("4 bytes"));
    ctr = ctr.wrapping_add(1);
    block[12..16].copy_from_slice(&ctr.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    fn iv12(s: &str) -> [u8; 12] {
        unhex(s).try_into().expect("12-byte iv")
    }

    // NIST GCM test case 1: zero key, zero IV, empty everything.
    #[test]
    fn nist_case_1() {
        let gcm = Gcm::new(&[0u8; 16]).expect("valid key");
        let sealed = gcm.seal(&[0u8; 12], b"", b"");
        assert_eq!(hex(&sealed), "58e2fccefa7e3061367f1d57a4e7455a");
    }

    // NIST GCM test case 2: zero key/IV, one zero block.
    #[test]
    fn nist_case_2() {
        let gcm = Gcm::new(&[0u8; 16]).expect("valid key");
        let sealed = gcm.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(
            hex(&sealed),
            "0388dace60b6a392f328c2b971b2fe78ab6e47d42cec13bdf53a67b21257bddf"
        );
        let opened = gcm.open(&[0u8; 12], b"", &sealed).expect("authentic");
        assert_eq!(opened, [0u8; 16]);
    }

    // NIST GCM test case 3: 4-block plaintext, no AAD.
    #[test]
    fn nist_case_3() {
        let gcm = Gcm::new(&unhex("feffe9928665731c6d6a8f9467308308")).expect("valid key");
        let iv = iv12("cafebabefacedbaddecaf888");
        let pt = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let sealed = gcm.seal(&iv, b"", &pt);
        assert_eq!(
            hex(&sealed[..64]),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
        );
        assert_eq!(hex(&sealed[64..]), "4d5c2af327cd64a62cf35abd2ba6fab4");
        assert_eq!(gcm.open(&iv, b"", &sealed).expect("authentic"), pt);
    }

    // NIST GCM test case 4: partial final block plus AAD.
    #[test]
    fn nist_case_4() {
        let gcm = Gcm::new(&unhex("feffe9928665731c6d6a8f9467308308")).expect("valid key");
        let iv = iv12("cafebabefacedbaddecaf888");
        let pt = unhex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = unhex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let sealed = gcm.seal(&iv, &aad, &pt);
        assert_eq!(
            hex(&sealed[..pt.len()]),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
             21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
        );
        assert_eq!(hex(&sealed[pt.len()..]), "5bc94fbc3221a5db94fae95ae7121a47");
        assert_eq!(gcm.open(&iv, &aad, &sealed).expect("authentic"), pt);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let gcm = Gcm::new(&[1u8; 16]).expect("valid key");
        let iv = [2u8; 12];
        let mut sealed = gcm.seal(&iv, b"aad", b"hello world");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x80;
            assert_eq!(
                gcm.open(&iv, b"aad", &bad).unwrap_err(),
                CryptoError::AeadAuthenticationFailed,
                "flip at byte {i} not detected"
            );
        }
        // Wrong AAD, wrong IV, truncation.
        assert!(gcm.open(&iv, b"aad2", &sealed).is_err());
        assert!(gcm.open(&[3u8; 12], b"aad", &sealed).is_err());
        assert!(gcm.open(&iv, b"aad", &sealed[..10]).is_err());
        sealed.truncate(TAG_LEN - 1);
        assert!(gcm.open(&iv, b"aad", &sealed).is_err());
    }

    #[test]
    fn gf_mul_commutes_and_distributes() {
        let a = 0x0123456789abcdef0011223344556677u128;
        let b = 0xfedcba98765432100aa0bb0cc0dd0ee0u128;
        let c = 0xdeadbeefcafebabe1234567890abcdefu128;
        assert_eq!(gf_mul_slow(a, b), gf_mul_slow(b, a));
        assert_eq!(gf_mul_slow(a ^ b, c), gf_mul_slow(a, c) ^ gf_mul_slow(b, c));
        // 1 (the GCM "reflected one": MSB set) is the identity.
        let one = 1u128 << 127;
        assert_eq!(gf_mul_slow(a, one), a);
    }

    #[test]
    fn table_mul_matches_slow_mul() {
        let gcm = Gcm::new(&[9u8; 16]).expect("valid key");
        let h = u128::from_be_bytes(gcm.aes.encrypt_block([0u8; 16]));
        for x in [
            0u128,
            1,
            1 << 127,
            0x0123456789abcdef0011223344556677,
            u128::MAX,
        ] {
            assert_eq!(gcm.mul_h(x), gf_mul_slow(x, h));
        }
    }

    #[test]
    fn roundtrip_various_lengths() {
        let gcm = Gcm::new(&[7u8; 32]).expect("valid key");
        let iv = [1u8; 12];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let sealed = gcm.seal(&iv, b"ctx", &pt);
            assert_eq!(sealed.len(), len + TAG_LEN);
            assert_eq!(gcm.open(&iv, b"ctx", &sealed).expect("authentic"), pt);
        }
    }

    #[test]
    fn inc32_wraps_only_low_word() {
        let mut block = [0xffu8; 16];
        inc32(&mut block);
        assert_eq!(&block[..12], &[0xff; 12]);
        assert_eq!(&block[12..], &[0, 0, 0, 0]);
    }
}
