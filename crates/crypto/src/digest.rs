//! The [`Digest`] trait abstracting over the hash functions in this crate.
//!
//! [`crate::hmac`] and [`crate::hkdf`] are generic over this trait so the
//! same code serves SHA-256 (used throughout SeGShare) and SHA-512 (used by
//! Ed25519).

/// A streaming cryptographic hash function.
///
/// Implementors are cheap to clone (cloning forks the running state, which
/// HMAC exploits to avoid rehashing the padded key).
pub trait Digest: Clone {
    /// Internal block length in bytes (HMAC's `B` parameter).
    const BLOCK_LEN: usize;
    /// Output length in bytes.
    const OUTPUT_LEN: usize;

    /// Creates a fresh hash state.
    fn new() -> Self;

    /// Absorbs `data` into the state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the state and writes the digest into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::OUTPUT_LEN`.
    fn finalize_into(self, out: &mut [u8]);

    /// Convenience: finalizes into a freshly allocated vector.
    fn finalize_vec(self) -> Vec<u8>
    where
        Self: Sized,
    {
        let mut out = vec![0u8; Self::OUTPUT_LEN];
        self.finalize_into(&mut out);
        out
    }

    /// Convenience: one-shot hash of `data`.
    fn hash(data: &[u8]) -> Vec<u8>
    where
        Self: Sized,
    {
        let mut d = Self::new();
        d.update(data);
        d.finalize_vec()
    }
}
