//! HKDF (RFC 5869) extract-and-expand key derivation.
//!
//! The SeGShare enclave derives one key per file from the sealed root key
//! `SK_r` (§IV-B "File Managers"); the TLS substrate derives record keys
//! from the ECDHE shared secret. Both use HKDF-SHA-256.

use crate::digest::Digest;
use crate::hmac::Hmac;

/// HKDF-Extract: concentrates input keying material into a pseudorandom key.
#[must_use]
pub fn extract<D: Digest>(salt: &[u8], ikm: &[u8]) -> Vec<u8> {
    Hmac::<D>::mac(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `len` bytes of output keying material
/// bound to `info`.
///
/// # Panics
///
/// Panics if `len > 255 * D::OUTPUT_LEN` (the RFC 5869 limit).
#[must_use]
pub fn expand<D: Digest>(prk: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    assert!(
        len <= 255 * D::OUTPUT_LEN,
        "hkdf output length exceeds RFC 5869 limit"
    );
    let mut okm = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut h = Hmac::<D>::new(prk);
        h.update(&previous);
        h.update(info);
        h.update(&[counter]);
        previous = h.finalize();
        let take = (len - okm.len()).min(previous.len());
        okm.extend_from_slice(&previous[..take]);
        counter = counter
            .checked_add(1)
            .expect("counter bounded by len check");
    }
    okm
}

/// One-shot extract-then-expand.
#[must_use]
pub fn hkdf<D: Digest>(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = extract::<D>(salt, ikm);
    expand::<D>(&prk, info, len)
}

/// Derives a 16-byte AES-128 key from a 32-byte root key and a context
/// label — the per-file key derivation used by the trusted file manager.
#[must_use]
pub fn derive_key_128(root: &[u8; 32], label: &str, context: &[u8]) -> [u8; 16] {
    let mut info = Vec::with_capacity(label.len() + 1 + context.len());
    info.extend_from_slice(label.as_bytes());
    info.push(0);
    info.extend_from_slice(context);
    let okm = hkdf::<crate::sha256::Sha256>(b"segshare-v1", root, &info, 16);
    let mut out = [0u8; 16];
    out.copy_from_slice(&okm);
    out
}

/// Derives a 32-byte key, same construction as [`derive_key_128`].
#[must_use]
pub fn derive_key_256(root: &[u8; 32], label: &str, context: &[u8]) -> [u8; 32] {
    let mut info = Vec::with_capacity(label.len() + 1 + context.len());
    info.extend_from_slice(label.as_bytes());
    info.push(0);
    info.extend_from_slice(context);
    let okm = hkdf::<crate::sha256::Sha256>(b"segshare-v1", root, &info, 32);
    let mut out = [0u8; 32];
    out.copy_from_slice(&okm);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Sha256;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract::<Sha256>(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand::<Sha256>(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf::<Sha256>(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn expand_lengths() {
        let prk = extract::<Sha256>(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(expand::<Sha256>(&prk, b"info", len).len(), len);
        }
        // Prefix property: shorter outputs are prefixes of longer ones.
        let long = expand::<Sha256>(&prk, b"info", 100);
        let short = expand::<Sha256>(&prk, b"info", 33);
        assert_eq!(&long[..33], &short[..]);
    }

    #[test]
    #[should_panic(expected = "hkdf output length exceeds")]
    fn expand_rejects_oversized_output() {
        let prk = extract::<Sha256>(b"salt", b"ikm");
        let _ = expand::<Sha256>(&prk, b"info", 255 * 32 + 1);
    }

    #[test]
    fn derived_keys_are_domain_separated() {
        let root = [7u8; 32];
        let k1 = derive_key_128(&root, "file", b"/a");
        let k2 = derive_key_128(&root, "file", b"/b");
        let k3 = derive_key_128(&root, "acl", b"/a");
        assert_ne!(k1, k2);
        assert_ne!(k1, k3);
        // label/context boundary must matter: "ab"+"c" != "a"+"bc"
        let k4 = derive_key_128(&root, "ab", b"c");
        let k5 = derive_key_128(&root, "a", b"bc");
        assert_ne!(k4, k5);
        // Deterministic.
        assert_eq!(k1, derive_key_128(&root, "file", b"/a"));
    }
}
