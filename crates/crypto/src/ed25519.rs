//! Ed25519 signatures (RFC 8032), used by the PKI substrate (certificate
//! signatures) and the TLS handshake (CertificateVerify / server key
//! exchange signatures).

use crate::curve25519::{EdwardsPoint, Scalar};
use crate::rng::SecureRandom;
use crate::sha512::Sha512;
use crate::CryptoError;

/// Length of a signature in bytes.
pub const SIGNATURE_LEN: usize = 64;
/// Length of a public key in bytes.
pub const PUBLIC_KEY_LEN: usize = 32;
/// Length of a secret seed in bytes.
pub const SEED_LEN: usize = 32;

/// An Ed25519 signature (`R || S`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; SIGNATURE_LEN]);

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature({:02x}{:02x}..)", self.0[0], self.0[1])
    }
}

impl Signature {
    /// Parses a 64-byte signature.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] if `bytes` is not 64 bytes.
    pub fn from_slice(bytes: &[u8]) -> Result<Signature, CryptoError> {
        let arr: [u8; SIGNATURE_LEN] = bytes.try_into().map_err(|_| CryptoError::InvalidLength)?;
        Ok(Signature(arr))
    }

    /// The raw 64 bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; SIGNATURE_LEN] {
        self.0
    }
}

/// An Ed25519 verifying (public) key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey(pub [u8; PUBLIC_KEY_LEN]);

impl std::fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PublicKey({:02x}{:02x}..)", self.0[0], self.0[1])
    }
}

impl PublicKey {
    /// Parses a 32-byte public key, checking it decodes to a curve point.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] / [`CryptoError::InvalidEncoding`]
    /// for malformed input.
    pub fn from_slice(bytes: &[u8]) -> Result<PublicKey, CryptoError> {
        let arr: [u8; PUBLIC_KEY_LEN] = bytes.try_into().map_err(|_| CryptoError::InvalidLength)?;
        EdwardsPoint::decompress(&arr)?;
        Ok(PublicKey(arr))
    }

    /// The raw 32 bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; PUBLIC_KEY_LEN] {
        self.0
    }

    /// Verifies `signature` over `message`.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::SignatureInvalid`] if verification fails for
    /// any reason (malformed `R`, non-canonical `S`, or equation mismatch).
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<(), CryptoError> {
        let r_bytes: [u8; 32] = signature.0[..32].try_into().expect("32 bytes");
        let s_bytes: [u8; 32] = signature.0[32..].try_into().expect("32 bytes");
        let r = EdwardsPoint::decompress(&r_bytes).map_err(|_| CryptoError::SignatureInvalid)?;
        let s = Scalar::from_canonical_bytes(&s_bytes).ok_or(CryptoError::SignatureInvalid)?;
        let a = EdwardsPoint::decompress(&self.0).map_err(|_| CryptoError::SignatureInvalid)?;

        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.0);
        h.update(message);
        let k = Scalar::from_bytes_mod_order_wide(&h.finalize());

        // Check S·B == R + k·A.
        let lhs = EdwardsPoint::mul_base(&s);
        let rhs = r.add(&a.mul_scalar(&k));
        if lhs == rhs {
            Ok(())
        } else {
            Err(CryptoError::SignatureInvalid)
        }
    }
}

/// An Ed25519 signing (secret) key.
#[derive(Clone)]
pub struct SecretKey {
    seed: [u8; SEED_LEN],
    scalar: Scalar,
    prefix: [u8; 32],
    public: PublicKey,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecretKey")
            .field("public", &self.public)
            .finish()
    }
}

impl SecretKey {
    /// Derives a signing key from a 32-byte seed (RFC 8032 key
    /// generation).
    #[must_use]
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> SecretKey {
        let h = Sha512::digest(seed);
        let mut scalar_bytes: [u8; 32] = h[..32].try_into().expect("32 bytes");
        // Clamp.
        scalar_bytes[0] &= 0xf8;
        scalar_bytes[31] &= 0x7f;
        scalar_bytes[31] |= 0x40;
        let scalar = Scalar::from_bytes_mod_order(&scalar_bytes);
        let prefix: [u8; 32] = h[32..].try_into().expect("32 bytes");
        let public = PublicKey(EdwardsPoint::mul_base(&scalar).compress());
        SecretKey {
            seed: *seed,
            scalar,
            prefix,
            public,
        }
    }

    /// Generates a fresh random signing key.
    #[must_use]
    pub fn generate<R: SecureRandom>(rng: &mut R) -> SecretKey {
        SecretKey::from_seed(&rng.array::<SEED_LEN>())
    }

    /// The seed this key was derived from.
    #[must_use]
    pub fn seed(&self) -> &[u8; SEED_LEN] {
        &self.seed
    }

    /// The corresponding public key.
    #[must_use]
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// Signs `message` (deterministic, RFC 8032).
    #[must_use]
    pub fn sign(&self, message: &[u8]) -> Signature {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(message);
        let r = Scalar::from_bytes_mod_order_wide(&h.finalize());
        let r_point = EdwardsPoint::mul_base(&r).compress();

        let mut h = Sha512::new();
        h.update(&r_point);
        h.update(&self.public.0);
        h.update(message);
        let k = Scalar::from_bytes_mod_order_wide(&h.finalize());

        let s = k.mul_add(&self.scalar, &r);
        let mut sig = [0u8; SIGNATURE_LEN];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DeterministicRng;

    fn unhex32(s: &str) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex");
        }
        out
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    // RFC 8032 §7.1 TEST 1: empty message.
    #[test]
    fn rfc8032_test1() {
        let seed = unhex32("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
        let sk = SecretKey::from_seed(&seed);
        assert_eq!(
            hex(&sk.public_key().to_bytes()),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
        );
        let sig = sk.sign(b"");
        assert_eq!(
            hex(&sig.to_bytes()),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
             5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
                .replace(char::is_whitespace, "")
        );
        sk.public_key().verify(b"", &sig).expect("valid signature");
    }

    // RFC 8032 §7.1 TEST 2: one-byte message 0x72.
    #[test]
    fn rfc8032_test2() {
        let seed = unhex32("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
        let sk = SecretKey::from_seed(&seed);
        assert_eq!(
            hex(&sk.public_key().to_bytes()),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c"
        );
        let sig = sk.sign(&[0x72]);
        assert_eq!(
            hex(&sig.to_bytes()),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da\
             085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"
                .replace(char::is_whitespace, "")
        );
        sk.public_key()
            .verify(&[0x72], &sig)
            .expect("valid signature");
    }

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = DeterministicRng::seeded(21);
        let sk = SecretKey::generate(&mut rng);
        let pk = sk.public_key();
        for msg_len in [0usize, 1, 32, 100, 1000] {
            let msg: Vec<u8> = (0..msg_len).map(|i| (i * 3) as u8).collect();
            let sig = sk.sign(&msg);
            pk.verify(&msg, &sig).expect("valid signature");
        }
    }

    #[test]
    fn tampered_message_rejected() {
        let mut rng = DeterministicRng::seeded(22);
        let sk = SecretKey::generate(&mut rng);
        let sig = sk.sign(b"original");
        assert_eq!(
            sk.public_key().verify(b"0riginal", &sig).unwrap_err(),
            CryptoError::SignatureInvalid
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut rng = DeterministicRng::seeded(23);
        let sk = SecretKey::generate(&mut rng);
        let sig = sk.sign(b"msg");
        for i in [0usize, 31, 32, 63] {
            let mut bad = sig.to_bytes();
            bad[i] ^= 1;
            assert!(
                sk.public_key().verify(b"msg", &Signature(bad)).is_err(),
                "flip at byte {i}"
            );
        }
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = DeterministicRng::seeded(24);
        let sk1 = SecretKey::generate(&mut rng);
        let sk2 = SecretKey::generate(&mut rng);
        let sig = sk1.sign(b"msg");
        assert!(sk2.public_key().verify(b"msg", &sig).is_err());
    }

    #[test]
    fn non_canonical_s_rejected() {
        let mut rng = DeterministicRng::seeded(25);
        let sk = SecretKey::generate(&mut rng);
        let mut sig = sk.sign(b"msg").to_bytes();
        // Make S >= l by setting its top byte to 0xff.
        sig[63] = 0xff;
        assert!(sk.public_key().verify(b"msg", &Signature(sig)).is_err());
    }

    #[test]
    fn public_key_parsing() {
        assert!(PublicKey::from_slice(&[0u8; 31]).is_err());
        let mut rng = DeterministicRng::seeded(26);
        let sk = SecretKey::generate(&mut rng);
        let pk = PublicKey::from_slice(&sk.public_key().to_bytes()).expect("valid key");
        assert_eq!(pk, sk.public_key());
    }

    #[test]
    fn deterministic_signatures() {
        let sk = SecretKey::from_seed(&[5u8; 32]);
        assert_eq!(sk.sign(b"m").to_bytes(), sk.sign(b"m").to_bytes());
        assert_ne!(sk.sign(b"m").to_bytes(), sk.sign(b"n").to_bytes());
    }
}
