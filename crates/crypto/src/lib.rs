//! From-scratch cryptographic substrate for the SeGShare reproduction.
//!
//! SeGShare (Fuhry et al., DSN 2020) relies on a handful of cryptographic
//! primitives: probabilistic authenticated encryption (AES-128-GCM, §II-B),
//! HMAC for deduplication names and path hiding (§V-A, §V-C), incremental
//! multiset hashes for the rollback-protection Merkle tree variant (§V-D),
//! and a TLS channel whose handshake needs a signature scheme and a
//! Diffie-Hellman exchange (§IV-A/B). This crate implements all of them from
//! first principles so the reproduction depends only on the allowed crate
//! list; every primitive is validated against published known-answer vectors
//! plus property-based tests.
//!
//! # Modules
//!
//! * [`sha256`] / [`sha512`] — FIPS 180-4 hash functions. Round constants
//!   are *derived* (integer cube/square roots of the first primes) rather
//!   than transcribed, and pinned by known-answer tests.
//! * [`hmac`] — FIPS 198-1 HMAC over any [`digest::Digest`].
//! * [`hkdf`] — RFC 5869 extract-and-expand KDF, used for the TLS key
//!   schedule and per-file key derivation.
//! * [`aes`] — FIPS 197 AES-128/192/256 block cipher.
//! * [`gcm`] — NIST SP 800-38D Galois/Counter mode.
//! * [`pae`] — the paper's PAE abstraction (random-IV AES-128-GCM).
//! * [`mset`] — MSet-XOR-Hash incremental multiset hash (Clarke et al.,
//!   ASIACRYPT 2003), as named in §VI of the paper.
//! * [`curve25519`], [`ed25519`], [`x25519`] — Curve25519 arithmetic,
//!   RFC 8032 signatures and RFC 7748 Diffie-Hellman for the PKI and TLS
//!   substrates.
//! * [`ct`] — constant-time comparison helpers.
//! * [`rng`] — randomness plumbing (OS-backed and deterministic-for-test).
//!
//! # Example
//!
//! ```
//! use seg_crypto::pae::{PaeKey, pae_enc, pae_dec};
//! use seg_crypto::rng::SystemRng;
//!
//! # fn main() -> Result<(), seg_crypto::CryptoError> {
//! let key = PaeKey::generate(&mut SystemRng::new());
//! let ciphertext = pae_enc(&key, b"attack at dawn", b"", &mut SystemRng::new());
//! let plaintext = pae_dec(&key, &ciphertext, b"")?;
//! assert_eq!(plaintext, b"attack at dawn");
//! # Ok(())
//! # }
//! ```
//!
//! # Security note
//!
//! These implementations favour clarity and auditability over side-channel
//! hardening (table-based AES, variable-time curve arithmetic). That matches
//! the paper's threat model, which explicitly declares side channels out of
//! scope (§III-B).

#![warn(missing_docs)]

pub mod aes;
pub mod ct;
pub mod curve25519;
pub mod digest;
pub mod ed25519;
pub mod gcm;
pub mod hkdf;
pub mod hmac;
pub mod mset;
pub mod pae;
pub mod rng;
pub mod sha256;
mod sha2gen;
pub mod sha512;
pub mod x25519;

use std::error::Error;
use std::fmt;

/// Errors produced by the cryptographic primitives in this crate.
///
/// Deliberately coarse: authenticated decryption and signature verification
/// report *that* they failed, never *why*, so callers cannot build padding- or
/// format-oracle side channels out of the error value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CryptoError {
    /// An AEAD ciphertext failed authentication (wrong key, tampered data,
    /// or truncated input).
    AeadAuthenticationFailed,
    /// A signature did not verify under the given public key.
    SignatureInvalid,
    /// An encoded group element or key had an invalid encoding.
    InvalidEncoding,
    /// An input had an invalid length for the requested operation.
    InvalidLength,
    /// A Diffie-Hellman exchange produced an all-zero (low-order) output.
    WeakSharedSecret,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AeadAuthenticationFailed => f.write_str("aead authentication failed"),
            CryptoError::SignatureInvalid => f.write_str("signature verification failed"),
            CryptoError::InvalidEncoding => f.write_str("invalid encoding"),
            CryptoError::InvalidLength => f.write_str("invalid input length"),
            CryptoError::WeakSharedSecret => f.write_str("weak diffie-hellman shared secret"),
        }
    }
}

impl Error for CryptoError {}
