//! Arithmetic modulo the Ed25519 group order
//! ℓ = 2^252 + 27742317777372353535851937790883648493.

/// ℓ as four little-endian 64-bit limbs.
const L: [u64; 4] = [
    0x5812_631a_5cf5_d3ed,
    0x14de_f9de_a2f7_9cd6,
    0x0000_0000_0000_0000,
    0x1000_0000_0000_0000,
];

/// A scalar in the range `[0, ℓ)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Scalar(pub(crate) [u64; 4]);

/// Compares two 4-limb little-endian values.
fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b`, assuming `a >= b`.
fn sub_in_place(a: &mut [u64; 4], b: &[u64; 4]) {
    let mut borrow = 0u64;
    for i in 0..4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 || b2) as u64;
    }
    debug_assert_eq!(borrow, 0, "sub_in_place underflow");
}

impl Scalar {
    /// The scalar 0.
    pub const ZERO: Scalar = Scalar([0; 4]);
    /// The scalar 1.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Builds a scalar from a small integer.
    #[must_use]
    pub fn from_u64(x: u64) -> Scalar {
        Scalar([x, 0, 0, 0])
    }

    /// Parses 32 little-endian bytes and reduces modulo ℓ.
    #[must_use]
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        }
        // Value < 2^256 < 16·ℓ, so a few conditional subtractions suffice.
        while geq(&limbs, &L) {
            sub_in_place(&mut limbs, &L);
        }
        Scalar(limbs)
    }

    /// Parses 32 little-endian bytes, requiring the canonical range
    /// `[0, ℓ)` (RFC 8032 verification rejects non-canonical `S`).
    #[must_use]
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        }
        if geq(&limbs, &L) {
            None
        } else {
            Some(Scalar(limbs))
        }
    }

    /// Reduces a 64-byte little-endian value modulo ℓ (for SHA-512
    /// outputs, RFC 8032).
    #[must_use]
    pub fn from_bytes_mod_order_wide(bytes: &[u8; 64]) -> Scalar {
        let mut wide = [0u64; 8];
        for (i, limb) in wide.iter_mut().enumerate() {
            *limb = u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        }
        Scalar(reduce_wide(wide))
    }

    /// Serializes to 32 little-endian bytes.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.0.iter().enumerate() {
            out[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        out
    }

    /// Addition modulo ℓ.
    #[must_use]
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        let mut limbs = [0u64; 4];
        let mut carry = 0u64;
        for (i, slot) in limbs.iter_mut().enumerate() {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            *slot = s2;
            carry = (c1 || c2) as u64;
        }
        debug_assert_eq!(carry, 0, "both operands < l, sum < 2^253 < 2^256");
        if geq(&limbs, &L) {
            sub_in_place(&mut limbs, &L);
        }
        Scalar(limbs)
    }

    /// Multiplication modulo ℓ.
    #[must_use]
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let v = wide[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                wide[i + j] = v as u64;
                carry = v >> 64;
            }
            wide[i + 4] = carry as u64;
        }
        Scalar(reduce_wide(wide))
    }

    /// `self * a + b mod ℓ` (the Ed25519 `S = r + k·s` computation).
    #[must_use]
    pub fn mul_add(&self, a: &Scalar, b: &Scalar) -> Scalar {
        self.mul(a).add(b)
    }

    /// Iterates the scalar's bits from most significant (bit 255) to least.
    pub fn bits_msb_first(&self) -> impl Iterator<Item = bool> + '_ {
        (0..256)
            .rev()
            .map(move |i| (self.0[i / 64] >> (i % 64)) & 1 == 1)
    }
}

/// Reduces a 512-bit little-endian value modulo ℓ via binary long
/// division. Variable-time, which is fine at handshake rate.
fn reduce_wide(mut x: [u64; 8]) -> [u64; 4] {
    // For shift = 259 down to 0, subtract (ℓ << shift) when possible.
    // 2^252 <= ℓ < 2^253 and x < 2^512, so shifts above 512 - 252 = 260
    // can never fit.
    for shift in (0..=259).rev() {
        let shifted = shl_512(&L, shift);
        if geq8(&x, &shifted) {
            sub8_in_place(&mut x, &shifted);
        }
    }
    debug_assert!(x[4..].iter().all(|&w| w == 0));
    [x[0], x[1], x[2], x[3]]
}

/// `value << shift` as a 512-bit number (drops bits above 2^512, which
/// cannot occur for ℓ << 259).
fn shl_512(value: &[u64; 4], shift: usize) -> [u64; 8] {
    let mut out = [0u64; 8];
    let limb_shift = shift / 64;
    let bit_shift = shift % 64;
    for (i, &limb) in value.iter().enumerate() {
        let target = i + limb_shift;
        if target < 8 {
            out[target] |= limb << bit_shift;
        }
        if bit_shift != 0 && target + 1 < 8 {
            out[target + 1] |= limb >> (64 - bit_shift);
        }
    }
    out
}

fn geq8(a: &[u64; 8], b: &[u64; 8]) -> bool {
    for i in (0..8).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

fn sub8_in_place(a: &mut [u64; 8], b: &[u64; 8]) {
    let mut borrow = 0u64;
    for i in 0..8 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 || b2) as u64;
    }
    debug_assert_eq!(borrow, 0, "sub8_in_place underflow");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ell_minus_one_plus_one_is_zero() {
        let mut l_minus_1 = L;
        l_minus_1[0] -= 1;
        let s = Scalar(l_minus_1);
        assert_eq!(s.add(&Scalar::ONE), Scalar::ZERO);
    }

    #[test]
    fn ell_reduces_to_zero() {
        let mut bytes = [0u8; 32];
        for (i, limb) in L.iter().enumerate() {
            bytes[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
        }
        assert_eq!(Scalar::from_bytes_mod_order(&bytes), Scalar::ZERO);
        assert!(Scalar::from_canonical_bytes(&bytes).is_none());
        bytes[0] -= 1; // l - 1 is canonical
        assert!(Scalar::from_canonical_bytes(&bytes).is_some());
    }

    #[test]
    fn small_multiplication() {
        let a = Scalar::from_u64(1_000_003);
        let b = Scalar::from_u64(999_983);
        let prod = a.mul(&b);
        assert_eq!(prod, Scalar::from_u64(1_000_003 * 999_983));
    }

    #[test]
    fn wide_reduction_matches_narrow() {
        // A value < l must be unchanged by wide reduction.
        let mut wide = [0u8; 64];
        wide[0] = 42;
        assert_eq!(
            Scalar::from_bytes_mod_order_wide(&wide),
            Scalar::from_u64(42)
        );
        // 2^256 mod l computed two ways: wide reduction of 2^256, and
        // (2^128 mod l)^2 mod l.
        let mut w = [0u8; 64];
        w[32] = 1; // 2^256
        let direct = Scalar::from_bytes_mod_order_wide(&w);
        let mut half = [0u8; 32];
        half[16] = 1; // 2^128 (< l, canonical)
        let h = Scalar::from_canonical_bytes(&half).expect("canonical");
        assert_eq!(direct, h.mul(&h));
    }

    #[test]
    fn ring_axioms_random() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut random_scalar = || -> Scalar {
            let b: [u8; 32] = rng.random();
            Scalar::from_bytes_mod_order(&b)
        };
        for _ in 0..25 {
            let a = random_scalar();
            let b = random_scalar();
            let c = random_scalar();
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            assert_eq!(a.add(&b), b.add(&a));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.mul(&Scalar::ONE), a);
            assert_eq!(a.add(&Scalar::ZERO), a);
        }
    }

    #[test]
    fn to_bytes_roundtrip() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for _ in 0..20 {
            let b: [u8; 32] = rng.random();
            let s = Scalar::from_bytes_mod_order(&b);
            assert_eq!(Scalar::from_bytes_mod_order(&s.to_bytes()), s);
        }
    }

    #[test]
    fn bits_iterate_msb_first() {
        let s = Scalar::from_u64(0b1011);
        let bits: Vec<bool> = s.bits_msb_first().collect();
        assert_eq!(bits.len(), 256);
        assert!(bits[..252].iter().all(|&b| !b));
        assert_eq!(&bits[252..], &[true, false, true, true]);
    }
}
