//! Arithmetic in GF(2^255 − 19) with five 51-bit limbs.

/// Mask selecting the low 51 bits of a limb.
const MASK51: u64 = (1u64 << 51) - 1;

/// An element of GF(2^255 − 19).
///
/// Representation: five 64-bit limbs holding 51 bits each (lazily
/// reduced). Arithmetic is variable-time, which matches the paper's threat
/// model (side channels out of scope, §III-B).
#[derive(Clone, Copy, Debug)]
pub struct FieldElement(pub(crate) [u64; 5]);

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0; 5]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0, 0]);

    /// Builds a field element from a small integer.
    #[must_use]
    pub fn from_u64(x: u64) -> FieldElement {
        let mut fe = FieldElement::ZERO;
        fe.0[0] = x & MASK51;
        fe.0[1] = x >> 51;
        fe
    }

    /// Parses 32 little-endian bytes, ignoring the top bit (RFC 7748
    /// convention).
    #[must_use]
    pub fn from_bytes(bytes: &[u8; 32]) -> FieldElement {
        let load = |range: std::ops::Range<usize>| -> u64 {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[range]);
            u64::from_le_bytes(word)
        };
        FieldElement([
            load(0..8) & MASK51,
            (load(6..14) >> 3) & MASK51,
            (load(12..20) >> 6) & MASK51,
            (load(19..27) >> 1) & MASK51,
            (load(24..32) >> 12) & MASK51,
        ])
    }

    /// Serializes to the canonical 32-byte little-endian encoding
    /// (fully reduced modulo p).
    #[must_use]
    pub fn to_bytes(self) -> [u8; 32] {
        let mut t = self.carried().carried();
        // Determine whether t >= p by propagating the +19 carry.
        let mut q = (t.0[0] + 19) >> 51;
        q = (t.0[1] + q) >> 51;
        q = (t.0[2] + q) >> 51;
        q = (t.0[3] + q) >> 51;
        q = (t.0[4] + q) >> 51;
        // Conditionally subtract p = 2^255 - 19: add 19q then drop bit 255.
        t.0[0] += 19 * q;
        let mut carry = t.0[0] >> 51;
        t.0[0] &= MASK51;
        for i in 1..5 {
            t.0[i] += carry;
            carry = t.0[i] >> 51;
            t.0[i] &= MASK51;
        }
        // carry (the would-be 2^255 bit) is discarded.

        let mut out = [0u8; 32];
        let limbs = t.0;
        let mut bit_offset = 0usize;
        for limb in limbs {
            for bit in 0..51 {
                let absolute = bit_offset + bit;
                if (limb >> bit) & 1 == 1 {
                    out[absolute / 8] |= 1 << (absolute % 8);
                }
            }
            bit_offset += 51;
        }
        out
    }

    /// One pass of carry propagation, folding the top carry back with
    /// factor 19. Output limbs fit in 52 bits.
    #[must_use]
    pub(crate) fn carried(self) -> FieldElement {
        let mut l = self.0;
        let mut carry: u64;
        for i in 0..4 {
            carry = l[i] >> 51;
            l[i] &= MASK51;
            l[i + 1] += carry;
        }
        carry = l[4] >> 51;
        l[4] &= MASK51;
        l[0] += carry * 19;
        FieldElement(l)
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, rhs: &FieldElement) -> FieldElement {
        let mut l = [0u64; 5];
        for (slot, (a, b)) in l.iter_mut().zip(self.0.iter().zip(rhs.0.iter())) {
            *slot = a + b;
        }
        FieldElement(l).carried()
    }

    /// Field subtraction (adds 8p before subtracting so no limb can
    /// underflow even when `rhs` is only lazily reduced, with limbs up to
    /// 2^52).
    #[must_use]
    pub fn sub(&self, rhs: &FieldElement) -> FieldElement {
        const EIGHT_P: [u64; 5] = [
            (1u64 << 54) - 152,
            (1u64 << 54) - 8,
            (1u64 << 54) - 8,
            (1u64 << 54) - 8,
            (1u64 << 54) - 8,
        ];
        let mut l = [0u64; 5];
        for (i, slot) in l.iter_mut().enumerate() {
            *slot = self.0[i] + EIGHT_P[i] - rhs.0[i];
        }
        FieldElement(l).carried()
    }

    /// Field negation.
    #[must_use]
    pub fn neg(&self) -> FieldElement {
        FieldElement::ZERO.sub(self)
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, rhs: &FieldElement) -> FieldElement {
        let a = &self.0;
        let b = &rhs.0;
        let m = |x: u64, y: u64| (x as u128) * (y as u128);
        let mut r = [0u128; 5];
        r[0] = m(a[0], b[0]) + 19 * (m(a[1], b[4]) + m(a[2], b[3]) + m(a[3], b[2]) + m(a[4], b[1]));
        r[1] = m(a[0], b[1]) + m(a[1], b[0]) + 19 * (m(a[2], b[4]) + m(a[3], b[3]) + m(a[4], b[2]));
        r[2] = m(a[0], b[2]) + m(a[1], b[1]) + m(a[2], b[0]) + 19 * (m(a[3], b[4]) + m(a[4], b[3]));
        r[3] = m(a[0], b[3]) + m(a[1], b[2]) + m(a[2], b[1]) + m(a[3], b[0]) + 19 * m(a[4], b[4]);
        r[4] = m(a[0], b[4]) + m(a[1], b[3]) + m(a[2], b[2]) + m(a[3], b[1]) + m(a[4], b[0]);

        // Carry the 128-bit accumulators down to 64-bit limbs.
        let mut l = [0u64; 5];
        let mut carry: u128 = 0;
        for i in 0..5 {
            let v = r[i] + carry;
            l[i] = (v as u64) & MASK51;
            carry = v >> 51;
        }
        // carry < 2^77-ish; fold back with factor 19 via u128 then carry once.
        let fold = carry * 19 + l[0] as u128;
        l[0] = (fold as u64) & MASK51;
        let mut c = (fold >> 51) as u64;
        for limb in l.iter_mut().skip(1) {
            let v = *limb + c;
            *limb = v & MASK51;
            c = v >> 51;
        }
        l[0] += c * 19;
        FieldElement(l)
    }

    /// Field squaring.
    #[must_use]
    pub fn square(&self) -> FieldElement {
        self.mul(self)
    }

    /// Exponentiation by an arbitrary little-endian exponent.
    #[must_use]
    pub fn pow_le_bytes(&self, exponent: &[u8]) -> FieldElement {
        let mut acc = FieldElement::ONE;
        for byte in exponent.iter().rev() {
            for bit in (0..8).rev() {
                acc = acc.square();
                if (byte >> bit) & 1 == 1 {
                    acc = acc.mul(self);
                }
            }
        }
        acc
    }

    /// Multiplicative inverse (of nonzero elements) via Fermat:
    /// `x^(p-2)`. The inverse of zero is zero.
    #[must_use]
    pub fn invert(&self) -> FieldElement {
        // p - 2 = 2^255 - 21.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xeb; // 0xff - 20
        exp[31] = 0x7f;
        self.pow_le_bytes(&exp)
    }

    /// `x^((p-5)/8)`, the core of the square-root computation.
    #[must_use]
    pub fn pow_p58(&self) -> FieldElement {
        // (p - 5) / 8 = 2^252 - 3.
        let mut exp = [0xffu8; 32];
        exp[0] = 0xfd;
        exp[31] = 0x0f;
        self.pow_le_bytes(&exp)
    }

    /// Whether the canonical encoding is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.to_bytes() == [0u8; 32]
    }

    /// Canonical equality.
    #[must_use]
    pub fn ct_equals(&self, other: &FieldElement) -> bool {
        self.to_bytes() == other.to_bytes()
    }

    /// The "sign" of the canonical encoding (its lowest bit), used for
    /// point compression.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.to_bytes()[0] & 1 == 1
    }

    /// sqrt(-1) mod p, i.e. 2^((p-1)/4).
    #[must_use]
    pub fn sqrt_m1() -> FieldElement {
        use std::sync::OnceLock;
        static SQRT_M1: OnceLock<[u64; 5]> = OnceLock::new();
        let limbs = SQRT_M1.get_or_init(|| {
            // (p - 1) / 4 = 2^253 - 5.
            let mut exp = [0xffu8; 32];
            exp[0] = 0xfb;
            exp[31] = 0x1f;
            FieldElement::from_u64(2).pow_le_bytes(&exp).0
        });
        FieldElement(*limbs)
    }

    /// Computes `sqrt(u/v)` if it exists.
    ///
    /// Returns `Some(x)` with `v * x^2 == u`, choosing the non-negative
    /// root; `None` if `u/v` is a non-residue.
    #[must_use]
    pub fn sqrt_ratio(u: &FieldElement, v: &FieldElement) -> Option<FieldElement> {
        // Candidate x = u * v^3 * (u * v^7)^((p-5)/8).
        let v3 = v.square().mul(v);
        let v7 = v3.square().mul(v);
        let mut x = u.mul(&v3).mul(&u.mul(&v7).pow_p58());
        let vx2 = v.mul(&x.square());
        if vx2.ct_equals(u) {
            // fallthrough
        } else if vx2.ct_equals(&u.neg()) {
            x = x.mul(&FieldElement::sqrt_m1());
        } else {
            return None;
        }
        if x.is_negative() {
            x = x.neg();
        }
        Some(x)
    }
}

impl PartialEq for FieldElement {
    fn eq(&self, other: &Self) -> bool {
        self.ct_equals(other)
    }
}

impl Eq for FieldElement {}

#[cfg(test)]
mod tests {
    use super::*;

    fn fe(x: u64) -> FieldElement {
        FieldElement::from_u64(x)
    }

    #[test]
    fn small_integer_arithmetic() {
        assert_eq!(fe(2).add(&fe(3)), fe(5));
        assert_eq!(fe(7).sub(&fe(3)), fe(4));
        assert_eq!(fe(6).mul(&fe(7)), fe(42));
        assert_eq!(fe(9).square(), fe(81));
    }

    #[test]
    fn subtraction_wraps_mod_p() {
        // 0 - 1 = p - 1, whose encoding ends with 0x7f.
        let m1 = fe(0).sub(&fe(1));
        let bytes = m1.to_bytes();
        assert_eq!(bytes[0], 0xec); // p - 1 = ...ec (2^255 - 20)
        assert_eq!(bytes[31], 0x7f);
        assert_eq!(m1.add(&fe(1)), fe(0));
    }

    #[test]
    fn p_encodes_as_zero() {
        // p = 2^255 - 19 must canonically encode to zero.
        let mut p_bytes = [0xffu8; 32];
        p_bytes[0] = 0xed;
        p_bytes[31] = 0x7f;
        let p = FieldElement::from_bytes(&p_bytes);
        assert!(p.is_zero());
        // Non-canonical p + 1 encodes as 1.
        let mut p1 = p_bytes;
        p1[0] = 0xee;
        assert_eq!(FieldElement::from_bytes(&p1), fe(1));
    }

    #[test]
    fn inverse() {
        for x in [1u64, 2, 3, 486662, 121665] {
            let inv = fe(x).invert();
            assert_eq!(fe(x).mul(&inv), FieldElement::ONE, "x = {x}");
        }
        // Inverse of zero is zero by convention.
        assert!(fe(0).invert().is_zero());
    }

    #[test]
    fn encode_decode_roundtrip() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let mut bytes: [u8; 32] = rng.random();
            bytes[31] &= 0x7f; // stay below 2^255
            let fe = FieldElement::from_bytes(&bytes);
            // Canonical values below p roundtrip exactly.
            let reencoded = FieldElement::from_bytes(&fe.to_bytes());
            assert_eq!(fe, reencoded);
        }
    }

    #[test]
    fn field_axioms_random() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut random_fe = || -> FieldElement {
            let mut b: [u8; 32] = rng.random();
            b[31] &= 0x7f;
            FieldElement::from_bytes(&b)
        };
        for _ in 0..25 {
            let a = random_fe();
            let b = random_fe();
            let c = random_fe();
            assert_eq!(a.mul(&b), b.mul(&a));
            assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
            assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
            assert_eq!(a.sub(&a), FieldElement::ZERO);
            assert_eq!(a.add(&b).sub(&b), a);
            if !a.is_zero() {
                assert_eq!(a.mul(&a.invert()), FieldElement::ONE);
            }
        }
    }

    #[test]
    fn sqrt_m1_squares_to_minus_one() {
        let i = FieldElement::sqrt_m1();
        assert_eq!(i.square(), fe(0).sub(&fe(1)));
    }

    #[test]
    fn sqrt_ratio_finds_roots() {
        // 4/1 has root 2 (the non-negative one).
        let r = FieldElement::sqrt_ratio(&fe(4), &fe(1)).expect("4 is a QR");
        assert!(r == fe(2) || r == fe(2).neg());
        assert!(!r.is_negative());
        // 2 is a non-residue mod p (p ≡ 5 mod 8), so sqrt(2) must fail.
        assert!(FieldElement::sqrt_ratio(&fe(2), &fe(1)).is_none());
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = fe(3);
        let mut acc = FieldElement::ONE;
        for _ in 0..13 {
            acc = acc.mul(&x);
        }
        assert_eq!(x.pow_le_bytes(&[13]), acc);
    }
}
