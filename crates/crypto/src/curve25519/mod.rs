//! Curve25519 arithmetic: the field GF(2^255 − 19), the scalar field
//! modulo the group order ℓ, and the twisted Edwards group used by
//! Ed25519.
//!
//! [`crate::ed25519`] (signatures for the PKI and TLS substrates) and
//! [`crate::x25519`] (ECDHE for the TLS handshake) build on this module.
//! The implementation favours auditability: 51-bit limbs with `u128`
//! products, a strongly unified Edwards addition law (also used for
//! doubling), and schoolbook scalar arithmetic with binary long division
//! for reduction. Handshake-rate operations do not need more speed.

pub mod edwards;
pub mod field;
pub mod scalar;

pub use edwards::EdwardsPoint;
pub use field::FieldElement;
pub use scalar::Scalar;
