//! The twisted Edwards curve −x² + y² = 1 + d·x²y² over GF(2^255 − 19)
//! (the Ed25519 group), in extended homogeneous coordinates.

use std::sync::OnceLock;

use super::field::FieldElement;
use super::scalar::Scalar;
use crate::CryptoError;

/// The curve constant d = −121665/121666.
fn d() -> &'static FieldElement {
    static D: OnceLock<FieldElement> = OnceLock::new();
    D.get_or_init(|| {
        FieldElement::from_u64(121665)
            .neg()
            .mul(&FieldElement::from_u64(121666).invert())
    })
}

/// 2d, used by the unified addition law.
fn d2() -> &'static FieldElement {
    static D2: OnceLock<FieldElement> = OnceLock::new();
    D2.get_or_init(|| {
        let d = d();
        d.add(d)
    })
}

/// A point on the Ed25519 curve in extended coordinates
/// (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.
#[derive(Clone, Copy, Debug)]
pub struct EdwardsPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
    t: FieldElement,
}

impl EdwardsPoint {
    /// The group identity (0, 1).
    #[must_use]
    pub fn identity() -> EdwardsPoint {
        EdwardsPoint {
            x: FieldElement::ZERO,
            y: FieldElement::ONE,
            z: FieldElement::ONE,
            t: FieldElement::ZERO,
        }
    }

    /// The Ed25519 base point B with y = 4/5 and even x.
    #[must_use]
    pub fn basepoint() -> EdwardsPoint {
        static B: OnceLock<EdwardsPoint> = OnceLock::new();
        *B.get_or_init(|| {
            let y = FieldElement::from_u64(4).mul(&FieldElement::from_u64(5).invert());
            let mut encoded = y.to_bytes();
            encoded[31] &= 0x7f; // sign bit 0: the even-x root
            EdwardsPoint::decompress(&encoded).expect("4/5 decompresses to the base point")
        })
    }

    /// Unified point addition (add-2008-hwcd-3 for a = −1); also valid for
    /// doubling.
    #[must_use]
    pub fn add(&self, other: &EdwardsPoint) -> EdwardsPoint {
        let a = self.y.sub(&self.x).mul(&other.y.sub(&other.x));
        let b = self.y.add(&self.x).mul(&other.y.add(&other.x));
        let c = self.t.mul(d2()).mul(&other.t);
        let dd = self.z.mul(&other.z);
        let dd = dd.add(&dd);
        let e = b.sub(&a);
        let f = dd.sub(&c);
        let g = dd.add(&c);
        let h = b.add(&a);
        EdwardsPoint {
            x: e.mul(&f),
            y: g.mul(&h),
            z: f.mul(&g),
            t: e.mul(&h),
        }
    }

    /// Point doubling (via the unified law, which is complete on this
    /// curve).
    #[must_use]
    pub fn double(&self) -> EdwardsPoint {
        self.add(self)
    }

    /// Point negation.
    #[must_use]
    pub fn neg(&self) -> EdwardsPoint {
        EdwardsPoint {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication (MSB-first double-and-add; variable time,
    /// acceptable under the paper's threat model).
    #[must_use]
    pub fn mul_scalar(&self, scalar: &Scalar) -> EdwardsPoint {
        let mut acc = EdwardsPoint::identity();
        for bit in scalar.bits_msb_first() {
            acc = acc.double();
            if bit {
                acc = acc.add(self);
            }
        }
        acc
    }

    /// `scalar * B` for the base point B.
    #[must_use]
    pub fn mul_base(scalar: &Scalar) -> EdwardsPoint {
        EdwardsPoint::basepoint().mul_scalar(scalar)
    }

    /// Compresses to the 32-byte encoding: little-endian y with the sign
    /// of x in the top bit.
    #[must_use]
    pub fn compress(&self) -> [u8; 32] {
        let zinv = self.z.invert();
        let x = self.x.mul(&zinv);
        let y = self.y.mul(&zinv);
        let mut out = y.to_bytes();
        if x.is_negative() {
            out[31] |= 0x80;
        }
        out
    }

    /// Decompresses a 32-byte encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidEncoding`] if the y-coordinate does
    /// not correspond to a curve point or the sign bit asks for the zero
    /// x-coordinate's negation.
    pub fn decompress(bytes: &[u8; 32]) -> Result<EdwardsPoint, CryptoError> {
        let sign = bytes[31] >> 7 == 1;
        let y = FieldElement::from_bytes(bytes);
        // x^2 = (y^2 - 1) / (d y^2 + 1)
        let yy = y.square();
        let u = yy.sub(&FieldElement::ONE);
        let v = yy.mul(d()).add(&FieldElement::ONE);
        let mut x = FieldElement::sqrt_ratio(&u, &v).ok_or(CryptoError::InvalidEncoding)?;
        if sign {
            if x.is_zero() {
                return Err(CryptoError::InvalidEncoding);
            }
            x = x.neg();
        }
        Ok(EdwardsPoint {
            x,
            y,
            z: FieldElement::ONE,
            t: x.mul(&y),
        })
    }

    /// Whether this is the group identity.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        // x/z == 0 and y/z == 1  <=>  x == 0 and y == z.
        self.x.is_zero() && self.y.ct_equals(&self.z)
    }

    /// Checks the curve equation in extended coordinates (used by tests
    /// and point validation).
    #[must_use]
    pub fn is_on_curve(&self) -> bool {
        // (-X^2 + Y^2) Z^2 == Z^4 + d X^2 Y^2  and  T Z == X Y.
        let xx = self.x.square();
        let yy = self.y.square();
        let zz = self.z.square();
        let lhs = yy.sub(&xx).mul(&zz);
        let rhs = zz.square().add(&d().mul(&xx).mul(&yy));
        lhs.ct_equals(&rhs) && self.t.mul(&self.z).ct_equals(&self.x.mul(&self.y))
    }
}

impl PartialEq for EdwardsPoint {
    fn eq(&self, other: &Self) -> bool {
        // Projective equality: X1 Z2 == X2 Z1 and Y1 Z2 == Y2 Z1.
        self.x.mul(&other.z).ct_equals(&other.x.mul(&self.z))
            && self.y.mul(&other.z).ct_equals(&other.y.mul(&self.z))
    }
}

impl Eq for EdwardsPoint {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basepoint_is_on_curve() {
        assert!(EdwardsPoint::basepoint().is_on_curve());
        assert!(EdwardsPoint::identity().is_on_curve());
    }

    #[test]
    fn identity_laws() {
        let b = EdwardsPoint::basepoint();
        let id = EdwardsPoint::identity();
        assert_eq!(b.add(&id), b);
        assert_eq!(id.add(&b), b);
        assert_eq!(b.add(&b.neg()), id);
        assert!(id.is_identity());
        assert!(!b.is_identity());
    }

    #[test]
    fn addition_is_commutative_and_associative() {
        let b = EdwardsPoint::basepoint();
        let p2 = b.double();
        let p3 = p2.add(&b);
        assert_eq!(b.add(&p2), p2.add(&b));
        assert_eq!(b.add(&p2).add(&p3), b.add(&p2.add(&p3)));
        assert!(p2.is_on_curve());
        assert!(p3.is_on_curve());
    }

    #[test]
    fn scalar_mul_matches_repeated_addition() {
        let b = EdwardsPoint::basepoint();
        let mut acc = EdwardsPoint::identity();
        for k in 0u64..8 {
            assert_eq!(b.mul_scalar(&Scalar::from_u64(k)), acc, "k = {k}");
            acc = acc.add(&b);
        }
    }

    #[test]
    fn basepoint_has_order_ell() {
        // l * B == identity, (l - 1) * B == -B.
        let b = EdwardsPoint::basepoint();
        let l_minus_1 = Scalar::ZERO.add(&Scalar::ONE).mul(&Scalar::ZERO).add(
            // l - 1 = -1 mod l: build it as 0 - 1 via from_bytes_mod_order
            // of l - 1's encoding. Simpler: compute below.
            &Scalar::ZERO,
        );
        let _ = l_minus_1;
        // -1 mod l: l - 1. Construct via wide reduction of (l - 1).
        let minus_one = {
            let mut wide = [0u8; 64];
            // l - 1 little-endian
            let l_bytes: [u64; 4] = [
                0x5812_631a_5cf5_d3ec,
                0x14de_f9de_a2f7_9cd6,
                0,
                0x1000_0000_0000_0000,
            ];
            for (i, limb) in l_bytes.iter().enumerate() {
                wide[8 * i..8 * i + 8].copy_from_slice(&limb.to_le_bytes());
            }
            Scalar::from_bytes_mod_order_wide(&wide)
        };
        assert_eq!(b.mul_scalar(&minus_one), b.neg());
        assert_eq!(b.mul_scalar(&minus_one).add(&b), EdwardsPoint::identity());
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let b = EdwardsPoint::basepoint();
        for k in [1u64, 2, 3, 7, 1000, 123_456_789] {
            let p = b.mul_scalar(&Scalar::from_u64(k));
            let enc = p.compress();
            let q = EdwardsPoint::decompress(&enc).expect("valid encoding");
            assert_eq!(p, q, "k = {k}");
            assert_eq!(q.compress(), enc);
        }
    }

    #[test]
    fn known_basepoint_encoding() {
        // The standard Ed25519 basepoint compresses to 0x58666666...66
        // (y = 4/5 = 0x6666...6658 little-endian, sign bit 0).
        let enc = EdwardsPoint::basepoint().compress();
        assert_eq!(enc[0], 0x58);
        assert!(enc[1..31].iter().all(|&b| b == 0x66));
        assert_eq!(enc[31], 0x66);
    }

    #[test]
    fn decompress_rejects_invalid() {
        // y = 2 gives x^2 = 3/(4d+1); craft a y that is not on the curve.
        // Try a few small ys and count failures — at least one must fail
        // (about half of all ys are invalid).
        let mut failures = 0;
        for y in 0u64..16 {
            let mut enc = FieldElement::from_u64(y).to_bytes();
            enc[31] &= 0x7f;
            if EdwardsPoint::decompress(&enc).is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0, "no invalid encodings among small ys");
    }

    #[test]
    fn scalar_mul_distributes_over_add() {
        let b = EdwardsPoint::basepoint();
        let a = Scalar::from_u64(123_456);
        let c = Scalar::from_u64(654_321);
        let lhs = b.mul_scalar(&a.add(&c));
        let rhs = b.mul_scalar(&a).add(&b.mul_scalar(&c));
        assert_eq!(lhs, rhs);
    }
}
