//! AES-128/192/256 block cipher (FIPS 197).
//!
//! Encryption uses the classic 32-bit T-table formulation for throughput
//! (file contents stream through AES-GCM in the trusted file manager);
//! decryption uses a straightforward byte-wise inverse cipher since GCM
//! only ever needs the forward direction. The S-box and tables are derived
//! programmatically and pinned by FIPS 197 known-answer tests.

use std::sync::OnceLock;

use crate::CryptoError;

/// Block size in bytes.
pub const BLOCK_LEN: usize = 16;

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    /// The four round tables: `te[i]` is `te[0]` rotated right by `8*i`.
    te: [[u32; 256]; 4],
}

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// GF(2^8) multiplication with the AES reduction polynomial.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        // Generate the S-box from its algebraic definition: multiplicative
        // inverse in GF(2^8) followed by the affine transform. The loop
        // walks generator powers (p = 3^i) alongside inverse powers
        // (q = 3^-i), so q is always p's inverse.
        let mut sbox = [0u8; 256];
        sbox[0] = 0x63;
        let mut p: u8 = 1;
        let mut q: u8 = 1;
        loop {
            p = p ^ (p << 1) ^ (if p & 0x80 != 0 { 0x1b } else { 0 });
            q ^= q << 1;
            q ^= q << 2;
            q ^= q << 4;
            if q & 0x80 != 0 {
                q ^= 0x09;
            }
            let xformed =
                q ^ q.rotate_left(1) ^ q.rotate_left(2) ^ q.rotate_left(3) ^ q.rotate_left(4);
            sbox[p as usize] = xformed ^ 0x63;
            if p == 1 {
                break;
            }
        }
        let mut inv_sbox = [0u8; 256];
        for (i, &s) in sbox.iter().enumerate() {
            inv_sbox[s as usize] = i as u8;
        }
        // Te0[x] packs the MixColumns contribution of an S-boxed byte:
        // bytes (2s, s, s, 3s) big-endian; Te1..Te3 are byte rotations,
        // precomputed so the round loop is pure lookups and XORs.
        let mut te = [[0u32; 256]; 4];
        for i in 0..256 {
            let s = sbox[i];
            let s2 = xtime(s);
            let s3 = s2 ^ s;
            let t0 = u32::from_be_bytes([s2, s, s, s3]);
            te[0][i] = t0;
            te[1][i] = t0.rotate_right(8);
            te[2][i] = t0.rotate_right(16);
            te[3][i] = t0.rotate_right(24);
        }
        Tables { sbox, inv_sbox, te }
    })
}

/// Supported AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    fn key_words(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }
}

/// An expanded AES key, usable for block encryption and decryption.
///
/// # Examples
///
/// ```
/// use seg_crypto::aes::Aes;
///
/// # fn main() -> Result<(), seg_crypto::CryptoError> {
/// let aes = Aes::new(&[0u8; 16])?;
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Aes {
    round_keys: Vec<u32>,
    rounds: usize,
}

impl std::fmt::Debug for Aes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes").field("rounds", &self.rounds).finish()
    }
}

impl Aes {
    /// Expands `key` (16, 24, or 32 bytes).
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::InvalidLength`] for any other key length.
    pub fn new(key: &[u8]) -> Result<Self, CryptoError> {
        let size = match key.len() {
            16 => KeySize::Aes128,
            24 => KeySize::Aes192,
            32 => KeySize::Aes256,
            _ => return Err(CryptoError::InvalidLength),
        };
        let t = tables();
        let nk = size.key_words();
        let rounds = size.rounds();
        let total_words = 4 * (rounds + 1);
        let mut w = Vec::with_capacity(total_words);
        for chunk in key.chunks_exact(4) {
            w.push(u32::from_be_bytes(chunk.try_into().expect("4 bytes")));
        }
        let mut rcon: u8 = 1;
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = sub_word(t, temp.rotate_left(8)) ^ ((rcon as u32) << 24);
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(t, temp);
            }
            w.push(w[i - nk] ^ temp);
        }
        Ok(Aes {
            round_keys: w,
            rounds,
        })
    }

    /// Encrypts one 16-byte block.
    #[must_use]
    pub fn encrypt_block(&self, block: [u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let t = tables();
        let rk = &self.round_keys;
        let mut s = [0u32; 4];
        for (j, word) in s.iter_mut().enumerate() {
            *word =
                u32::from_be_bytes(block[4 * j..4 * j + 4].try_into().expect("4 bytes")) ^ rk[j];
        }
        let te = &t.te;
        for round in 1..self.rounds {
            let mut next = [0u32; 4];
            for (j, slot) in next.iter_mut().enumerate() {
                let a0 = (s[j] >> 24) as usize;
                let a1 = ((s[(j + 1) % 4] >> 16) & 0xff) as usize;
                let a2 = ((s[(j + 2) % 4] >> 8) & 0xff) as usize;
                let a3 = (s[(j + 3) % 4] & 0xff) as usize;
                *slot = te[0][a0] ^ te[1][a1] ^ te[2][a2] ^ te[3][a3] ^ rk[4 * round + j];
            }
            s = next;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey.
        let mut out = [0u8; BLOCK_LEN];
        for j in 0..4 {
            let b0 = t.sbox[(s[j] >> 24) as usize];
            let b1 = t.sbox[((s[(j + 1) % 4] >> 16) & 0xff) as usize];
            let b2 = t.sbox[((s[(j + 2) % 4] >> 8) & 0xff) as usize];
            let b3 = t.sbox[(s[(j + 3) % 4] & 0xff) as usize];
            let word = u32::from_be_bytes([b0, b1, b2, b3]) ^ rk[4 * self.rounds + j];
            out[4 * j..4 * j + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Decrypts one 16-byte block.
    #[must_use]
    pub fn decrypt_block(&self, block: [u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
        let t = tables();
        let mut state = block;
        self.add_round_key(&mut state, self.rounds);
        for round in (1..self.rounds).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(t, &mut state);
            self.add_round_key(&mut state, round);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(t, &mut state);
        self.add_round_key(&mut state, 0);
        state
    }

    fn add_round_key(&self, state: &mut [u8; BLOCK_LEN], round: usize) {
        for j in 0..4 {
            let word = self.round_keys[4 * round + j].to_be_bytes();
            for r in 0..4 {
                state[4 * j + r] ^= word[r];
            }
        }
    }
}

fn sub_word(t: &Tables, w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        t.sbox[b[0] as usize],
        t.sbox[b[1] as usize],
        t.sbox[b[2] as usize],
        t.sbox[b[3] as usize],
    ])
}

fn inv_sub_bytes(t: &Tables, state: &mut [u8; BLOCK_LEN]) {
    for b in state.iter_mut() {
        *b = t.inv_sbox[*b as usize];
    }
}

/// Inverse ShiftRows: row `r` rotates right by `r` positions.
/// Byte layout: `state[4*col + row]`.
fn inv_shift_rows(state: &mut [u8; BLOCK_LEN]) {
    let old = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[4 * col + row] = old[4 * ((col + 4 - row) % 4) + row];
        }
    }
}

fn inv_mix_columns(state: &mut [u8; BLOCK_LEN]) {
    for col in 0..4 {
        let a0 = state[4 * col];
        let a1 = state[4 * col + 1];
        let a2 = state[4 * col + 2];
        let a3 = state[4 * col + 3];
        state[4 * col] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        state[4 * col + 1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        state[4 * col + 2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        state[4 * col + 3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex");
        }
        out
    }

    #[test]
    fn sbox_known_entries() {
        let t = tables();
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.inv_sbox[0x63], 0x00);
        // S-box must be a permutation.
        let mut seen = [false; 256];
        for &s in t.sbox.iter() {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
    }

    // FIPS 197 Appendix C.1.
    #[test]
    fn fips197_aes128() {
        let key: Vec<u8> = (0u8..16).collect();
        let pt = unhex16("00112233445566778899aabbccddeeff");
        let aes = Aes::new(&key).expect("valid key");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, unhex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    // FIPS 197 Appendix C.2.
    #[test]
    fn fips197_aes192() {
        let key: Vec<u8> = (0u8..24).collect();
        let pt = unhex16("00112233445566778899aabbccddeeff");
        let aes = Aes::new(&key).expect("valid key");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, unhex16("dda97ca4864cdfe06eaf70a0ec0d7191"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    // FIPS 197 Appendix C.3.
    #[test]
    fn fips197_aes256() {
        let key: Vec<u8> = (0u8..32).collect();
        let pt = unhex16("00112233445566778899aabbccddeeff");
        let aes = Aes::new(&key).expect("valid key");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, unhex16("8ea2b7ca516745bfeafc49904b496089"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn rejects_bad_key_lengths() {
        for len in [0usize, 1, 15, 17, 23, 25, 31, 33, 64] {
            assert_eq!(
                Aes::new(&vec![0u8; len]).unwrap_err(),
                CryptoError::InvalidLength,
                "len {len}"
            );
        }
    }

    #[test]
    fn roundtrip_random_blocks() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for key_len in [16usize, 24, 32] {
            let mut key = vec![0u8; key_len];
            rng.fill(&mut key[..]);
            let aes = Aes::new(&key).expect("valid key");
            for _ in 0..50 {
                let block: [u8; 16] = rng.random();
                assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
            }
        }
    }

    #[test]
    fn gmul_matches_known_products() {
        assert_eq!(gmul(0x57, 0x83), 0xc1);
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xff), 0);
    }

    #[test]
    fn debug_does_not_leak_key() {
        let aes = Aes::new(&[0u8; 16]).expect("valid key");
        let dbg = format!("{aes:?}");
        assert!(dbg.contains("rounds"));
        assert!(!dbg.contains("round_keys"));
    }
}
