//! Shared helpers for the SeGShare benchmark harness (see the `bin`
//! targets and `benches/`).
pub mod harness;
pub mod json;
