//! Minimal recursive-descent JSON parser — just enough to read the
//! committed perf baseline back in (`results/bench_baseline.json`),
//! keeping the harness zero-dependency like `seg-obs`'s encoders.
//!
//! Supports the full JSON value grammar except `\u` escapes beyond
//! what the baseline writer emits (the writer only produces
//! `[a-z0-9_./ ]` keys and plain numbers, so this is ample headroom).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64; the baseline stores seconds).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object's entries, if an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        _ => return Err(self.err("unsupported escape")),
                    });
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_baseline_shaped_document() {
        let doc = r#"{
  "gcm_mbps": 123.4,
  "ops": {
    "upload_1m": {"norm_mean_s": 0.0123, "ci95_s": 0.0004},
    "download_1m": {"norm_mean_s": 0.01, "ci95_s": 0.0}
  }
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("gcm_mbps").unwrap().as_f64(), Some(123.4));
        let up = v.get("ops").unwrap().get("upload_1m").unwrap();
        assert_eq!(up.get("norm_mean_s").unwrap().as_f64(), Some(0.0123));
        assert_eq!(v.get("ops").unwrap().as_obj().unwrap().len(), 2);
    }

    #[test]
    fn parses_scalars_arrays_and_escapes() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(
            parse(r#""a\"b\n""#).unwrap(),
            Json::Str("a\"b\n".to_string())
        );
        assert_eq!(
            parse("[1, 2, [3]]").unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Arr(vec![Json::Num(3.0)])
            ])
        );
        assert_eq!(parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "1 2", "tru", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn roundtrips_seg_obs_snapshot_json() {
        // The gate parses seg-obs's hand-rolled encoder output; make
        // sure the two stay compatible.
        let r = seg_obs::Registry::new();
        r.counter("seg_frames_total").add(3);
        r.histogram("seg_pfs_encrypt_ns").record(1000);
        let v = parse(&r.snapshot().to_json()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("seg_frames_total")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }
}
