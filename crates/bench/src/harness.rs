//! Shared plumbing for the table/figure regenerators.

use std::sync::Arc;
use std::time::{Duration, Instant};

use seg_net::simwan::WanProfile;
use seg_store::{MemStore, ObjectStore, StoreError};
use segshare::{Client, EnclaveConfig, EnrolledUser, FsoSetup, SegShareServer};

/// The AES-GCM throughput the paper's server hardware sustains
/// (AES-NI + PCLMUL on a Xeon E-2176G, conservatively 2 GB/s). Used to
/// produce the hardware-normalized latency column: this reproduction's
/// pure-Rust GCM runs ~10–20× slower than AES-NI, and at 100 MB+ sizes
/// crypto is the dominant processing term.
pub const HW_GCM_MBPS: f64 = 2000.0;

/// Mean and spread of repeated measurements.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Mean seconds (warm-up excluded).
    pub mean_s: f64,
    /// Sample standard deviation in seconds.
    pub sd_s: f64,
    /// Number of runs (excluding warm-up).
    pub runs: usize,
    /// The discarded warm-up iteration's own time in seconds —
    /// reported separately so it can be inspected, never mixed into
    /// `mean_s`/`sd_s`.
    pub warmup_s: f64,
}

impl Measured {
    /// Half-width of the 95 % confidence interval (normal
    /// approximation, matching the paper's error bars).
    #[must_use]
    pub fn ci95_s(&self) -> f64 {
        if self.runs < 2 {
            return 0.0;
        }
        1.96 * self.sd_s / (self.runs as f64).sqrt()
    }
}

/// Times `runs` executions of `f`, after one warm-up iteration that is
/// timed but *discarded* (reported as [`Measured::warmup_s`]) — cold
/// caches, lazy initialization, and first-touch page faults land there
/// instead of skewing the mean.
pub fn measure<F: FnMut()>(runs: usize, mut f: F) -> Measured {
    let warmup_start = Instant::now();
    f(); // warm-up: timed, excluded from the samples
    let warmup_s = warmup_start.elapsed().as_secs_f64();
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    Measured {
        mean_s: mean,
        sd_s: var.sqrt(),
        runs,
        warmup_s,
    }
}

/// Measures the local software GCM throughput (MB/s) to calibrate the
/// hardware-normalized column.
#[must_use]
pub fn local_gcm_mbps() -> f64 {
    let gcm = seg_crypto::gcm::Gcm::new(&[7u8; 16]).expect("valid key");
    let data = vec![0u8; 32 * 1024 * 1024];
    let iv = [1u8; 12];
    let start = Instant::now();
    let sealed = gcm.seal(&iv, b"", &data);
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&sealed);
    32.0 / elapsed
}

/// Scales a measured processing time to what AES-NI-class hardware
/// would take, assuming the processing is crypto-dominated (true for
/// multi-megabyte transfers).
#[must_use]
pub fn normalize_processing(measured_s: f64, local_mbps: f64) -> f64 {
    measured_s * (local_mbps / HW_GCM_MBPS)
}

/// An [`ObjectStore`] wrapper that sleeps before every backend
/// round-trip, modeling the paper's deployment where the enclave talks
/// to a *remote* store (§VI runs against Azure blob storage across
/// regions). In-memory stores answer in nanoseconds, which hides the
/// one effect fine-grained locking exists to exploit: store latency
/// under one object's lock can overlap store latency under another's.
/// The concurrency workloads in `perf_gate` use this wrapper so the
/// scaling curve measures lock overlap, not host core count — threads
/// blocked in simulated store I/O release the CPU, so the curve is
/// meaningful even on a single-core CI runner.
pub struct LatencyStore {
    inner: MemStore,
    delay: Duration,
}

impl LatencyStore {
    /// Wraps a fresh [`MemStore`] adding `delay` per get/put/delete/
    /// exists round-trip. Listing (used by restart recovery, not the
    /// request path) is left fast so setup stays cheap.
    #[must_use]
    pub fn new(delay: Duration) -> LatencyStore {
        LatencyStore {
            inner: MemStore::new(),
            delay,
        }
    }

    fn roundtrip(&self) {
        std::thread::sleep(self.delay);
    }
}

impl ObjectStore for LatencyStore {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.roundtrip();
        self.inner.get(key)
    }
    fn get_arc(&self, key: &str) -> Result<Option<Arc<[u8]>>, StoreError> {
        self.roundtrip();
        self.inner.get_arc(key)
    }
    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        self.roundtrip();
        self.inner.put(key, value)
    }
    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        self.roundtrip();
        self.inner.delete(key)
    }
    fn exists(&self, key: &str) -> Result<bool, StoreError> {
        self.roundtrip();
        self.inner.exists(key)
    }
    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.inner.list()
    }
}

/// Reactor sizing for latency-bound rigs: the [`LatencyStore`] /
/// simulated-fsync workloads spend their time waiting on the store,
/// not on enclave CPU, so the worker pool must cover the benchmark's
/// session fan-out (up to 8 concurrent sessions) or the pool itself
/// becomes the bottleneck under measurement. The threaded front end
/// gets this for free (one thread per session); this keeps the two
/// front ends comparable. Operational deployments with slow backends
/// should size `workers` the same way (see OPERATIONS.md).
fn latency_bound_reactor() -> seg_net::reactor::ReactorConfig {
    seg_net::reactor::ReactorConfig {
        workers: 16,
        ..seg_net::reactor::ReactorConfig::default()
    }
}

/// A ready-to-use deployment: server plus an enrolled user.
pub struct Rig {
    /// The setup context (CA, stores, platform).
    pub setup: FsoSetup,
    /// The running server.
    pub server: SegShareServer,
    /// An enrolled user.
    pub alice: EnrolledUser,
}

impl Rig {
    /// Builds an in-memory deployment with `config`.
    #[must_use]
    pub fn new(config: EnclaveConfig) -> Rig {
        let setup = FsoSetup::new_in_memory("bench-ca", config);
        let server = setup.server().expect("setup succeeds");
        let alice = setup
            .enroll_user("alice", "alice@bench", "Alice")
            .expect("enroll succeeds");
        Rig {
            setup,
            server,
            alice,
        }
    }

    /// Builds a deployment over a fresh write-ahead-logged store in
    /// `dir` with `wal` tuning — the rig for the durability workloads
    /// (group commit vs per-operation fsync).
    #[must_use]
    pub fn with_wal(
        config: EnclaveConfig,
        dir: impl AsRef<std::path::Path>,
        wal: seg_store::WalConfig,
    ) -> Rig {
        let setup = FsoSetup::new_wal_with("bench-ca", config, seg_sgx::Platform::new(), dir, wal)
            .expect("wal store opens");
        let server = setup.server().expect("setup succeeds");
        server.set_reactor_config(latency_bound_reactor());
        let alice = setup
            .enroll_user("alice", "alice@bench", "Alice")
            .expect("enroll succeeds");
        Rig {
            setup,
            server,
            alice,
        }
    }

    /// Builds a deployment whose three stores each add `delay` per
    /// round-trip (see [`LatencyStore`]) — the rig for the concurrency
    /// scaling workloads.
    #[must_use]
    pub fn with_store_latency(config: EnclaveConfig, delay: Duration) -> Rig {
        let setup = FsoSetup::with_stores(
            "bench-ca",
            config,
            seg_sgx::Platform::new(),
            Arc::new(LatencyStore::new(delay)),
            Arc::new(LatencyStore::new(delay)),
            Arc::new(LatencyStore::new(delay)),
        );
        let server = setup.server().expect("setup succeeds");
        server.set_reactor_config(latency_bound_reactor());
        let alice = setup
            .enroll_user("alice", "alice@bench", "Alice")
            .expect("enroll succeeds");
        Rig {
            setup,
            server,
            alice,
        }
    }

    /// Connects a fresh client session for `alice`.
    #[must_use]
    pub fn client(&self) -> Client<seg_net::ChannelTransport> {
        self.server
            .connect_local(&self.alice)
            .expect("local connect succeeds")
    }
}

/// Prints the telemetry sidecar for a server run: per-operation latency
/// quantiles, enclave-boundary crossings, and per-store byte totals
/// from the server's [`SegShareServer::metrics_snapshot`].
///
/// Cumulative since boot — prefer [`print_metrics_sidecar_since`] with
/// a baseline snapshot taken after warmup/prefill, so the sidecar
/// describes only the measured window.
pub fn print_metrics_sidecar(server: &SegShareServer) {
    print_metrics_sidecar_since(server, None);
}

/// Like [`print_metrics_sidecar`], but windowed: when `since` is given,
/// every counter and histogram is differenced against it
/// ([`seg_obs::Snapshot::delta`]), so warmup and prefill traffic done
/// before the baseline snapshot does not pollute the reported
/// quantiles or byte totals.
pub fn print_metrics_sidecar_since(server: &SegShareServer, since: Option<&seg_obs::Snapshot>) {
    let now = server.metrics_snapshot();
    let (snap, label) = match since {
        Some(base) => (now.delta(base), "windowed"),
        None => (now, "cumulative"),
    };
    println!("  -- metrics sidecar ({label}) --");
    for (id, h) in &snap.histograms {
        if id.name() != "seg_request_latency_ns" || h.count == 0 {
            continue;
        }
        let op = id.labels().first().map(|&(_, v)| v).unwrap_or("?");
        println!(
            "  {:<14} n={:<7} p50={:<12} p95={:<12} p99={}",
            op,
            h.count,
            fmt_s(h.p50 as f64 * 1e-9),
            fmt_s(h.p95 as f64 * 1e-9),
            fmt_s(h.p99 as f64 * 1e-9),
        );
    }
    println!(
        "  boundary: {} ecalls, {} ocalls",
        snap.counter("seg_boundary_ecalls_total").unwrap_or(0),
        snap.counter("seg_boundary_ocalls_total").unwrap_or(0),
    );
    for store in ["content", "group", "dedup"] {
        let read = snap
            .counter(&format!("seg_store_bytes_read_total{{store=\"{store}\"}}"))
            .unwrap_or(0);
        let written = snap
            .counter(&format!(
                "seg_store_bytes_written_total{{store=\"{store}\"}}"
            ))
            .unwrap_or(0);
        if read > 0 || written > 0 {
            println!("  store {store}: {read} B read, {written} B written");
        }
    }
    let emitted = snap.counter("seg_trace_events_total").unwrap_or(0);
    let dropped = snap.counter("seg_trace_dropped_total").unwrap_or(0);
    let audited = snap.counter("seg_audit_records_total").unwrap_or(0);
    let audit_bytes = snap.counter("seg_audit_bytes_total").unwrap_or(0);
    println!(
        "  trace: {emitted} events ({dropped} dropped), {} slow; audit: {audited} records, {audit_bytes} B",
        server.slow_requests(usize::MAX).len(),
    );
}

/// The WAN used by every figure (the paper's two-region testbed).
#[must_use]
pub fn wan() -> WanProfile {
    WanProfile::azure_two_region()
}

/// Formats seconds as the paper does (s with two decimals, or ms).
#[must_use]
pub fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1000.0)
    }
}

/// Simple `--flag value` argument lookup.
#[must_use]
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
#[must_use]
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}
