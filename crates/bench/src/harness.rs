//! Shared plumbing for the table/figure regenerators.

use std::time::Instant;

use seg_net::simwan::WanProfile;
use segshare::{Client, EnclaveConfig, EnrolledUser, FsoSetup, SegShareServer};

/// The AES-GCM throughput the paper's server hardware sustains
/// (AES-NI + PCLMUL on a Xeon E-2176G, conservatively 2 GB/s). Used to
/// produce the hardware-normalized latency column: this reproduction's
/// pure-Rust GCM runs ~10–20× slower than AES-NI, and at 100 MB+ sizes
/// crypto is the dominant processing term.
pub const HW_GCM_MBPS: f64 = 2000.0;

/// Mean and spread of repeated measurements.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Mean seconds.
    pub mean_s: f64,
    /// Sample standard deviation in seconds.
    pub sd_s: f64,
    /// Number of runs.
    pub runs: usize,
}

impl Measured {
    /// Half-width of the 95 % confidence interval (normal
    /// approximation, matching the paper's error bars).
    #[must_use]
    pub fn ci95_s(&self) -> f64 {
        if self.runs < 2 {
            return 0.0;
        }
        1.96 * self.sd_s / (self.runs as f64).sqrt()
    }
}

/// Times `runs` executions of `f` (one warm-up first).
pub fn measure<F: FnMut()>(runs: usize, mut f: F) -> Measured {
    f(); // warm-up
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64
    } else {
        0.0
    };
    Measured {
        mean_s: mean,
        sd_s: var.sqrt(),
        runs,
    }
}

/// Measures the local software GCM throughput (MB/s) to calibrate the
/// hardware-normalized column.
#[must_use]
pub fn local_gcm_mbps() -> f64 {
    let gcm = seg_crypto::gcm::Gcm::new(&[7u8; 16]).expect("valid key");
    let data = vec![0u8; 32 * 1024 * 1024];
    let iv = [1u8; 12];
    let start = Instant::now();
    let sealed = gcm.seal(&iv, b"", &data);
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&sealed);
    32.0 / elapsed
}

/// Scales a measured processing time to what AES-NI-class hardware
/// would take, assuming the processing is crypto-dominated (true for
/// multi-megabyte transfers).
#[must_use]
pub fn normalize_processing(measured_s: f64, local_mbps: f64) -> f64 {
    measured_s * (local_mbps / HW_GCM_MBPS)
}

/// A ready-to-use deployment: server plus an enrolled user.
pub struct Rig {
    /// The setup context (CA, stores, platform).
    pub setup: FsoSetup,
    /// The running server.
    pub server: SegShareServer,
    /// An enrolled user.
    pub alice: EnrolledUser,
}

impl Rig {
    /// Builds an in-memory deployment with `config`.
    #[must_use]
    pub fn new(config: EnclaveConfig) -> Rig {
        let setup = FsoSetup::new_in_memory("bench-ca", config);
        let server = setup.server().expect("setup succeeds");
        let alice = setup
            .enroll_user("alice", "alice@bench", "Alice")
            .expect("enroll succeeds");
        Rig {
            setup,
            server,
            alice,
        }
    }

    /// Connects a fresh client session for `alice`.
    #[must_use]
    pub fn client(&self) -> Client<seg_net::ChannelTransport> {
        self.server
            .connect_local(&self.alice)
            .expect("local connect succeeds")
    }
}

/// Prints the telemetry sidecar for a server run: per-operation latency
/// quantiles, enclave-boundary crossings, and per-store byte totals
/// from the server's [`SegShareServer::metrics_snapshot`].
pub fn print_metrics_sidecar(server: &SegShareServer) {
    let snap = server.metrics_snapshot();
    println!("  -- metrics sidecar --");
    for (id, h) in &snap.histograms {
        if id.name() != "seg_request_latency_ns" {
            continue;
        }
        let op = id.labels().first().map(|&(_, v)| v).unwrap_or("?");
        println!(
            "  {:<14} n={:<7} p50={:<12} p95={:<12} p99={}",
            op,
            h.count,
            fmt_s(h.p50 as f64 * 1e-9),
            fmt_s(h.p95 as f64 * 1e-9),
            fmt_s(h.p99 as f64 * 1e-9),
        );
    }
    println!(
        "  boundary: {} ecalls, {} ocalls",
        snap.counter("seg_boundary_ecalls_total").unwrap_or(0),
        snap.counter("seg_boundary_ocalls_total").unwrap_or(0),
    );
    for store in ["content", "group", "dedup"] {
        let read = snap
            .counter(&format!("seg_store_bytes_read_total{{store=\"{store}\"}}"))
            .unwrap_or(0);
        let written = snap
            .counter(&format!(
                "seg_store_bytes_written_total{{store=\"{store}\"}}"
            ))
            .unwrap_or(0);
        if read > 0 || written > 0 {
            println!("  store {store}: {read} B read, {written} B written");
        }
    }
    let emitted = snap.counter("seg_trace_events_total").unwrap_or(0);
    let dropped = snap.counter("seg_trace_dropped_total").unwrap_or(0);
    let audited = snap.counter("seg_audit_records_total").unwrap_or(0);
    let audit_bytes = snap.counter("seg_audit_bytes_total").unwrap_or(0);
    println!(
        "  trace: {emitted} events ({dropped} dropped), {} slow; audit: {audited} records, {audit_bytes} B",
        server.slow_requests(usize::MAX).len(),
    );
}

/// The WAN used by every figure (the paper's two-region testbed).
#[must_use]
pub fn wan() -> WanProfile {
    WanProfile::azure_two_region()
}

/// Formats seconds as the paper does (s with two decimals, or ms).
#[must_use]
pub fn fmt_s(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.2} ms", s * 1000.0)
    }
}

/// Simple `--flag value` argument lookup.
#[must_use]
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Whether a bare `--flag` is present.
#[must_use]
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}
