use seg_crypto::gcm::Gcm;
use std::time::Instant;
fn main() {
    let gcm = Gcm::new(&[7u8; 16]).unwrap();
    let data = vec![0u8; 64 * 1024 * 1024];
    let iv = [1u8; 12];
    let start = Instant::now();
    let sealed = gcm.seal(&iv, b"", &data);
    let elapsed = start.elapsed();
    println!("GCM seal 64MB: {:?} -> {:.1} MB/s", elapsed, 64.0 / elapsed.as_secs_f64());
    let start = Instant::now();
    let _ = gcm.open(&iv, b"", &sealed).unwrap();
    let elapsed = start.elapsed();
    println!("GCM open 64MB: {:?} -> {:.1} MB/s", elapsed, 64.0 / elapsed.as_secs_f64());
    // SHA-256
    let start = Instant::now();
    let _ = seg_crypto::sha256::Sha256::digest(&data);
    let elapsed = start.elapsed();
    println!("SHA256 64MB: {:?} -> {:.1} MB/s", elapsed, 64.0 / elapsed.as_secs_f64());
}
