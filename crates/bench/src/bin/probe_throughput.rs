//! Raw crypto throughput probe (calibrates the normalized figures),
//! plus an end-to-end server probe with its telemetry sidecar.

use seg_bench::harness::{print_metrics_sidecar_since, Rig};
use seg_crypto::gcm::Gcm;
use segshare::EnclaveConfig;
use std::time::Instant;

fn main() {
    let gcm = Gcm::new(&[7u8; 16]).unwrap();
    let data = vec![0u8; 64 * 1024 * 1024];
    let iv = [1u8; 12];
    let start = Instant::now();
    let sealed = gcm.seal(&iv, b"", &data);
    let elapsed = start.elapsed();
    println!(
        "GCM seal 64MB: {:?} -> {:.1} MB/s",
        elapsed,
        64.0 / elapsed.as_secs_f64()
    );
    let start = Instant::now();
    let _ = gcm.open(&iv, b"", &sealed).unwrap();
    let elapsed = start.elapsed();
    println!(
        "GCM open 64MB: {:?} -> {:.1} MB/s",
        elapsed,
        64.0 / elapsed.as_secs_f64()
    );
    // SHA-256
    let start = Instant::now();
    let _ = seg_crypto::sha256::Sha256::digest(&data);
    let elapsed = start.elapsed();
    println!(
        "SHA256 64MB: {:?} -> {:.1} MB/s",
        elapsed,
        64.0 / elapsed.as_secs_f64()
    );

    // End-to-end probe: 8 MB through the full TLS + enclave + store
    // path, reported via the unified metrics snapshot.
    let rig = Rig::new(EnclaveConfig::paper_prototype());
    let mut client = rig.client();
    // Window the sidecar to the probe itself (handshake excluded).
    let base = rig.server.metrics_snapshot();
    let payload: Vec<u8> = (0..8_000_000u32).map(|i| (i % 251) as u8).collect();
    let start = Instant::now();
    client.put("/probe", &payload).expect("upload succeeds");
    let up = start.elapsed();
    let start = Instant::now();
    let got = client.get("/probe").expect("download succeeds");
    let down = start.elapsed();
    assert_eq!(got.len(), payload.len());
    println!(
        "server 8MB: up {:?} ({:.1} MB/s), down {:?} ({:.1} MB/s)",
        up,
        8.0 / up.as_secs_f64(),
        down,
        8.0 / down.as_secs_f64()
    );
    print_metrics_sidecar_since(&rig.server, Some(&base));

    // Phase profile of one 100 kB upload on a fresh server — the
    // breakdown quoted in the EXPERIMENTS.md profiling appendix.
    let rig = Rig::new(EnclaveConfig::paper_prototype());
    let mut client = rig.client();
    let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    let start = Instant::now();
    client
        .put("/probe-100k", &payload)
        .expect("upload succeeds");
    let wall = start.elapsed();
    let prof = rig.server.profile_snapshot();
    let upload_ops = ["put_file", "data"];
    let enclave_ns: u64 = upload_ops.iter().map(|op| prof.op_total_ns(op)).sum();
    println!(
        "100 kB upload phase breakdown (client wall {:.3} ms, enclave-side {:.3} ms):",
        wall.as_secs_f64() * 1e3,
        enclave_ns as f64 / 1e6,
    );
    for (leaf, ns) in prof.phase_breakdown(&upload_ops) {
        println!(
            "  {leaf:<14} {:>9.1} us  {:>5.1}%",
            ns as f64 / 1e3,
            ns as f64 * 100.0 / enclave_ns.max(1) as f64
        );
    }
}
