//! Regenerates the **SeGShare row of Table III** (the classification
//! against Table II's objectives), as *evidence*, not assertion: each
//! objective is exercised programmatically against this implementation,
//! and the HE baseline is run beside it to reproduce the contrast the
//! table draws against cryptographically-protected systems.
//!
//! Usage: `table3_features [--quick]` (the evidence spot-checks are
//! already sub-second; `--quick` shrinks the HE-contrast payload)

use seg_bench::harness::arg_flag;
use std::collections::HashMap;

use seg_baseline::he::{HeFileShare, HeUser};
use seg_fs::Perm;
use seg_store::{MemStore, ObjectStore};
use segshare::{EnclaveConfig, FsoSetup};
use std::sync::Arc;

struct Row {
    objective: &'static str,
    description: &'static str,
    status: &'static str,
    evidence: &'static str,
}

fn main() {
    let quick = arg_flag("--quick");
    // Live spot-checks: run a deployment and verify a representative
    // subset right now (the full matrix is the test suite).
    let dedup_store = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "ca",
        EnclaveConfig::full(),
        seg_sgx::Platform::new_with_seed(1),
        Arc::new(MemStore::new()),
        Arc::new(MemStore::new()),
        Arc::clone(&dedup_store) as Arc<dyn ObjectStore>,
    );
    let server = setup.server().expect("setup");
    let alice = setup.enroll_user("alice", "a@x", "A").expect("enroll");
    let bob = setup.enroll_user("bob", "b@x", "B").expect("enroll");
    let mut a = server.connect_local(&alice).expect("connect");
    let mut b = server.connect_local(&bob).expect("connect");

    a.put("/f", b"shared").expect("put");
    a.add_user("bob", "g").expect("group");
    a.set_perm("/f", "g", Perm::Read).expect("perm");
    assert!(b.get("/f").is_ok(), "F1 group sharing");
    a.remove_user("bob", "g").expect("revoke");
    assert!(b.get("/f").is_err(), "S4 immediate revocation");
    a.put("/dup1", &vec![1u8; 50_000]).expect("put");
    let one = dedup_store.total_bytes().expect("bytes");
    a.put("/dup2", &vec![1u8; 50_000]).expect("put");
    assert_eq!(one, dedup_store.total_bytes().expect("bytes"), "F9 dedup");

    // The HE contrast for P3/P4.
    let hal = HeUser::new("alice");
    let hbob = HeUser::new("bob");
    let mut he = HeFileShare::new();
    let he_bytes = if quick { 100_000 } else { 1_000_000 };
    he.put("/f", &vec![0u8; he_bytes], &[&hal, &hbob])
        .expect("he put");
    let dir: HashMap<String, [u8; 32]> = [
        ("alice".to_string(), hal.public()),
        ("bob".to_string(), hbob.public()),
    ]
    .into();
    let cost = he.revoke("/f", &hal, "bob", &dir).expect("he revoke");

    println!("== Table III, SeGShare row (live evidence) ==");
    println!();
    let rows = [
        Row {
            objective: "F1",
            description: "sharing with users / groups",
            status: "full/full",
            evidence: "tests: f1_sharing_with_users_and_groups",
        },
        Row {
            objective: "F2",
            description: "dynamic permissions / memberships",
            status: "full/full",
            evidence: "tests: f2_f3_dynamic_permissions",
        },
        Row {
            objective: "F3",
            description: "users set permissions",
            status: "full",
            evidence: "set_perm requires file ownership only",
        },
        Row {
            objective: "F4",
            description: "separate read / write permissions",
            status: "full/full",
            evidence: "tests: f4_separate_read_and_write",
        },
        Row {
            objective: "F5",
            description: "no special client hardware",
            status: "full",
            evidence: "client = cert + key over TCP (examples/tcp_server)",
        },
        Row {
            objective: "F6",
            description: "non-interactive updates",
            status: "full",
            evidence: "tests: f6_non_interactive_updates",
        },
        Row {
            objective: "F7",
            description: "multiple file / group owners",
            status: "full/full",
            evidence: "tests: multiple_owners_and_group_owned_groups",
        },
        Row {
            objective: "F8",
            description: "authn/authz separation",
            status: "full",
            evidence: "tests: f8_separation (two certs, one principal)",
        },
        Row {
            objective: "F9",
            description: "dedup of encrypted files",
            status: "full",
            evidence: "live check above; tests: f9_deduplication",
        },
        Row {
            objective: "F10",
            description: "inherited permissions",
            status: "full",
            evidence: "tests: f10_permission_inheritance",
        },
        Row {
            objective: "P1",
            description: "constant client storage",
            status: "full",
            evidence: "tests: f5_p1 (enrollment < 1 KiB)",
        },
        Row {
            objective: "P2",
            description: "group-based permissions",
            status: "full",
            evidence: "tests: p2_group_based_permission_definition",
        },
        Row {
            objective: "P3",
            description: "revocation w/o re-encryption",
            status: "full/full",
            evidence: "tests: p3 (<100 kB written revoking a 2 MB file)",
        },
        Row {
            objective: "P4",
            description: "constant ciphertexts per file",
            status: "full",
            evidence: "tests: p4 (object count flat over 50 grants)",
        },
        Row {
            objective: "P5",
            description: "groups share one encrypted file",
            status: "full",
            evidence: "tests: p5 (10 groups, one blob)",
        },
        Row {
            objective: "S1",
            description: "confidentiality incl. structure",
            status: "full",
            evidence: "threat tests: provider_sees_no_plaintext",
        },
        Row {
            objective: "S2",
            description: "integrity incl. management files",
            status: "full",
            evidence: "threat tests: tampering_with_any_stored_object",
        },
        Row {
            objective: "S3",
            description: "end-to-end file protection",
            status: "full",
            evidence: "objective tests: s3 (wire records opaque)",
        },
        Row {
            objective: "S4",
            description: "immediate revocation",
            status: "full",
            evidence: "live check above; threat tests: member_list_rollback",
        },
        Row {
            objective: "S5",
            description: "rollback protection file / FS",
            status: "full/full",
            evidence: "threat tests: individual + whole-FS (counter)",
        },
    ];
    for row in &rows {
        println!(
            "{:>4}  {:<38} {:<10} {}",
            row.objective, row.description, row.status, row.evidence
        );
    }

    println!();
    println!("== contrast with the HE baseline (Table III, row [10]) ==");
    println!(
        "HE revocation of one user from a {} kB file: re-encrypted {} bytes, re-wrapped {} keys",
        he_bytes / 1000,
        cost.bytes_reencrypted,
        cost.rewraps
    );
    println!("SeGShare revocation of the same shape: one ACL/member-list rewrite (~8 KiB), zero content bytes");
    let mut fresh = HeFileShare::new();
    fresh.put("/fresh", b"x", &[&hal, &hbob]).expect("he put");
    println!(
        "HE ciphertexts per file with 2 readers: {} (grows per reader); SeGShare: constant 2 (+hash records)",
        fresh.ciphertext_count("/fresh")
    );
}
