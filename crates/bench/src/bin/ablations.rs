//! Ablations of the design choices `DESIGN.md` calls out:
//!
//! 1. **switchless calls** (§II-A/§VI): simulated boundary-crossing
//!    cost of a workload with and without switchless mode;
//! 2. **bucket hashes** (§V-D): download-validation processing with 64
//!    buckets vs. a single bucket (= no bucketing) in a flat directory;
//! 3. **deduplication** (§V-A): storage and upload-time cost/benefit;
//! 4. **revocation vs. the HE baseline** (§III-D): the re-encryption
//!    bill SeGShare eliminates;
//! 5. **audit trail**: up/download latency with the hash-chained audit
//!    log enabled vs. disabled (two sealed-record writes per decision);
//! 6. **object cache**: metadata-hot download latency and per-request
//!    store/decrypt work with the in-enclave authenticated cache
//!    (`EnclaveConfig.cache`) off vs. on, with measured hit ratios.
//!
//! Usage: `ablations [--quick]`

use std::collections::HashMap;
use std::sync::Arc;

use seg_baseline::he::{HeFileShare, HeUser};
use seg_bench::harness::{arg_flag, fmt_s, measure, Rig};
use seg_store::{MemStore, ObjectStore};
use segshare::{EnclaveConfig, FsoSetup};

fn main() {
    let quick = arg_flag("--quick");
    switchless(quick);
    buckets(quick);
    dedup(quick);
    he_revocation(quick);
    audit_overhead(quick);
    object_cache(quick);
}

fn switchless(quick: bool) {
    println!("== ablation 1: switchless enclave calls (§II-A/§VI) ==");
    let files = if quick { 20 } else { 100 };
    let mut results = Vec::new();
    for switchless in [true, false] {
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        rig.server
            .enclave()
            .sgx()
            .boundary()
            .set_switchless(switchless);
        rig.server.enclave().sgx().boundary().reset();
        let mut client = rig.client();
        for i in 0..files {
            client.put(&format!("/f{i}"), &vec![1u8; 10_000]).unwrap();
            let _ = client.get(&format!("/f{i}")).unwrap();
        }
        let stats = rig.server.enclave().sgx().boundary().stats();
        results.push((switchless, stats));
    }
    for (switchless, stats) in &results {
        println!(
            "  switchless={:<5} ecalls={:>6} ocalls={:>6} simulated transition cost = {}",
            switchless,
            stats.ecalls,
            stats.ocalls,
            fmt_s(stats.simulated_ns as f64 / 1e9)
        );
    }
    let on = results[0].1.simulated_ns as f64;
    let off = results[1].1.simulated_ns as f64;
    println!(
        "  -> switchless saves {:.1}x of the boundary-crossing cost over {files} up+downloads",
        off / on.max(1.0)
    );
    println!();
}

fn buckets(quick: bool) {
    println!("== ablation 2: bucket hashes in the rollback tree (§V-D) ==");
    let files = if quick { 256 } else { 1024 };
    let runs = if quick { 10 } else { 20 };
    for bucket_count in [64u16, 1] {
        let config = EnclaveConfig {
            rollback_buckets: bucket_count,
            ..EnclaveConfig::paper_prototype()
        };
        let rig = Rig::new(config);
        let mut client = rig.client();
        for i in 0..files {
            client
                .put(&format!("/flat-{i:05}"), &vec![2u8; 10_000])
                .unwrap();
        }
        let down = measure(runs, || {
            let _ = client.get("/flat-00000").unwrap();
        });
        let mut i = 0;
        let up = measure(runs, || {
            i += 1;
            client
                .put(&format!("/extra-{i}"), &vec![3u8; 10_000])
                .unwrap();
        });
        println!(
            "  buckets={bucket_count:>3}: download {} | upload {}  ({files} flat siblings)",
            fmt_s(down.mean_s),
            fmt_s(up.mean_s)
        );
    }
    println!("  -> with one bucket, leaf validation touches every sibling's hash");
    println!("     record; bucketing caps it at |siblings|/buckets (§V-D's optimization)");
    println!();
}

fn dedup(quick: bool) {
    println!("== ablation 3: deduplication store (§V-A) ==");
    let copies = if quick { 5 } else { 20 };
    let size = 1_000_000usize;
    for dedup_on in [false, true] {
        let content = Arc::new(MemStore::new());
        let dedup_store = Arc::new(MemStore::new());
        let setup = FsoSetup::with_stores(
            "ca",
            EnclaveConfig {
                dedup: dedup_on,
                ..EnclaveConfig::paper_prototype()
            },
            seg_sgx::Platform::new_with_seed(7),
            Arc::clone(&content) as Arc<dyn ObjectStore>,
            Arc::new(MemStore::new()),
            Arc::clone(&dedup_store) as Arc<dyn ObjectStore>,
        );
        let server = setup.server().unwrap();
        let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
        let mut client = server.connect_local(&alice).unwrap();
        let payload = vec![9u8; size];
        let start = std::time::Instant::now();
        for i in 0..copies {
            client.put(&format!("/copy-{i}"), &payload).unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        let stored = content.total_bytes().unwrap() + dedup_store.total_bytes().unwrap();
        println!(
            "  dedup={dedup_on:<5}: {copies}x 1 MB identical uploads in {} | stored {:.2} MB",
            fmt_s(elapsed),
            stored as f64 / 1e6
        );
    }
    println!("  -> dedup trades one extra HMAC+re-encryption pass on first upload for");
    println!("     ~N-fold storage savings on duplicates (server-side, cross-group)");
    println!();
}

fn he_revocation(quick: bool) {
    println!("== ablation 4: revocation vs. the HE baseline (§III-D / P3) ==");
    let file_counts: &[usize] = if quick { &[10] } else { &[10, 50] };
    let file_size = 500_000usize;
    for &files in file_counts {
        // HE: revoking bob re-encrypts every shared file.
        let alice = HeUser::new("alice");
        let bob = HeUser::new("bob");
        let mut he = HeFileShare::new();
        for i in 0..files {
            he.put(&format!("/f{i}"), &vec![0u8; file_size], &[&alice, &bob])
                .unwrap();
        }
        let dir: HashMap<String, [u8; 32]> = [
            ("alice".to_string(), alice.public()),
            ("bob".to_string(), bob.public()),
        ]
        .into();
        let start = std::time::Instant::now();
        let cost = he.revoke_everywhere(&alice, "bob", &dir).unwrap();
        let he_time = start.elapsed().as_secs_f64();

        // SeGShare: one member-list update regardless of file count.
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut client = rig.client();
        client.add_user("bob", "team").unwrap();
        for i in 0..files {
            client
                .put(&format!("/f{i}"), &vec![0u8; file_size])
                .unwrap();
            client
                .set_perm(&format!("/f{i}"), "team", seg_fs::Perm::Read)
                .unwrap();
        }
        let start = std::time::Instant::now();
        client.remove_user("bob", "team").unwrap();
        let seg_time = start.elapsed().as_secs_f64();

        println!(
            "  {files:>3} files x 500 kB: HE revocation {} (re-encrypted {:.1} MB, {} rewraps) | SeGShare {}",
            fmt_s(he_time),
            cost.bytes_reencrypted as f64 / 1e6,
            cost.rewraps,
            fmt_s(seg_time)
        );
    }
    println!("  -> the HE bill grows with total shared bytes; SeGShare's is one small");
    println!("     encrypted member-list update (the paper's P3/S4 design goal)");
    println!();
}

fn audit_overhead(quick: bool) {
    println!("== ablation 5: tamper-evident audit trail ==");
    let runs = if quick { 15 } else { 40 };
    let payload = vec![0x5cu8; 100_000];
    let mut results = Vec::new();
    for audit in [true, false] {
        let config = EnclaveConfig {
            audit,
            ..EnclaveConfig::paper_prototype()
        };
        let rig = Rig::new(config);
        let mut client = rig.client();
        let mut i = 0;
        let up = measure(runs, || {
            i += 1;
            client.put(&format!("/audited-{i}"), &payload).unwrap();
        });
        client.put("/probe", &payload).unwrap();
        let down = measure(runs, || {
            let got = client.get("/probe").unwrap();
            assert_eq!(got.len(), payload.len());
        });
        let records = rig
            .server
            .audit_verify()
            .expect("chain verifies after the workload");
        println!(
            "  audit={audit:<5}: upload {} | download {}  ({records} chain records)",
            fmt_s(up.mean_s),
            fmt_s(down.mean_s)
        );
        results.push((up.mean_s, down.mean_s));
    }
    let (up_on, down_on) = results[0];
    let (up_off, down_off) = results[1];
    let up_pct = (up_on / up_off - 1.0) * 100.0;
    let down_pct = (down_on / down_off - 1.0) * 100.0;
    println!("  -> overhead: upload {up_pct:+.1}%, download {down_pct:+.1}% on the 100 kB");
    println!("     up/down path (two sealed appends per audited decision)");
    println!();
}

fn object_cache(quick: bool) {
    println!("== ablation 6: in-enclave authenticated object cache ==");
    let runs = if quick { 15 } else { 40 };
    let payload = vec![7u8; 10_000];
    let mut results = Vec::new();
    for cache in [false, true] {
        let rig = Rig::new(EnclaveConfig {
            cache,
            ..EnclaveConfig::paper_prototype()
        });
        let mut client = rig.client();
        // A small file at the bottom of a deep path: every download
        // re-validates the ancestor chain (hash records), re-reads the
        // ACL and member lists, and decrypts the body — all cacheable.
        for dir in ["/proj", "/proj/team", "/proj/team/docs"] {
            client.mkdir(dir).unwrap();
        }
        client.put("/proj/team/docs/hot", &payload).unwrap();
        client.add_user("bob", "readers").unwrap();
        client
            .set_perm("/proj/team/docs/hot", "readers", seg_fs::Perm::Read)
            .unwrap();

        let base = rig.server.metrics_snapshot();
        let down = measure(runs, || {
            let got = client.get("/proj/team/docs/hot").unwrap();
            assert_eq!(got.len(), payload.len());
        });
        let delta = rig.server.metrics_snapshot().delta(&base);
        let counter = |rendered: &str| delta.counter(rendered).unwrap_or(0);
        let store_gets = counter("seg_store_ops_total{op=\"get\",store=\"content\"}")
            + counter("seg_store_ops_total{op=\"get\",store=\"group\"}")
            + counter("seg_store_ops_total{op=\"get\",store=\"dedup\"}");
        let decrypts = delta.histogram("seg_pfs_decrypt_ns").map_or(0, |h| h.count);
        let hits = counter("seg_cache_hits_total");
        let misses = counter("seg_cache_misses_total");
        let hit_ratio = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let per_run = |n: u64| n as f64 / (runs as f64 + 1.0); // +1: warm-up run
        if cache {
            println!(
                "  cache=true : download {} | {:.1} store gets, {:.1} decrypts per request | hit ratio {:.1}%",
                fmt_s(down.mean_s),
                per_run(store_gets),
                per_run(decrypts),
                hit_ratio * 100.0
            );
        } else {
            println!(
                "  cache=false: download {} | {:.1} store gets, {:.1} decrypts per request",
                fmt_s(down.mean_s),
                per_run(store_gets),
                per_run(decrypts),
            );
        }
        results.push((down.mean_s, store_gets, decrypts));
    }
    let (t_off, gets_off, dec_off) = results[0];
    let (t_on, gets_on, dec_on) = results[1];
    let drop = |off: u64, on: u64| {
        if off == 0 {
            0.0
        } else {
            (1.0 - on as f64 / off as f64) * 100.0
        }
    };
    println!(
        "  -> cache cuts {:.1}% of store reads and {:.1}% of GCM decrypts ({:.2}x latency)",
        drop(gets_off, gets_on),
        drop(dec_off, dec_on),
        t_off / t_on.max(1e-12),
    );
    println!("     on the warm metadata-hot path; write-through invalidation keeps");
    println!("     revocation immediate (see tests/integration_cache.rs)");
}
