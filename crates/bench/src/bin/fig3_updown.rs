//! Regenerates **Fig. 3**: mean latency of uploads and downloads at
//! file sizes 1–200 MB, for SeGShare and the two plaintext WebDAV
//! baselines.
//!
//! Method (see `DESIGN.md` substitutions): server *processing* is
//! measured for real on this machine (full client-TLS → enclave-TLS →
//! Protected-FS path for SeGShare; memcpy path plus the calibrated
//! Apache/nginx cost profiles for the baselines), then composed with
//! the two-region WAN model. Two SeGShare columns are printed:
//! `measured` uses this machine's pure-Rust crypto, `normalized` scales
//! crypto-dominated processing to the paper's AES-NI-class hardware.
//!
//! Usage: `fig3_updown [--quick] [--sizes 1,10,50,100,200]`

use seg_baseline::{PlainFileServer, ServerProfile};
use seg_bench::harness::{
    arg_flag, arg_value, fmt_s, local_gcm_mbps, measure, normalize_processing,
    print_metrics_sidecar_since, wan, Rig,
};
use segshare::EnclaveConfig;

fn main() {
    let sizes_mb: Vec<u64> = if let Some(list) = arg_value("--sizes") {
        list.split(',')
            .map(|s| s.parse().expect("size in MB"))
            .collect()
    } else if arg_flag("--quick") {
        vec![1, 10]
    } else {
        vec![1, 10, 50, 100, 200]
    };
    let wan = wan();
    let local_mbps = local_gcm_mbps();
    println!("== Fig. 3: upload/download latency vs file size ==");
    println!("local software GCM throughput: {local_mbps:.0} MB/s (paper hardware ~2000 MB/s)");
    println!();
    println!(
        "{:>6} {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>10} | paper(200MB: seg 2.39/2.17, apache 4.74/2.62, nginx 1.84/0.93)",
        "size", "dir", "seg-meas", "seg-norm", "apache", "nginx", "raw-proc"
    );

    for &mb in &sizes_mb {
        let bytes = mb * 1_000_000;
        let runs = if mb <= 10 { 10 } else { 3 };
        let payload: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();

        // SeGShare: real processing through the full stack.
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut client = rig.client();
        // Baseline after the handshake: the sidecar below reports only
        // the measured window, not connection setup.
        let base = rig.server.metrics_snapshot();
        let mut i = 0u32;
        let up = measure(runs, || {
            i += 1;
            client
                .put(&format!("/bench-{i}"), &payload)
                .expect("upload succeeds");
        });
        client.put("/down", &payload).expect("upload succeeds");
        let down = measure(runs, || {
            let got = client.get("/down").expect("download succeeds");
            assert_eq!(got.len() as u64, bytes);
        });

        // Plaintext baseline processing (shared by both profiles).
        let plain = PlainFileServer::new();
        let plain_up = measure(runs, || {
            plain.put("/bench", &payload).expect("put succeeds");
        });
        let plain_down = measure(runs, || {
            let got = plain.get("/bench").expect("get succeeds").expect("exists");
            assert_eq!(got.len() as u64, bytes);
        });

        let apache = ServerProfile::apache_like();
        let nginx = ServerProfile::nginx_like();

        // Compose. SeGShare and nginx stream (processing overlaps the
        // wire); Apache's DAV path effectively stores-and-forwards,
        // which is what reproduces its measured 200 MB numbers.
        let seg_up_measured = wan.request_s(bytes, 64, up.mean_s);
        let seg_up_norm = wan.request_s(bytes, 64, normalize_processing(up.mean_s, local_mbps));
        let apache_up = wan.request_store_forward_s(
            bytes,
            64,
            plain_up.mean_s + apache.request_cost_s(bytes, 0),
        );
        let nginx_up = wan.request_s(bytes, 64, plain_up.mean_s + nginx.request_cost_s(bytes, 0));

        let seg_down_measured = wan.request_s(64, bytes, down.mean_s);
        let seg_down_norm = wan.request_s(64, bytes, normalize_processing(down.mean_s, local_mbps));
        let apache_down = wan.request_store_forward_s(
            64,
            bytes,
            plain_down.mean_s + apache.request_cost_s(0, bytes),
        );
        let nginx_down = wan.request_s(
            64,
            bytes,
            plain_down.mean_s + nginx.request_cost_s(0, bytes),
        );

        println!(
            "{:>4}MB {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
            mb,
            "up",
            fmt_s(seg_up_measured),
            fmt_s(seg_up_norm),
            fmt_s(apache_up),
            fmt_s(nginx_up),
            fmt_s(up.mean_s),
        );
        println!(
            "{:>4}MB {:>5} | {:>10} {:>10} | {:>10} {:>10} | {:>10}",
            mb,
            "down",
            fmt_s(seg_down_measured),
            fmt_s(seg_down_norm),
            fmt_s(apache_down),
            fmt_s(nginx_down),
            fmt_s(down.mean_s),
        );

        print_metrics_sidecar_since(&rig.server, Some(&base));

        // The paper's ordering claims, checked on the normalized
        // column. At small sizes everyone is wire-bound and the curves
        // coincide (as in the figure's left edge), so allow a small
        // tolerance there and require strict ordering at 50 MB+.
        let tol = if mb >= 50 { 0.0 } else { 0.002 };
        assert!(
            nginx_up <= seg_up_norm + tol && seg_up_norm < apache_up + tol,
            "upload ordering (nginx <= SeGShare < Apache) violated at {mb} MB"
        );
        assert!(
            nginx_down <= seg_down_norm + tol,
            "download ordering (nginx <= SeGShare) violated at {mb} MB"
        );
    }
    println!();
    println!(
        "shape check: nginx < SeGShare(normalized) < Apache for uploads; nginx < SeGShare for downloads — as in the paper."
    );
}
