//! Regenerates the **§VII-B storage-overhead table**: encrypted storage
//! for 10 MB and 200 MB plaintext files whose ACLs carry 95 and 1119
//! entries.
//!
//! Paper: 10 MB → 10.11 MB / 10.15 MB (1.12 % / 1.48 %);
//!        200 MB → 202.09 MB / 202.13 MB (1.05 % / 1.06 %).
//!
//! Two views are printed: the *analytic* Protected-FS node model
//! (instant, any size) and the *measured* bytes in the content store
//! after a real upload through the full stack.
//!
//! Usage: `table_storage [--quick]`

use std::sync::Arc;

use seg_bench::harness::{arg_flag, print_metrics_sidecar};
use seg_fs::Perm;
use seg_sgx::pfs;
use seg_store::{MemStore, ObjectStore};
use segshare::{EnclaveConfig, FsoSetup};

fn main() {
    println!("== §VII-B storage overhead ==");
    println!("paper: 10 MB file -> 10.11 / 10.15 MB (95 / 1119 ACL entries);");
    println!("       200 MB file -> 202.09 / 202.13 MB (1.05% / 1.06%)");
    println!();

    // ---- analytic node model (exact, instant) ------------------------
    println!("analytic Protected-FS model (4 KiB nodes, tag tree):");
    println!(
        "{:>10} | {:>14} | {:>9}",
        "plaintext", "encrypted", "overhead"
    );
    for plain in [10_000_000u64, 200_000_000] {
        let enc = pfs::encrypted_size(plain);
        println!(
            "{:>7} MB | {:>11.2} MB | {:>8.2}%",
            plain / 1_000_000,
            enc as f64 / 1e6,
            (enc - plain) as f64 / plain as f64 * 100.0
        );
    }
    println!();

    // ---- measured through the full stack ------------------------------
    let sizes: &[(u64, &[usize])] = if arg_flag("--quick") {
        &[(10_000_000, &[95, 1119])]
    } else {
        &[(10_000_000, &[95, 1119]), (200_000_000, &[95, 1119])]
    };

    println!("measured through the full stack (content store bytes):");
    println!(
        "{:>10} {:>12} | {:>14} {:>14} | {:>9} | paper",
        "plaintext", "ACL entries", "content-store", "per-file", "overhead"
    );
    for &(plain, acl_sizes) in sizes {
        for &entries in acl_sizes {
            let content = Arc::new(MemStore::new());
            let setup = FsoSetup::with_stores(
                "ca",
                EnclaveConfig::paper_prototype(),
                seg_sgx::Platform::new_with_seed(1),
                Arc::clone(&content) as Arc<dyn ObjectStore>,
                Arc::new(MemStore::new()),
                Arc::new(MemStore::new()),
            );
            let server = setup.server().unwrap();
            let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
            let mut a = server.connect_local(&alice).unwrap();

            let empty_system = content.total_bytes().unwrap();
            let payload = vec![0x11u8; plain as usize];
            a.put("/the-file", &payload).unwrap();
            for g in 0..entries {
                a.set_perm("/the-file", &format!("group-{g:05}"), Perm::Read)
                    .unwrap();
            }
            let total = content.total_bytes().unwrap();
            // The audit trail also lives in the content store but grows
            // with *operations* (one sealed record per decision), not
            // with stored bytes — attribute it separately so the
            // per-file column stays comparable to the paper's table.
            let audit_bytes: u64 = content
                .list()
                .unwrap()
                .iter()
                .filter(|k| k.starts_with("!audit"))
                .map(|k| content.get(k).unwrap().map_or(0, |v| v.len() as u64))
                .sum();
            // Attribute to the file: everything beyond the empty system
            // (the file blob, its ACL, hash records, root-dir growth).
            let per_file = total - empty_system - audit_bytes;
            let overhead = (per_file as f64 - plain as f64) / plain as f64 * 100.0;
            let paper = match (plain, entries) {
                (10_000_000, 95) => "10.11 MB (1.12%)",
                (10_000_000, 1119) => "10.15 MB (1.48%)",
                (200_000_000, 95) => "202.09 MB (1.05%)",
                (200_000_000, 1119) => "202.13 MB (1.06%)",
                _ => "-",
            };
            println!(
                "{:>7} MB {:>12} | {:>11.2} MB {:>11.2} MB | {:>8.2}% | {paper}",
                plain / 1_000_000,
                entries,
                total as f64 / 1e6,
                per_file as f64 / 1e6,
                overhead
            );
            println!(
                "  audit trail: {:.1} kB sealed records (grows per decision, not per byte)",
                audit_bytes as f64 / 1e3
            );
            print_metrics_sidecar(&server);
        }
    }
    println!();
    println!("(shape: ~1% overhead dominated by Protected-FS node framing; a few");
    println!(" extra kB for the ACL file and rollback-tree hash records, growing");
    println!(" mildly with ACL entries — matching the paper's 1.05-1.48% band)");
}
