//! Regenerates **Fig. 4** (and the second/third/fourth §VII-B
//! experiments): latency of membership and permission additions and
//! revocations as a function of how many memberships / permission
//! entries already exist — plus the independence claims (latency flat
//! in |FS|, file sizes, and the other nuisance parameters).
//!
//! The paper's numbers are WAN-dominated (~150 ms flat, logarithmic
//! dependence "negligible in the total latency"); we print the real
//! enclave processing time *and* the WAN-composed latency.
//!
//! Usage: `fig4_membership [--quick] [--independence]`

use seg_bench::harness::{arg_flag, fmt_s, measure, print_metrics_sidecar, wan, Rig};
use seg_fs::Perm;
use segshare::EnclaveConfig;

fn main() {
    let quick = arg_flag("--quick");
    let counts: &[usize] = if quick {
        &[1, 10, 100]
    } else {
        &[1, 10, 100, 1000]
    };
    let runs = if quick { 20 } else { 50 };
    let wan = wan();

    println!("== Fig. 4: membership/permission add & revoke latency ==");
    println!("paper: additions 150.29-150.92 ms, revocations 150.11-151.13 ms,");
    println!("       permissions <= 170 ms -- flat in the pre-existing count at WAN scale");
    println!();
    println!(
        "{:>22} | {:>12} {:>12} | {:>12} {:>12}",
        "pre-existing", "add (proc)", "add (WAN)", "rm (proc)", "rm (WAN)"
    );

    // ---- membership operations (member-list file of the subject) ----
    for &n in counts {
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut admin = rig.client();
        // bob is already a member of n groups (alice owns them all).
        for g in 0..n {
            admin.add_user("bob", &format!("warmup-{g:04}")).unwrap();
        }
        let mut i = 0usize;
        let add = measure(runs, || {
            i += 1;
            admin.add_user("bob", &format!("extra-{i:05}")).unwrap();
        });
        let mut j = 0usize;
        let revoke = measure(runs, || {
            j += 1;
            admin.remove_user("bob", &format!("extra-{j:05}")).unwrap();
        });
        println!(
            "{:>18} mbr | {:>12} {:>12} | {:>12} {:>12}",
            n,
            fmt_s(add.mean_s),
            fmt_s(wan.request_s(96, 16, add.mean_s)),
            fmt_s(revoke.mean_s),
            fmt_s(wan.request_s(96, 16, revoke.mean_s)),
        );
        print_metrics_sidecar(&rig.server);
    }

    // ---- permission operations (ACL file of the target) -------------
    for &n in counts {
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut admin = rig.client();
        admin.put("/file", b"permission benchmark target").unwrap();
        for g in 0..n {
            admin
                .set_perm("/file", &format!("pre-{g:04}"), Perm::Read)
                .unwrap();
        }
        let mut i = 0usize;
        let add = measure(runs, || {
            i += 1;
            admin
                .set_perm("/file", &format!("new-{i:05}"), Perm::Read)
                .unwrap();
        });
        let mut j = 0usize;
        let revoke = measure(runs, || {
            j += 1;
            admin.remove_perm("/file", &format!("new-{j:05}")).unwrap();
        });
        println!(
            "{:>17} perm | {:>12} {:>12} | {:>12} {:>12}",
            n,
            fmt_s(add.mean_s),
            fmt_s(wan.request_s(96, 16, add.mean_s)),
            fmt_s(revoke.mean_s),
            fmt_s(wan.request_s(96, 16, revoke.mean_s)),
        );
        print_metrics_sidecar(&rig.server);
    }

    if arg_flag("--independence") {
        independence(runs);
    }
}

/// §VII-B's independence claims: membership latency does not depend on
/// |r_P|, |FS|, file sizes, or group sizes.
fn independence(runs: usize) {
    println!();
    println!("== independence of membership latency (§VII-B, experiment 2) ==");
    let wan = wan();
    let mut results: Vec<(String, f64)> = Vec::new();

    // Baseline: nearly empty system.
    {
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut admin = rig.client();
        let mut i = 0;
        let m = measure(runs, || {
            i += 1;
            admin.add_user("bob", &format!("g{i:05}")).unwrap();
        });
        results.push(("empty system".into(), m.mean_s));
    }

    // Many stored files.
    {
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut admin = rig.client();
        for f in 0..200 {
            admin.put(&format!("/f{f:04}"), b"x").unwrap();
        }
        let mut i = 0;
        let m = measure(runs, || {
            i += 1;
            admin.add_user("bob", &format!("g{i:05}")).unwrap();
        });
        results.push(("200 stored files".into(), m.mean_s));
    }

    // A large file in the store.
    {
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut admin = rig.client();
        admin.put("/big", &vec![7u8; 20_000_000]).unwrap();
        let mut i = 0;
        let m = measure(runs, || {
            i += 1;
            admin.add_user("bob", &format!("g{i:05}")).unwrap();
        });
        results.push(("20 MB file stored".into(), m.mean_s));
    }

    // A group with many *other* members (the member list under test
    // holds only bob's own memberships, §VII-B experiment 2).
    {
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut admin = rig.client();
        for u in 0..200 {
            admin.add_user(&format!("user{u:04}"), "bigteam").unwrap();
        }
        let mut i = 0;
        let m = measure(runs, || {
            i += 1;
            admin.add_user("bob", &format!("g{i:05}")).unwrap();
        });
        results.push(("group with 200 members".into(), m.mean_s));
    }

    let baseline = results[0].1;
    for (label, mean) in &results {
        println!(
            "{label:>24}: proc {:>10}  WAN {:>10}  ({:+.0}% vs empty)",
            fmt_s(*mean),
            fmt_s(wan.request_s(96, 16, *mean)),
            (mean / baseline - 1.0) * 100.0
        );
    }
    println!("(WAN-composed latencies are flat: processing differences are sub-millisecond)");
}
