//! Machine-readable performance gate.
//!
//! Runs a fixed operation mix (uploads/downloads across sizes, a group
//! membership update, a revocation) through the full enclave stack,
//! emits `BENCH_perf.json` (per-workload stats, per-op latency
//! quantiles, and the phase profiler's per-phase self-times — all
//! GCM-throughput-normalized like the figure regenerators), and
//! compares the normalized per-workload means against the committed
//! `results/bench_baseline.json`.
//!
//! The gate is noise-aware: a workload fails only if its normalized
//! regression exceeds `max(15 %, 3 × CI95)` of the baseline mean, so
//! run-to-run jitter (already damped by the GCM normalization) cannot
//! fail CI while a real slowdown still trips it.
//!
//! Usage: `perf_gate [--quick] [--update-baseline]`
//!   --quick            fewer runs per workload (CI setting)
//!   --update-baseline  rewrite results/bench_baseline.json from this run

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use seg_bench::harness::{
    arg_flag, fmt_s, local_gcm_mbps, measure, normalize_processing, Measured, Rig, HW_GCM_MBPS,
};
use seg_bench::json::{self, Json};
use seg_fs::Perm;
use segshare::EnclaveConfig;

/// Regressions below this fraction of the baseline never fail the gate.
const MIN_THRESHOLD: f64 = 0.15;
/// Noise guard: regressions under `CI_MULTIPLIER × CI95 / baseline`
/// don't fail either.
const CI_MULTIPLIER: f64 = 3.0;
/// Absolute slack in normalized seconds. Sub-millisecond admin ops
/// (membership update, revocation) drift 20 %+ between processes from
/// scheduler/frequency noise that within-run CI95 cannot see; 50 µs of
/// normalized slack absorbs that without weakening the gate where it
/// matters (50 µs is ~3 % of a 1 MB upload).
const ABS_SLACK_S: f64 = 50e-6;

struct WorkloadResult {
    name: &'static str,
    measured: Measured,
    norm_mean_s: f64,
    norm_ci95_s: f64,
}

/// Declassified evidence from one metadata-hot run: how much work the
/// in-enclave object cache removed (or didn't, for the off variant).
struct CacheEvidence {
    name: &'static str,
    cache: bool,
    pfs_decrypts: u64,
    store_gets: u64,
    hits: u64,
    misses: u64,
    fills: u64,
}

impl CacheEvidence {
    fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Simulated store round-trip latency for the concurrency workloads.
/// In-memory stores answer in nanoseconds, which makes every request
/// CPU-bound and hides what per-object locking buys; real deployments
/// (§VI: cross-region blob storage) spend most of a request blocked on
/// the store. 800 µs is far below the paper's WAN latencies but enough
/// that store wait dominates the locked section.
const CONC_STORE_DELAY: Duration = Duration::from_micros(800);
/// Minimum aggregate-throughput ratio (per-object locks vs the coarse
/// global lock) at 8 threads on the disjoint-directory mix.
const CONC_MIN_SPEEDUP: f64 = 3.0;

/// One measured point of the thread-scaling curve.
struct ConcurrencyPoint {
    mix: &'static str,
    mode: &'static str,
    threads: usize,
    ops_per_s: f64,
}

/// Floor for attributable lock wait on the contended mix: below this
/// the watch plane failed to see contention that demonstrably exists.
const CONTENTION_MIN_WAIT_NS: u64 = 10_000_000;
/// The overlapping mix must wait at least this many times longer on the
/// path key class than the disjoint mix (same op count, same rig).
const CONTENTION_MIN_RATIO: f64 = 5.0;
/// Maximum fractional slowdown the always-on watch plane may cost on
/// the standard small-op mix.
const WATCH_MAX_OVERHEAD: f64 = 0.02;
/// Maximum fractional slowdown the health plane (SLO rollup samples,
/// the background integrity scrubber, and the loopback canary) may
/// cost on the same mix.
const HEALTH_MAX_OVERHEAD: f64 = 0.02;
/// Maximum fractional slowdown the metering plane (per-request cost
/// attribution) may cost on the same mix.
const METER_MAX_OVERHEAD: f64 = 0.02;
/// Minimum true-top-8 principals the meter sketch must recall on the
/// Zipf-skewed multi-principal workload (more principals than slots).
const METER_MIN_RECALL: usize = 7;

/// Simulated fsync latency for the durability workloads. In-memory and
/// tmpfs-backed files "sync" in microseconds, which hides what group
/// commit buys; real deployments pay hundreds of microseconds to
/// milliseconds per fsync (§VI runs against remote storage). 800 µs is
/// a modest local-SSD figure and is charged identically to both modes.
const DUR_FSYNC_US: u64 = 800;
/// Concurrent client sessions in the durability comparison.
const DUR_SESSIONS: usize = 8;
/// Minimum aggregate-throughput ratio (request-batched group commit vs
/// naive per-operation fsync) at [`DUR_SESSIONS`] sessions.
const DUR_MIN_SPEEDUP: f64 = 5.0;

/// One measured point of the durability comparison.
struct DurabilityPoint {
    mode: &'static str,
    ops_per_s: f64,
    fsyncs: u64,
    batches: u64,
}

/// Idle connections held concurrently in the c10k workload (the
/// paper's §VI serves many tenants from one enclave; the reactor must
/// hold a five-digit connection count without a five-digit thread
/// count). `--quick` scales this down.
const C10K_IDLE_CONNS: usize = 10_000;
/// Memory budget per held idle connection (resident-set growth divided
/// by connections). A reactor connection is a state-machine entry, two
/// bounded queues, and a pre-handshake session slot — tens of KiB, not
/// a thread stack (8 MiB default): the gate fails if idle connections
/// cost even 1 % of what threads would.
const C10K_MAX_IDLE_KIB_PER_CONN: f64 = 64.0;
/// Hard floor on reactor/threaded aggregate throughput at the
/// saturating session count. Both front ends drive the same enclave on
/// the same cores, so the ratio prices only the dispatch layer;
/// parity (~1.0x) is the measured norm and 0.90 is the scheduler-noise
/// guard band (same convention as the other throughput gates), still
/// low enough to fail any real dispatch-layer regression.
const C10K_MIN_SATURATION_RATIO: f64 = 0.90;
/// Session counts for the front-end scaling curve.
const C10K_CURVE: [usize; 4] = [1, 2, 4, 8];

/// One measured point of the front-end scaling curve.
struct C10kPoint {
    mode: &'static str,
    sessions: usize,
    ops_per_s: f64,
}

/// Evidence from the c10k workload: idle-connection memory footprint,
/// service quality at scale, and the saturation throughput comparison.
struct C10kEvidence {
    idle_conns: usize,
    /// Resident-set growth per held idle connection, in KiB
    /// (negative if `/proc/self/status` is unavailable).
    idle_kib_per_conn: f64,
    /// All held connections were simultaneously live on the reactor's
    /// own gauges (not just created).
    idle_all_live: bool,
    /// A full TLS session handshaked and served requests while the
    /// idle mass was held.
    responsive_at_scale: bool,
    curve: Vec<C10kPoint>,
    /// reactor / threaded aggregate ops/s at the saturating count.
    saturation_ratio: f64,
}

/// Resident set size in KiB from `/proc/self/status` (Linux), or
/// `None` where the file is absent.
fn rss_kib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse::<f64>().ok()
}

/// Runs `DUR_SESSIONS` concurrent sessions of 4 KiB uploads against a
/// WAL-backed rig and returns aggregate throughput plus the backend's
/// fsync/batch tallies. `batch` selects request batching + the group
/// commit thread (one sealed frame per request, fsyncs coalesced
/// across sessions) versus the naive durable baseline (every store
/// operation is its own synchronous commit frame and fsync).
fn run_durability_point(batch: bool, ops: usize, tag: &str) -> DurabilityPoint {
    let dir = std::env::temp_dir().join(format!("seg-bench-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("wal dir");
    let wal = seg_store::WalConfig {
        group_commit: batch,
        sim_fsync_us: DUR_FSYNC_US,
        ..seg_store::WalConfig::default()
    };
    // Paper-prototype feature set; whole-FS rollback stays off so the
    // comparison prices the durability plane, not counter batching.
    let rig = Rig::with_wal(
        EnclaveConfig {
            batch,
            ..EnclaveConfig::paper_prototype()
        },
        &dir,
        wal,
    );
    let payload: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let mut clients = Vec::with_capacity(DUR_SESSIONS);
    for t in 0..DUR_SESSIONS {
        let mut client = rig.client();
        let dir = format!("/s{t}");
        client.mkdir(&dir).expect("mkdir");
        clients.push((client, dir));
    }
    let base = rig.server.metrics_snapshot();
    let barrier = Barrier::new(DUR_SESSIONS + 1);
    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .map(|(mut client, dir)| {
                let barrier = &barrier;
                let payload = &payload;
                scope.spawn(move || {
                    barrier.wait();
                    for j in 0..ops {
                        client.put(&format!("{dir}/f{j}"), payload).expect("upload");
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().expect("worker thread");
        }
        start.elapsed().as_secs_f64()
    });
    let delta = rig.server.metrics_snapshot().delta(&base);
    let counter = |rendered: &str| delta.counter(rendered).unwrap_or(0);
    let point = DurabilityPoint {
        mode: if batch { "group_commit" } else { "naive_fsync" },
        ops_per_s: (DUR_SESSIONS * ops) as f64 / elapsed,
        fsyncs: counter("seg_store_fsyncs_total{store=\"content\"}"),
        batches: counter("seg_store_batches_total{store=\"content\"}"),
    };
    drop(rig);
    let _ = std::fs::remove_dir_all(&dir);
    point
}

fn run_durability(quick: bool) -> Vec<DurabilityPoint> {
    let ops = if quick { 8 } else { 16 };
    vec![
        run_durability_point(false, ops, "naive"),
        run_durability_point(true, ops, "group"),
    ]
}

/// The durability acceptance check: request batching plus group commit
/// must deliver at least [`DUR_MIN_SPEEDUP`]× the naive per-operation
/// fsync baseline's aggregate throughput at [`DUR_SESSIONS`] sessions.
/// Fsync-latency-bound by construction, so the bar holds on any host.
fn check_durability(points: &[DurabilityPoint]) -> Vec<String> {
    println!(
        "== durability (WAL backend, {DUR_SESSIONS} sessions, simulated fsync {DUR_FSYNC_US} µs) =="
    );
    for p in points {
        println!(
            "  {:<13} {:>7.1} ops/s  fsyncs={:<6} batches={}",
            p.mode, p.ops_per_s, p.fsyncs, p.batches,
        );
    }
    let find = |mode: &str| {
        points
            .iter()
            .find(|p| p.mode == mode)
            .expect("durability comparison covers this mode")
    };
    let naive = find("naive_fsync");
    let group = find("group_commit");
    let speedup = group.ops_per_s / naive.ops_per_s;
    println!(
        "  -> group commit vs per-op fsync at {DUR_SESSIONS} sessions: {speedup:.2}x \
         (gate: >= {DUR_MIN_SPEEDUP:.1}x)"
    );
    let mut failures = Vec::new();
    if speedup < DUR_MIN_SPEEDUP {
        failures.push(format!(
            "durability: group-commit/naive speedup at {DUR_SESSIONS} sessions is \
             {speedup:.2}x, below the {DUR_MIN_SPEEDUP:.1}x floor"
        ));
    }
    if group.batches == 0 {
        failures.push(
            "durability: the group-commit run sealed no batches — request batching \
             never engaged"
                .to_string(),
        );
    }
    failures
}

/// Runs `sessions` full client sessions against `rig` under whichever
/// front end is currently selected, each performing `ops` operations
/// (3:1 upload:download of 4 KiB files in a private directory), and
/// returns aggregate operations per second. Handshakes and directory
/// setup are outside the timed window; `round` keeps names unique.
fn run_c10k_point(rig: &Rig, sessions: usize, ops: usize, round: u32) -> f64 {
    let payload: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let mut clients = Vec::with_capacity(sessions);
    for t in 0..sessions {
        let mut client = rig.client();
        let dir = format!("/fe{round}x{t}");
        client.mkdir(&dir).expect("mkdir");
        clients.push((client, dir));
    }
    let barrier = Barrier::new(sessions + 1);
    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .map(|(mut client, dir)| {
                let barrier = &barrier;
                let payload = &payload;
                scope.spawn(move || {
                    barrier.wait();
                    for j in 0..ops {
                        if j % 4 == 3 {
                            let back = format!("{dir}/f{}", j - 1);
                            let got = client.get(&back).expect("download");
                            assert_eq!(got.len(), payload.len());
                        } else {
                            client.put(&format!("{dir}/f{j}"), payload).expect("upload");
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().expect("worker thread");
        }
        start.elapsed().as_secs_f64()
    });
    (sessions * ops) as f64 / elapsed
}

/// The c10k workload, in two acts.
///
/// **Idle hold**: open [`C10K_IDLE_CONNS`] reactor connections (each a
/// registered state machine with a live pre-handshake session slot —
/// exactly what a slow or momentarily quiet tenant costs) and keep
/// them all open at once, measuring resident-set growth per
/// connection. While the mass is held, one full TLS session must
/// handshake and serve requests — C10K means *service* at scale, not
/// just accepted sockets.
///
/// **Saturation**: the same 4 KiB put/get mix through full TLS
/// sessions under the reactor and under the thread-per-connection
/// front end, across [`C10K_CURVE`] session counts (best-of-`reps`
/// per point). The reactor replaces two threads per connection with a
/// fixed pool, and the gate demands it gives up none of the
/// throughput that simplicity bought.
fn run_c10k(quick: bool) -> C10kEvidence {
    let idle_conns = if quick {
        C10K_IDLE_CONNS / 5
    } else {
        C10K_IDLE_CONNS
    };
    let rig = Rig::new(EnclaveConfig {
        cache: true,
        ..EnclaveConfig::paper_prototype()
    });
    let reactor = rig.server.reactor();
    let stats = std::sync::Arc::clone(reactor.stats());

    // -- act 1: hold the idle mass --------------------------------
    let rss_before = rss_kib();
    let mut held = Vec::with_capacity(idle_conns);
    for _ in 0..idle_conns {
        held.push(reactor.connect_virtual().expect("idle connect"));
    }
    let deadline = Instant::now() + Duration::from_secs(60);
    while (stats.live_conns() as usize) < idle_conns && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let idle_all_live = stats.live_conns() as usize >= idle_conns;
    let idle_kib_per_conn = match (rss_before, rss_kib()) {
        (Some(before), Some(after)) => ((after - before) / idle_conns as f64).max(0.0),
        _ => -1.0,
    };
    // Service at scale: a fresh session handshakes and works while
    // every idle connection stays open.
    let responsive_at_scale = {
        let mut probe = rig.client();
        probe.mkdir("/c10k").is_ok()
            && probe.put("/c10k/probe", b"served at 10k").is_ok()
            && probe
                .get("/c10k/probe")
                .map(|b| b == b"served at 10k")
                .unwrap_or(false)
    };
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(60);
    while stats.live_conns() > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    // -- act 2: saturation curve, reactor vs thread-per-conn ------
    let reps = if quick { 2 } else { 3 };
    let ops = if quick { 16 } else { 32 };
    let mut curve = Vec::new();
    let mut round = 0u32;
    for (mode, front) in [
        ("reactor", segshare::FrontEnd::Reactor),
        ("threaded", segshare::FrontEnd::Threaded),
    ] {
        let rig = Rig::new(EnclaveConfig {
            cache: true,
            ..EnclaveConfig::paper_prototype()
        });
        rig.server.set_front_end(front);
        // Match the worker pool to the curve's session fan-out: the
        // threaded front end gets one thread per session for free, so
        // a core-count-sized pool would measure pool starvation, not
        // front-end overhead (the 1-core CI box defaults to 2).
        rig.server
            .set_reactor_config(seg_net::reactor::ReactorConfig {
                workers: *C10K_CURVE.last().expect("curve is non-empty"),
                ..seg_net::reactor::ReactorConfig::default()
            });
        for &sessions in &C10K_CURVE {
            // Best-of-reps: scheduler noise is one-sided (see
            // `run_concurrency`).
            let mut top = 0f64;
            for _ in 0..reps {
                round += 1;
                top = top.max(run_c10k_point(&rig, sessions, ops, round));
            }
            curve.push(C10kPoint {
                mode,
                sessions,
                ops_per_s: top,
            });
        }
    }
    let at = |mode: &str, sessions: usize| {
        curve
            .iter()
            .find(|p| p.mode == mode && p.sessions == sessions)
            .map_or(0.0, |p| p.ops_per_s)
    };
    let saturate = *C10K_CURVE.last().expect("curve is non-empty");
    let saturation_ratio =
        at("reactor", saturate) / at("threaded", saturate).max(f64::MIN_POSITIVE);

    C10kEvidence {
        idle_conns,
        idle_kib_per_conn,
        idle_all_live,
        responsive_at_scale,
        curve,
        saturation_ratio,
    }
}

/// The c10k acceptance checks: every idle connection live at once
/// within the per-connection memory budget, service during the hold,
/// and no throughput given up versus thread-per-connection.
fn check_c10k(e: &C10kEvidence) -> Vec<String> {
    println!("== c10k (reactor front end) ==");
    if e.idle_kib_per_conn >= 0.0 {
        println!(
            "  idle hold: {} conns live={} rss/conn={:.1} KiB (gate: <= {C10K_MAX_IDLE_KIB_PER_CONN:.0} KiB) responsive={}",
            e.idle_conns, e.idle_all_live, e.idle_kib_per_conn, e.responsive_at_scale,
        );
    } else {
        println!(
            "  idle hold: {} conns live={} rss/conn=n/a responsive={}",
            e.idle_conns, e.idle_all_live, e.responsive_at_scale,
        );
    }
    for &sessions in &C10K_CURVE {
        let find = |mode: &str| {
            e.curve
                .iter()
                .find(|p| p.mode == mode && p.sessions == sessions)
                .map_or(0.0, |p| p.ops_per_s)
        };
        println!(
            "  sessions={sessions} reactor={:7.1} ops/s  threaded={:7.1} ops/s  ({:.2}x)",
            find("reactor"),
            find("threaded"),
            find("reactor") / find("threaded").max(f64::MIN_POSITIVE),
        );
    }
    println!(
        "  -> reactor vs thread-per-conn at saturation: {:.2}x (gate: >= {C10K_MIN_SATURATION_RATIO:.2}x)",
        e.saturation_ratio,
    );
    let mut failures = Vec::new();
    if !e.idle_all_live {
        failures.push(format!(
            "c10k: fewer than {} idle connections were simultaneously live",
            e.idle_conns
        ));
    }
    if e.idle_kib_per_conn > C10K_MAX_IDLE_KIB_PER_CONN {
        failures.push(format!(
            "c10k: idle connections cost {:.1} KiB RSS each, above the \
             {C10K_MAX_IDLE_KIB_PER_CONN:.0} KiB budget",
            e.idle_kib_per_conn
        ));
    }
    if !e.responsive_at_scale {
        failures.push(format!(
            "c10k: a fresh TLS session failed to handshake and serve while \
             {} idle connections were held",
            e.idle_conns
        ));
    }
    if e.saturation_ratio < C10K_MIN_SATURATION_RATIO {
        failures.push(format!(
            "c10k: reactor throughput at saturation is {:.2}x the \
             thread-per-connection baseline, below the {C10K_MIN_SATURATION_RATIO:.2}x floor",
            e.saturation_ratio
        ));
    }
    failures
}

/// Windowed lock-wait attribution from one 8-thread fine-mode run:
/// the seg-watch evidence that overlapping scopes (and only they) pay
/// for the parent directory's write lock. This is the instrumented
/// answer to why the overlapping mix scales ~1.0× in the matrix above.
struct ContentionEvidence {
    mix: &'static str,
    /// Per (class, intent): windowed wait sum (ns) and acquisitions.
    waits: Vec<(String, String, u64, u64)>,
    /// Cumulative most-contended stripes after the run.
    top: Vec<segshare::enclave::locks::StripeContention>,
}

impl ContentionEvidence {
    fn wait_ns(&self, class: &str, intent: &str) -> u64 {
        self.waits
            .iter()
            .find(|(c, i, _, _)| c == class && i == intent)
            .map_or(0, |&(_, _, sum, _)| sum)
    }
}

/// Median wall-clock of the standard small-op probe with the watch
/// plane on versus off (adjacent order-alternated pairs, so clock and
/// scheduler drift charge both variants equally).
struct WatchOverheadEvidence {
    on_s: f64,
    off_s: f64,
}

impl WatchOverheadEvidence {
    fn overhead(&self) -> f64 {
        self.on_s / self.off_s - 1.0
    }
}

/// Same adjacent-pair-median comparison for the health plane, plus the
/// background work that demonstrably ran while the "on" probes were
/// being timed and the final declassified report (the CI artifact).
struct HealthOverheadEvidence {
    on_s: f64,
    off_s: f64,
    scrub_passes: u64,
    canary_probes: u64,
    report: String,
}

impl HealthOverheadEvidence {
    fn overhead(&self) -> f64 {
        self.on_s / self.off_s - 1.0
    }
}

/// Same adjacent-pair-median comparison for the metering plane.
struct MeterOverheadEvidence {
    on_s: f64,
    off_s: f64,
}

impl MeterOverheadEvidence {
    fn overhead(&self) -> f64 {
        self.on_s / self.off_s - 1.0
    }
}

/// Attribution evidence from the Zipf-skewed multi-principal run: how
/// well the bounded sketch recovered the true heaviest talkers while
/// tracking fewer slots than principals, plus the declassified report
/// (the CI artifact).
struct MeterAttributionEvidence {
    principals: usize,
    ops: u64,
    recalled_top8: usize,
    tracked: u64,
    evictions: u64,
    report: String,
}

/// The enclave configuration for the scaling workloads: audit off
/// (the hash-chained trail is inherently serial — every record extends
/// one chain head) and the per-file rollback tree off (each commit
/// updates shared ancestor records under the store-wide tree lock).
/// Both serializations are honest properties of those features, and
/// both are reported separately; this config isolates the dispatch
/// layer the [`segshare::enclave::locks::LockManager`] parallelized.
fn concurrency_config() -> EnclaveConfig {
    EnclaveConfig {
        audit: false,
        cache: true,
        rollback_individual: false,
        rollback_whole_fs: false,
        ..EnclaveConfig::paper_prototype()
    }
}

/// Runs `threads` client sessions against `rig`, each performing
/// `ops` operations (3:1 upload:download of 4 KiB files), and returns
/// aggregate operations per second. `shared_dir` selects the
/// overlapping mix (every session writes into one directory, so all
/// scopes collide on the parent's write lock) versus the disjoint mix
/// (a private directory per session). Sessions, handshakes, and
/// directory creation happen outside the timed window; `round` keeps
/// object names unique across repetitions.
fn run_concurrency_point(
    rig: &Rig,
    coarse: bool,
    threads: usize,
    ops: usize,
    shared_dir: bool,
    round: u32,
) -> f64 {
    rig.server.enclave().locks().set_coarse(coarse);
    let payload: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();

    let mut clients = Vec::with_capacity(threads);
    for t in 0..threads {
        let mut client = rig.client();
        let dir = if shared_dir {
            format!("/shared{round}")
        } else {
            format!("/c{round}x{t}")
        };
        if !shared_dir || t == 0 {
            client.mkdir(&dir).expect("mkdir");
        }
        clients.push((client, dir));
    }

    let barrier = Barrier::new(threads + 1);
    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = clients
            .into_iter()
            .enumerate()
            .map(|(t, (mut client, dir))| {
                let barrier = &barrier;
                let payload = &payload;
                scope.spawn(move || {
                    barrier.wait();
                    for j in 0..ops {
                        let path = format!("{dir}/t{t}f{j}");
                        if j % 4 == 3 {
                            // Re-read a file this session already wrote.
                            let back = format!("{dir}/t{t}f{}", j - 1);
                            let got = client.get(&back).expect("download");
                            assert_eq!(got.len(), payload.len());
                        } else {
                            client.put(&path, payload).expect("upload");
                        }
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().expect("worker thread");
        }
        start.elapsed().as_secs_f64()
    });
    (threads * ops) as f64 / elapsed
}

/// Measures the full scaling matrix: disjoint-directory mix at 1/2/4/8
/// threads under both lock modes, the overlapping mix at 8 threads, and
/// (on a separate rig) the rollback-tree-enabled mix at 8 threads so
/// the tree's commit serialization is quantified rather than hidden.
fn run_concurrency(reps: usize, ops: usize) -> Vec<ConcurrencyPoint> {
    let mut points = Vec::new();
    let mut round = 0u32;
    let mut best = |rig: &Rig,
                    mix: &'static str,
                    mode: &'static str,
                    coarse: bool,
                    threads: usize,
                    round: &mut u32| {
        // Best-of-reps: throughput noise is one-sided (scheduler stalls
        // only ever slow a run down), so the max is the stable estimate.
        let mut top = 0f64;
        for _ in 0..reps {
            *round += 1;
            top = top.max(run_concurrency_point(
                rig,
                coarse,
                threads,
                ops,
                mix == "overlapping",
                *round,
            ));
        }
        points.push(ConcurrencyPoint {
            mix,
            mode,
            threads,
            ops_per_s: top,
        });
    };

    let rig = Rig::with_store_latency(concurrency_config(), CONC_STORE_DELAY);
    for threads in [1usize, 2, 4, 8] {
        best(&rig, "disjoint", "coarse", true, threads, &mut round);
        best(&rig, "disjoint", "fine", false, threads, &mut round);
    }
    best(&rig, "overlapping", "coarse", true, 8, &mut round);
    best(&rig, "overlapping", "fine", false, 8, &mut round);

    // Same mix with the per-file rollback tree on: commits serialize on
    // the content store's tree lock (ancestor hash-record RMW), so this
    // bounds what dispatch-level parallelism is worth under §V-D.
    let tree_rig = Rig::with_store_latency(
        EnclaveConfig {
            rollback_individual: true,
            ..concurrency_config()
        },
        CONC_STORE_DELAY,
    );
    best(&tree_rig, "disjoint_tree", "coarse", true, 8, &mut round);
    best(&tree_rig, "disjoint_tree", "fine", false, 8, &mut round);

    points
}

/// Finds one measured point (panics if the matrix is missing it).
fn conc_point<'a>(
    points: &'a [ConcurrencyPoint],
    mix: &str,
    mode: &str,
    threads: usize,
) -> &'a ConcurrencyPoint {
    points
        .iter()
        .find(|p| p.mix == mix && p.mode == mode && p.threads == threads)
        .expect("concurrency matrix covers this point")
}

fn print_concurrency(points: &[ConcurrencyPoint]) {
    println!(
        "== concurrency (store round-trip {} µs, 3:1 put:get of 4 KiB) ==",
        CONC_STORE_DELAY.as_micros()
    );
    for threads in [1usize, 2, 4, 8] {
        let coarse = conc_point(points, "disjoint", "coarse", threads);
        let fine = conc_point(points, "disjoint", "fine", threads);
        println!(
            "  disjoint      threads={threads} coarse={:7.1} ops/s  fine={:7.1} ops/s  ({:.2}x)",
            coarse.ops_per_s,
            fine.ops_per_s,
            fine.ops_per_s / coarse.ops_per_s,
        );
    }
    for mix in ["overlapping", "disjoint_tree"] {
        let coarse = conc_point(points, mix, "coarse", 8);
        let fine = conc_point(points, mix, "fine", 8);
        println!(
            "  {mix:<13} threads=8 coarse={:7.1} ops/s  fine={:7.1} ops/s  ({:.2}x)",
            coarse.ops_per_s,
            fine.ops_per_s,
            fine.ops_per_s / coarse.ops_per_s,
        );
    }
}

/// The concurrency acceptance check: per-object locking must deliver at
/// least [`CONC_MIN_SPEEDUP`]× the coarse global lock's aggregate
/// throughput at 8 threads on the disjoint mix. Store-latency-bound by
/// construction, so the bar holds on any host core count.
fn check_concurrency(points: &[ConcurrencyPoint]) -> Vec<String> {
    let coarse = conc_point(points, "disjoint", "coarse", 8);
    let fine = conc_point(points, "disjoint", "fine", 8);
    let speedup = fine.ops_per_s / coarse.ops_per_s;
    println!(
        "  -> per-object locks vs global lock at 8 threads (disjoint): {speedup:.2}x (gate: >= {CONC_MIN_SPEEDUP:.1}x)"
    );
    if speedup >= CONC_MIN_SPEEDUP {
        Vec::new()
    } else {
        vec![format!(
            "concurrency: fine/coarse speedup at 8 threads is {speedup:.2}x, below the {CONC_MIN_SPEEDUP:.1}x floor"
        )]
    }
}

/// Runs the overlapping and disjoint mixes once each (8 threads, fine
/// locks) with a metrics-snapshot delta around every run, and extracts
/// the `seg_lock_wait_ns` series from each window.
fn run_contention_evidence(rig: &Rig, ops: usize, round: &mut u32) -> Vec<ContentionEvidence> {
    let mut evidence = Vec::new();
    for (mix, shared_dir) in [("overlapping", true), ("disjoint", false)] {
        let base = rig.server.metrics_snapshot();
        *round += 1;
        run_concurrency_point(rig, false, 8, ops, shared_dir, *round);
        let delta = rig.server.metrics_snapshot().delta(&base);
        let mut waits: Vec<(String, String, u64, u64)> = delta
            .histograms
            .iter()
            .filter(|(id, s)| id.name() == "seg_lock_wait_ns" && s.count > 0)
            .map(|(id, s)| {
                let label = |key: &str| {
                    id.labels()
                        .iter()
                        .find(|&&(k, _)| k == key)
                        .map_or("?", |&(_, v)| v)
                        .to_string()
                };
                (label("class"), label("intent"), s.sum, s.count)
            })
            .collect();
        waits.sort_by_key(|w| std::cmp::Reverse(w.2));
        evidence.push(ContentionEvidence {
            mix,
            waits,
            top: rig.server.enclave().locks().contended_stripes(8),
        });
    }
    evidence
}

fn print_contention(evidence: &[ContentionEvidence]) {
    println!("== contention attribution (8 threads, fine locks) ==");
    for e in evidence {
        println!("  {} mix:", e.mix);
        for (class, intent, sum, count) in &e.waits {
            println!(
                "    wait {class:<11} {intent:<5} {:>9.2} ms over {count} acquisitions",
                *sum as f64 / 1e6
            );
        }
        if let Some(top) = e.top.first() {
            println!(
                "    hottest stripe #{} with {:.2} ms cumulative wait",
                top.stripe,
                top.wait_ns as f64 / 1e6
            );
        }
    }
}

/// The contention acceptance check: the overlapping mix must show
/// substantial, attributable wait on the path key class while the
/// disjoint mix (same op count) stays far below it.
fn check_contention(evidence: &[ContentionEvidence]) -> Vec<String> {
    let wait = |mix: &str| {
        evidence
            .iter()
            .find(|e| e.mix == mix)
            .map_or(0, |e| e.wait_ns("path", "write"))
    };
    let overlapping = wait("overlapping");
    let disjoint = wait("disjoint");
    let ratio = overlapping as f64 / disjoint.max(1) as f64;
    println!(
        "  -> path-class write wait: overlapping {:.2} ms vs disjoint {:.2} ms ({ratio:.1}x; \
         gate: >= {:.0} ms and >= {CONTENTION_MIN_RATIO:.0}x)",
        overlapping as f64 / 1e6,
        disjoint as f64 / 1e6,
        CONTENTION_MIN_WAIT_NS as f64 / 1e6,
    );
    let mut failures = Vec::new();
    if overlapping < CONTENTION_MIN_WAIT_NS {
        failures.push(format!(
            "contention: overlapping path-write wait {:.2} ms is below the {:.0} ms floor",
            overlapping as f64 / 1e6,
            CONTENTION_MIN_WAIT_NS as f64 / 1e6,
        ));
    }
    if ratio < CONTENTION_MIN_RATIO {
        failures.push(format!(
            "contention: overlapping/disjoint path-write wait ratio {ratio:.1}x is below \
             {CONTENTION_MIN_RATIO:.0}x — lock wait is not attributed to the contended class"
        ));
    }
    failures
}

/// Measures the watch plane's cost on the standard small-op mix.
///
/// The effect is far smaller than coarse-batch jitter, so the
/// measurement is paired at the *operation* level: each probe runs the
/// same stationary op (overwrite-put + get of fixed 4 KiB files —
/// creating files would grow the directory and skew later probes) once
/// with the plane on and once off, adjacent in time and with the order
/// alternating, so frequency and scheduler drift charge both variants
/// equally. Medians over all pairs make single stalled ops irrelevant.
fn run_watch_overhead(
    rig: &Rig,
    client: &mut segshare::Client<seg_net::ChannelTransport>,
    pairs: usize,
) -> WatchOverheadEvidence {
    let p4k: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    client.put("/watch-probe", &p4k).expect("prefill");
    client.put("/watch-probe-w", &p4k).expect("prefill");
    let probe = |client: &mut segshare::Client<seg_net::ChannelTransport>| {
        let start = Instant::now();
        client.put("/watch-probe-w", &p4k).expect("upload");
        let got = client.get("/watch-probe").expect("download");
        assert_eq!(got.len(), p4k.len());
        start.elapsed().as_secs_f64()
    };
    for _ in 0..16 {
        probe(client); // warmup, untimed
    }
    let mut on_times = Vec::with_capacity(pairs);
    let mut off_times = Vec::with_capacity(pairs);
    for i in 0..pairs {
        for flip in [false, true] {
            let on = (i % 2 == 0) ^ flip;
            rig.server.set_watch(on);
            let elapsed = probe(client);
            if on {
                on_times.push(elapsed);
            } else {
                off_times.push(elapsed);
            }
        }
    }
    rig.server.set_watch(true);
    let median = |times: &mut Vec<f64>| {
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    WatchOverheadEvidence {
        on_s: median(&mut on_times),
        off_s: median(&mut off_times),
    }
}

/// Measures the health plane's cost on the standard small-op mix.
///
/// A dedicated rig: the workload rig's paper-prototype config disables
/// the scrubber (`scrub_interval_us: 0`), and the point here is to
/// price the *whole* plane — so the background runner ticks every 5 ms
/// against a 50 ms scrub cadence with the loopback canary firing every
/// 100 ms, all live while the "on" probes are timed. That is still
/// 20× the default 1 s scrub cadence, so the measurement bounds any
/// production setting without letting the background duty cycle drown
/// the paired probes on a single-core runner. The off/on pairing is
/// the same operation-level, order-alternated median scheme as
/// [`run_watch_overhead`]: `set_health(false)` makes the runner's
/// ticks, samples, and canary no-ops without stopping the thread.
fn run_health_overhead(pairs: usize) -> HealthOverheadEvidence {
    let rig = Rig::new(EnclaveConfig {
        scrub_interval_us: 50_000,
        ..EnclaveConfig::paper_prototype()
    });
    let canary = rig
        .setup
        .enroll_user("canary", "canary@bench", "Canary")
        .expect("enroll canary");
    rig.server.start_health(segshare::HealthOptions {
        canary: Some(canary),
        tick_us: 5_000,
        canary_interval_us: 100_000,
    });
    let mut client = rig.client();
    let p4k: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    client.put("/health-probe", &p4k).expect("prefill");
    client.put("/health-probe-w", &p4k).expect("prefill");
    let probe = |client: &mut segshare::Client<seg_net::ChannelTransport>| {
        let start = Instant::now();
        client.put("/health-probe-w", &p4k).expect("upload");
        let got = client.get("/health-probe").expect("download");
        assert_eq!(got.len(), p4k.len());
        start.elapsed().as_secs_f64()
    };
    for _ in 0..16 {
        probe(&mut client); // warmup, untimed
    }
    let mut on_times = Vec::with_capacity(pairs);
    let mut off_times = Vec::with_capacity(pairs);
    for i in 0..pairs {
        for flip in [false, true] {
            let on = (i % 2 == 0) ^ flip;
            rig.server.set_health(on);
            let elapsed = probe(&mut client);
            if on {
                on_times.push(elapsed);
            } else {
                off_times.push(elapsed);
            }
        }
    }
    rig.server.set_health(true);
    // The report artifact should carry at least one completed pass over
    // the probe namespace; the aggressive cadence makes this quick.
    let deadline = Instant::now() + Duration::from_secs(30);
    while rig.server.enclave().health().scrub_passes() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    rig.server.stop_health();
    let health = rig.server.enclave().health();
    assert_eq!(
        health.findings_total(),
        0,
        "the gate's untampered rig must scrub clean"
    );
    let median = |times: &mut Vec<f64>| {
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    HealthOverheadEvidence {
        on_s: median(&mut on_times),
        off_s: median(&mut off_times),
        scrub_passes: health.scrub_passes(),
        canary_probes: health.canary_probes(),
        report: rig.server.health_report(),
    }
}

/// Measures the metering plane's cost on the standard small-op mix —
/// the same operation-level, order-alternated median scheme as
/// [`run_watch_overhead`]: `set_meter(false)` reduces the per-request
/// cost to one relaxed atomic load, while "on" pays the full counter
/// sweep, operand HMACs, and sketch update.
fn run_meter_overhead(
    rig: &Rig,
    client: &mut segshare::Client<seg_net::ChannelTransport>,
    pairs: usize,
) -> MeterOverheadEvidence {
    let p4k: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    client.put("/meter-probe", &p4k).expect("prefill");
    client.put("/meter-probe-w", &p4k).expect("prefill");
    let probe = |client: &mut segshare::Client<seg_net::ChannelTransport>| {
        let start = Instant::now();
        client.put("/meter-probe-w", &p4k).expect("upload");
        let got = client.get("/meter-probe").expect("download");
        assert_eq!(got.len(), p4k.len());
        start.elapsed().as_secs_f64()
    };
    for _ in 0..16 {
        probe(client); // warmup, untimed
    }
    let mut on_times = Vec::with_capacity(pairs);
    let mut off_times = Vec::with_capacity(pairs);
    for i in 0..pairs {
        for flip in [false, true] {
            let on = (i % 2 == 0) ^ flip;
            rig.server.set_meter(on);
            let elapsed = probe(client);
            if on {
                on_times.push(elapsed);
            } else {
                off_times.push(elapsed);
            }
        }
    }
    rig.server.set_meter(true);
    let median = |times: &mut Vec<f64>| {
        times.sort_by(f64::total_cmp);
        times[times.len() / 2]
    };
    MeterOverheadEvidence {
        on_s: median(&mut on_times),
        off_s: median(&mut off_times),
    }
}

/// Runs a Zipf(1.0)-skewed multi-principal workload — more enrolled
/// principals than the sketch has slots — and checks the meter's
/// recall of the true heaviest talkers. Op budgets are deterministic
/// (rank r gets a share ∝ 1/r), so the true top-8 is principals 0–7 by
/// construction and recall needs no reference sketch.
fn run_meter_attribution(quick: bool) -> MeterAttributionEvidence {
    let rig = Rig::new(EnclaveConfig::paper_prototype());
    let principals = if quick { 80 } else { 96 };
    let total_ops = if quick { 800 } else { 1600 };
    let weights: Vec<f64> = (1..=principals).map(|r| 1.0 / r as f64).collect();
    let wsum: f64 = weights.iter().sum();
    let p4k: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
    let mut expected_top8 = Vec::new();
    let mut total = 0u64;
    for (i, w) in weights.iter().enumerate() {
        let ops = ((total_ops as f64 * w / wsum).round() as usize).max(1);
        let name = format!("tenant{i:03}");
        let user = rig
            .setup
            .enroll_user(&name, &format!("{name}@bench"), &name)
            .expect("enroll tenant");
        let mut client = rig.server.connect_local(&user).expect("connect tenant");
        let dir = format!("/t{i:03}");
        client.mkdir(&dir).expect("mkdir");
        for j in 0..ops {
            if j % 3 == 2 {
                let back = format!("{dir}/f{}", j - 1);
                let got = client.get(&back).expect("download");
                assert_eq!(got.len(), p4k.len());
            } else {
                client.put(&format!("{dir}/f{j}"), &p4k).expect("upload");
            }
        }
        total += ops as u64 + 1; // +1 for the mkdir
        if i < 8 {
            let uid = seg_fs::UserId::new(&name).expect("valid id");
            expected_top8.push(rig.server.enclave().fingerprint_user(&uid));
        }
    }
    let meter = rig.server.enclave().meter();
    let reported: Vec<u64> = meter.top_principals(8).iter().map(|s| s.fp).collect();
    let recalled = expected_top8
        .iter()
        .filter(|fp| reported.contains(fp))
        .count();
    let stats = meter.stats();
    MeterAttributionEvidence {
        principals,
        ops: total,
        recalled_top8: recalled,
        tracked: stats.principals.tracked,
        evictions: stats.principals.evictions,
        report: rig.server.meter_report(),
    }
}

fn check_meter_overhead(meter: &MeterOverheadEvidence) -> Vec<String> {
    let overhead = meter.overhead();
    println!(
        "== meter plane overhead == on={} off={} ({:+.2}%; gate: <= {:.0}%)",
        fmt_s(meter.on_s),
        fmt_s(meter.off_s),
        overhead * 100.0,
        METER_MAX_OVERHEAD * 100.0,
    );
    if overhead <= METER_MAX_OVERHEAD {
        Vec::new()
    } else {
        vec![format!(
            "meter: plane overhead {:.2}% exceeds the {:.0}% budget",
            overhead * 100.0,
            METER_MAX_OVERHEAD * 100.0,
        )]
    }
}

fn check_meter_attribution(attr: &MeterAttributionEvidence) -> Vec<String> {
    println!(
        "== meter attribution == {} principals, {} ops (Zipf 1.0): \
         recalled {}/8 true top talkers, {} tracked slots, {} evictions \
         (gate: >= {METER_MIN_RECALL}/8, tracked <= {})",
        attr.principals,
        attr.ops,
        attr.recalled_top8,
        attr.tracked,
        attr.evictions,
        seg_obs::METER_SLOTS,
    );
    let mut failures = Vec::new();
    if attr.recalled_top8 < METER_MIN_RECALL {
        failures.push(format!(
            "meter: sketch recalled only {}/8 true top talkers (floor {METER_MIN_RECALL})",
            attr.recalled_top8,
        ));
    }
    if attr.tracked > seg_obs::METER_SLOTS as u64 {
        failures.push(format!(
            "meter: {} tracked slots exceed the {} cardinality bound",
            attr.tracked,
            seg_obs::METER_SLOTS,
        ));
    }
    if attr.evictions == 0 {
        failures.push(format!(
            "meter: no evictions despite {} principals over {} slots — the workload \
             never exercised the bounded-memory path",
            attr.principals,
            seg_obs::METER_SLOTS,
        ));
    }
    failures
}

fn check_health_overhead(health: &HealthOverheadEvidence) -> Vec<String> {
    let overhead = health.overhead();
    println!(
        "== health plane overhead == on={} off={} ({:+.2}%; gate: <= {:.0}%) \
         [{} scrub passes, {} canary probes during run]",
        fmt_s(health.on_s),
        fmt_s(health.off_s),
        overhead * 100.0,
        HEALTH_MAX_OVERHEAD * 100.0,
        health.scrub_passes,
        health.canary_probes,
    );
    if overhead <= HEALTH_MAX_OVERHEAD {
        Vec::new()
    } else {
        vec![format!(
            "health: plane overhead {:.2}% exceeds the {:.0}% budget",
            overhead * 100.0,
            HEALTH_MAX_OVERHEAD * 100.0,
        )]
    }
}

fn check_watch_overhead(watch: &WatchOverheadEvidence) -> Vec<String> {
    let overhead = watch.overhead();
    println!(
        "== watch plane overhead == on={} off={} ({:+.2}%; gate: <= {:.0}%)",
        fmt_s(watch.on_s),
        fmt_s(watch.off_s),
        overhead * 100.0,
        WATCH_MAX_OVERHEAD * 100.0,
    );
    if overhead <= WATCH_MAX_OVERHEAD {
        Vec::new()
    } else {
        vec![format!(
            "watch: plane overhead {:.2}% exceeds the {:.0}% budget",
            overhead * 100.0,
            WATCH_MAX_OVERHEAD * 100.0,
        )]
    }
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let quick = arg_flag("--quick");
    let update_baseline = arg_flag("--update-baseline");
    let runs = if quick { 3 } else { 10 };

    let local_mbps = local_gcm_mbps();
    println!("== perf gate ==");
    println!(
        "local software GCM: {local_mbps:.0} MB/s (normalizing to {HW_GCM_MBPS:.0} MB/s hardware)"
    );

    let rig = Rig::new(EnclaveConfig::paper_prototype());
    rig.setup
        .enroll_user("bob", "bob@bench", "Bob")
        .expect("enroll succeeds");
    let mut client = rig.client();

    let payload = |bytes: usize| -> Vec<u8> { (0..bytes).map(|i| (i % 251) as u8).collect() };
    let p10k = payload(10_000);
    let p100k = payload(100_000);
    let p1m = payload(1_000_000);

    // Download probes are prefilled outside the measured window.
    client.put("/dl100k", &p100k).expect("prefill succeeds");
    client.put("/dl1m", &p1m).expect("prefill succeeds");

    let mut results: Vec<WorkloadResult> = Vec::new();
    let mut push = |name: &'static str, measured: Measured| {
        let norm_mean_s = normalize_processing(measured.mean_s, local_mbps);
        let norm_ci95_s = normalize_processing(measured.ci95_s(), local_mbps);
        println!(
            "  {name:<18} mean={:<10} ci95={:<10} warmup={:<10} norm={}",
            fmt_s(measured.mean_s),
            fmt_s(measured.ci95_s()),
            fmt_s(measured.warmup_s),
            fmt_s(norm_mean_s),
        );
        results.push(WorkloadResult {
            name,
            measured,
            norm_mean_s,
            norm_ci95_s,
        });
    };

    let mut i = 0u32;
    push(
        "upload_10k",
        measure(runs, || {
            i += 1;
            client.put(&format!("/u10k-{i}"), &p10k).expect("upload");
        }),
    );
    push(
        "upload_100k",
        measure(runs, || {
            i += 1;
            client.put(&format!("/u100k-{i}"), &p100k).expect("upload");
        }),
    );
    push(
        "upload_1m",
        measure(runs, || {
            i += 1;
            client.put(&format!("/u1m-{i}"), &p1m).expect("upload");
        }),
    );
    push(
        "download_100k",
        measure(runs, || {
            let got = client.get("/dl100k").expect("download");
            assert_eq!(got.len(), p100k.len());
        }),
    );
    push(
        "download_1m",
        measure(runs, || {
            let got = client.get("/dl1m").expect("download");
            assert_eq!(got.len(), p1m.len());
        }),
    );
    // Group membership update (add_u) and immediate revocation (rmv_u):
    // each iteration rewrites the member list through the full
    // Protected-FS + rollback-tree path. The group is seeded with a
    // file permission so revocation exercises a real sharing state.
    client.add_user("bob", "gm").expect("seed group");
    client
        .set_perm("/dl100k", "gm", Perm::Read)
        .expect("seed perm");
    push(
        "membership_update",
        measure(runs, || {
            client.add_user("bob", "gm").expect("add_user");
        }),
    );
    push(
        "revocation",
        measure(runs, || {
            client.remove_user("bob", "gm").expect("remove_user");
        }),
    );

    // Metadata-hot mix, run with the object cache off and on: each
    // iteration downloads a small file at the bottom of a deep
    // directory path (every level contributes hash-record reads to
    // tree validation, plus ACL and member-list fetches) interleaved
    // with fig4-style membership churn. Both variants are gated
    // workloads; the decrypt/store-read reductions are reported in the
    // "cache" section of BENCH_perf.json.
    let mut cache_evidence: Vec<CacheEvidence> = Vec::new();
    for (name, cache) in [
        ("metadata_hot_nocache", false),
        ("metadata_hot_cached", true),
    ] {
        let rig = Rig::new(EnclaveConfig {
            cache,
            ..EnclaveConfig::paper_prototype()
        });
        rig.setup
            .enroll_user("bob", "bob@bench", "Bob")
            .expect("enroll succeeds");
        let mut client = rig.client();
        for dir in ["/deep", "/deep/a", "/deep/a/b", "/deep/a/b/c"] {
            client.mkdir(dir).expect("mkdir");
        }
        client.put("/deep/a/b/c/hot", &p10k).expect("prefill");
        client.add_user("bob", "churn").expect("seed group");
        client
            .set_perm("/deep/a/b/c/hot", "churn", Perm::Read)
            .expect("seed perm");

        let base = rig.server.metrics_snapshot();
        let measured = measure(runs, || {
            for _ in 0..8 {
                let got = client.get("/deep/a/b/c/hot").expect("download");
                assert_eq!(got.len(), p10k.len());
            }
            client.add_user("bob", "churn").expect("add_user");
            client.remove_user("bob", "churn").expect("remove_user");
        });
        let delta = rig.server.metrics_snapshot().delta(&base);
        let counter = |rendered: &str| delta.counter(rendered).unwrap_or(0);
        cache_evidence.push(CacheEvidence {
            name,
            cache,
            pfs_decrypts: delta.histogram("seg_pfs_decrypt_ns").map_or(0, |h| h.count),
            store_gets: counter("seg_store_ops_total{op=\"get\",store=\"content\"}")
                + counter("seg_store_ops_total{op=\"get\",store=\"group\"}")
                + counter("seg_store_ops_total{op=\"get\",store=\"dedup\"}"),
            hits: counter("seg_cache_hits_total"),
            misses: counter("seg_cache_misses_total"),
            fills: counter("seg_cache_fills_total"),
        });
        push(name, measured);
    }
    print_cache_evidence(&cache_evidence);

    // Watch-plane overhead: the always-on contention/saturation plane
    // must stay within its budget on the standard small-op mix.
    let watch_overhead = run_watch_overhead(&rig, &mut client, if quick { 300 } else { 800 });
    let mut failures = check_watch_overhead(&watch_overhead);

    // Health-plane overhead: same pairing scheme, on a dedicated rig
    // with the scrubber, rollups, and canary all running (see
    // `run_health_overhead`).
    let health_overhead = run_health_overhead(if quick { 300 } else { 800 });
    failures.extend(check_health_overhead(&health_overhead));

    // Meter-plane overhead on the same mix, then the Zipf-skewed
    // multi-principal attribution run on a dedicated rig (see
    // `run_meter_attribution`).
    let meter_overhead = run_meter_overhead(&rig, &mut client, if quick { 300 } else { 800 });
    failures.extend(check_meter_overhead(&meter_overhead));
    let meter_attr = run_meter_attribution(quick);
    failures.extend(check_meter_attribution(&meter_attr));

    // Durability comparison: request-batched group commit vs naive
    // per-operation fsync, both on WAL-backed rigs with the same
    // simulated fsync cost (see `run_durability_point`).
    let dur_points = run_durability(quick);
    failures.extend(check_durability(&dur_points));

    // The c10k workload: 10k held idle reactor connections with
    // bounded memory and live service, then the reactor-vs-threaded
    // saturation curve (see `run_c10k`).
    let c10k = run_c10k(quick);
    failures.extend(check_c10k(&c10k));

    // Thread-scaling matrix: per-object locks vs the coarse global
    // lock, on a store-latency-bound rig (see `run_concurrency`).
    let conc_points = run_concurrency(if quick { 2 } else { 3 }, if quick { 8 } else { 12 });
    print_concurrency(&conc_points);
    failures.extend(check_concurrency(&conc_points));

    // Lock-wait attribution on a fresh store-latency-bound rig: the
    // seg-watch explanation for the overlapping mix's flat scaling.
    let conc_rig = Rig::with_store_latency(concurrency_config(), CONC_STORE_DELAY);
    let mut round = 0u32;
    let contention = run_contention_evidence(&conc_rig, if quick { 8 } else { 12 }, &mut round);
    print_contention(&contention);
    failures.extend(check_contention(&contention));

    // Declassified aggregates for the report (explicit enclave exits).
    let snapshot = rig.server.metrics_snapshot();
    let profile = rig.server.profile_snapshot();

    let root = repo_root();
    let report = build_report(
        &results,
        local_mbps,
        &snapshot,
        &profile,
        &cache_evidence,
        &conc_points,
        &contention,
        &dur_points,
        &c10k,
        &watch_overhead,
        &health_overhead,
        &meter_overhead,
        &meter_attr,
    );
    let report_path = root.join("BENCH_perf.json");
    std::fs::write(&report_path, &report).expect("write BENCH_perf.json");
    println!("wrote {}", report_path.display());

    std::fs::create_dir_all(root.join("results")).expect("results dir");
    let collapsed_path = root.join("results/flame_perf.txt");
    std::fs::write(&collapsed_path, profile.to_collapsed()).expect("write collapsed flamegraph");
    println!(
        "wrote {} (flamegraph-collapsed; render with flamegraph.pl)",
        collapsed_path.display()
    );

    // The contention rig's correlated watch bundle: flight frames over
    // the contended runs, lock top-K, trace tail, profile — the
    // artifact CI uploads next to BENCH_perf.json.
    let flight_path = root.join("results/watch_flight.json");
    std::fs::write(&flight_path, conc_rig.server.watch_report()).expect("write watch_flight.json");
    println!(
        "wrote {} (watch-plane correlated bundle)",
        flight_path.display()
    );

    // The health rig's declassified report: verdict, scrub tallies,
    // canary stats, SLO status, retention rings — uploaded by CI.
    let health_path = root.join("results/health_report.json");
    std::fs::write(&health_path, &health_overhead.report).expect("write health_report.json");
    println!("wrote {} (health-plane report)", health_path.display());

    // The attribution rig's declassified meter report: top-K talkers,
    // heaviest groups, hottest prefixes, fairness split — uploaded by
    // CI next to the other plane artifacts.
    let meter_path = root.join("results/meter_report.json");
    std::fs::write(&meter_path, &meter_attr.report).expect("write meter_report.json");
    println!("wrote {} (meter-plane report)", meter_path.display());

    let baseline_path = root.join("results/bench_baseline.json");
    if update_baseline {
        std::fs::write(&baseline_path, build_baseline(&results, local_mbps))
            .expect("write baseline");
        println!("wrote {} (baseline refreshed)", baseline_path.display());
    } else if let Ok(baseline_text) = std::fs::read_to_string(&baseline_path) {
        let baseline = json::parse(&baseline_text).expect("baseline parses");
        failures.extend(check_gate(&results, &baseline));
    } else {
        println!(
            "no baseline at {} — run with --update-baseline to create one (regression gate passes vacuously)",
            baseline_path.display()
        );
    }
    if failures.is_empty() {
        println!(
            "perf gate PASSED ({} workloads + concurrency)",
            results.len()
        );
    } else {
        for f in &failures {
            println!("perf gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// Prints the off/on comparison of the metadata-hot runs: the cache's
/// acceptance evidence is a measurable drop in GCM invocations and
/// untrusted-store reads, not just wall-clock.
fn print_cache_evidence(evidence: &[CacheEvidence]) {
    for e in evidence {
        if e.cache {
            println!(
                "  {:<22} pfs_decrypts={:<6} store_gets={:<6} hits={} misses={} fills={} hit_ratio={:.1}%",
                e.name,
                e.pfs_decrypts,
                e.store_gets,
                e.hits,
                e.misses,
                e.fills,
                e.hit_ratio() * 100.0,
            );
        } else {
            println!(
                "  {:<22} pfs_decrypts={:<6} store_gets={:<6}",
                e.name, e.pfs_decrypts, e.store_gets,
            );
        }
    }
    let (Some(off), Some(on)) = (
        evidence.iter().find(|e| !e.cache),
        evidence.iter().find(|e| e.cache),
    ) else {
        return;
    };
    let drop_pct = |off: u64, on: u64| {
        if off == 0 {
            0.0
        } else {
            (1.0 - on as f64 / off as f64) * 100.0
        }
    };
    println!(
        "  -> cache removes {:.1}% of GCM invocations and {:.1}% of store reads on the metadata-hot mix",
        drop_pct(off.pfs_decrypts, on.pfs_decrypts),
        drop_pct(off.store_gets, on.store_gets),
    );
}

/// Compares each workload's normalized mean against the baseline.
/// Returns human-readable failure lines (empty = pass).
fn check_gate(results: &[WorkloadResult], baseline: &Json) -> Vec<String> {
    let mut failures = Vec::new();
    let Some(ops) = baseline.get("ops").and_then(Json::as_obj) else {
        return vec!["baseline has no \"ops\" object".to_string()];
    };
    for r in results {
        let Some(base) = ops.get(r.name) else {
            println!(
                "  {:<18} new workload (no baseline entry) — skipped",
                r.name
            );
            continue;
        };
        let base_mean = base
            .get("norm_mean_s")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let base_ci = base.get("ci95_s").and_then(Json::as_f64).unwrap_or(0.0);
        if base_mean <= 0.0 {
            continue;
        }
        let regression = (r.norm_mean_s - base_mean) / base_mean;
        // Noise-aware threshold: whichever is largest of the fixed 15 %
        // floor, 3× the wider of the two runs' confidence intervals,
        // and the absolute slack — all relative to the baseline mean.
        let ci = r.norm_ci95_s.max(base_ci);
        let threshold = MIN_THRESHOLD
            .max(CI_MULTIPLIER * ci / base_mean)
            .max(ABS_SLACK_S / base_mean);
        let failed = regression > threshold;
        println!(
            "  {:<18} base={:<10} now={:<10} change={:+6.1}% threshold={:5.1}% {}",
            r.name,
            fmt_s(base_mean),
            fmt_s(r.norm_mean_s),
            regression * 100.0,
            threshold * 100.0,
            if failed { "FAIL" } else { "ok" },
        );
        if failed {
            failures.push(format!(
                "{}: normalized mean {} vs baseline {} ({:+.1}% > {:.1}% threshold)",
                r.name,
                fmt_s(r.norm_mean_s),
                fmt_s(base_mean),
                regression * 100.0,
                threshold * 100.0,
            ));
        }
    }
    failures
}

/// The committed baseline: per-workload normalized mean + CI95. The
/// local GCM throughput is recorded for context only — normalization
/// is what makes the means comparable across machines.
fn build_baseline(results: &[WorkloadResult], local_mbps: f64) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"gcm_mbps\": {local_mbps:.1},");
    out.push_str("  \"ops\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"norm_mean_s\": {:.9}, \"ci95_s\": {:.9}}}{comma}",
            r.name, r.norm_mean_s, r.norm_ci95_s,
        );
    }
    out.push_str("  }\n}\n");
    out
}

/// The full machine-readable report: per-workload wall-clock and
/// normalized stats, protocol-op latency quantiles from the metrics
/// snapshot, and per-phase self-times from the profiler.
#[allow(clippy::too_many_arguments)]
fn build_report(
    results: &[WorkloadResult],
    local_mbps: f64,
    snapshot: &seg_obs::Snapshot,
    profile: &seg_obs::ProfSnapshot,
    cache_evidence: &[CacheEvidence],
    conc_points: &[ConcurrencyPoint],
    contention: &[ContentionEvidence],
    dur_points: &[DurabilityPoint],
    c10k: &C10kEvidence,
    watch: &WatchOverheadEvidence,
    health: &HealthOverheadEvidence,
    meter: &MeterOverheadEvidence,
    meter_attr: &MeterAttributionEvidence,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"gcm_mbps\": {local_mbps:.1},");

    out.push_str("  \"workloads\": {\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"mean_s\": {:.9}, \"sd_s\": {:.9}, \"ci95_s\": {:.9}, \
             \"warmup_s\": {:.9}, \"runs\": {}, \"norm_mean_s\": {:.9}}}{comma}",
            r.name,
            r.measured.mean_s,
            r.measured.sd_s,
            r.measured.ci95_s(),
            r.measured.warmup_s,
            r.measured.runs,
            r.norm_mean_s,
        );
    }
    out.push_str("  },\n");

    // Per-protocol-op latency quantiles (wall-clock nanoseconds).
    out.push_str("  \"ops\": {\n");
    let op_rows: Vec<_> = snapshot
        .histograms
        .iter()
        .filter(|(id, s)| id.name() == "seg_request_latency_ns" && s.count > 0)
        .collect();
    for (i, (id, s)) in op_rows.iter().enumerate() {
        let comma = if i + 1 < op_rows.len() { "," } else { "" };
        let op = id.labels().first().map(|&(_, v)| v).unwrap_or("?");
        let _ = writeln!(
            out,
            "    \"{op}\": {{\"count\": {}, \"p50_ns\": {}, \"p95_ns\": {}}}{comma}",
            s.count, s.p50, s.p95,
        );
    }
    out.push_str("  },\n");

    // Per-phase self time across all operations, grouped by leaf phase
    // (simulated time folded in), with a normalized-seconds column.
    let all_ops: Vec<&str> = profile
        .entries
        .iter()
        .map(seg_obs::ProfEntry::op)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let breakdown = profile.phase_breakdown(&all_ops);
    out.push_str("  \"phases\": {\n");
    for (i, (leaf, ns)) in breakdown.iter().enumerate() {
        let comma = if i + 1 < breakdown.len() { "," } else { "" };
        let norm_s = normalize_processing(*ns as f64 * 1e-9, local_mbps);
        let _ = writeln!(
            out,
            "    \"{leaf}\": {{\"self_ns\": {ns}, \"norm_self_s\": {norm_s:.9}}}{comma}"
        );
    }
    out.push_str("  },\n");

    // Object-cache ablation evidence from the metadata-hot runs: the
    // work the cache removes, in units the gate's normalization can't
    // blur (GCM invocations and untrusted-store reads are counts).
    out.push_str("  \"cache\": {\n");
    for (i, e) in cache_evidence.iter().enumerate() {
        let comma = if i + 1 < cache_evidence.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"cache\": {}, \"pfs_decrypts\": {}, \"store_gets\": {}, \
             \"hits\": {}, \"misses\": {}, \"fills\": {}, \"hit_ratio\": {:.4}}}{comma}",
            e.name,
            e.cache,
            e.pfs_decrypts,
            e.store_gets,
            e.hits,
            e.misses,
            e.fills,
            e.hit_ratio(),
        );
    }
    out.push_str("  },\n");

    // The thread-scaling matrix: aggregate throughput per (mix, lock
    // mode, thread count) on the store-latency-bound rig, plus the
    // derived 8-thread speedup the gate enforces.
    out.push_str("  \"concurrency\": {\n");
    let _ = writeln!(
        out,
        "    \"store_delay_us\": {},",
        CONC_STORE_DELAY.as_micros()
    );
    out.push_str("    \"points\": [\n");
    for (i, p) in conc_points.iter().enumerate() {
        let comma = if i + 1 < conc_points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"mix\": \"{}\", \"mode\": \"{}\", \"threads\": {}, \"ops_per_s\": {:.3}}}{comma}",
            p.mix, p.mode, p.threads, p.ops_per_s,
        );
    }
    out.push_str("    ],\n");
    let speedup = conc_point(conc_points, "disjoint", "fine", 8).ops_per_s
        / conc_point(conc_points, "disjoint", "coarse", 8).ops_per_s;
    let _ = writeln!(out, "    \"speedup_8t_disjoint\": {speedup:.3}");
    out.push_str("  },\n");

    // Lock-wait attribution from the seg-watch plane: windowed
    // `seg_lock_wait_ns` per key class and intent for the overlapping
    // vs disjoint 8-thread runs, plus the hottest stripes. This is the
    // measured explanation for the overlapping mix's ~1x scaling.
    out.push_str("  \"contention\": {\n");
    for (i, e) in contention.iter().enumerate() {
        let comma = if i + 1 < contention.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {{", e.mix);
        out.push_str("      \"lock_wait\": [\n");
        for (j, (class, intent, sum, count)) in e.waits.iter().enumerate() {
            let comma = if j + 1 < e.waits.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"class\": \"{class}\", \"intent\": \"{intent}\", \
                 \"wait_ns\": {sum}, \"acquisitions\": {count}}}{comma}"
            );
        }
        out.push_str("      ],\n");
        out.push_str("      \"top_stripes\": [\n");
        for (j, s) in e.top.iter().enumerate() {
            let comma = if j + 1 < e.top.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "        {{\"stripe\": {}, \"wait_ns\": {}, \"waits\": {}}}{comma}",
                s.stripe, s.wait_ns, s.waits
            );
        }
        let _ = writeln!(out, "      ]\n    }}{comma}");
    }
    out.push_str("  },\n");

    // The durability comparison: aggregate throughput and backend
    // fsync/batch tallies for group commit vs per-operation fsync on
    // identical WAL rigs, plus the derived speedup the gate enforces.
    out.push_str("  \"durability\": {\n");
    let _ = writeln!(out, "    \"fsync_us\": {DUR_FSYNC_US},");
    let _ = writeln!(out, "    \"sessions\": {DUR_SESSIONS},");
    out.push_str("    \"points\": [\n");
    for (i, p) in dur_points.iter().enumerate() {
        let comma = if i + 1 < dur_points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"mode\": \"{}\", \"ops_per_s\": {:.3}, \"fsyncs\": {}, \"batches\": {}}}{comma}",
            p.mode, p.ops_per_s, p.fsyncs, p.batches,
        );
    }
    out.push_str("    ],\n");
    let speedup = |mode: &str| {
        dur_points
            .iter()
            .find(|p| p.mode == mode)
            .map_or(0.0, |p| p.ops_per_s)
    };
    let _ = writeln!(
        out,
        "    \"speedup_group_commit\": {:.3}",
        speedup("group_commit") / speedup("naive_fsync").max(f64::MIN_POSITIVE),
    );
    out.push_str("  },\n");

    // The c10k section: idle-hold footprint and service evidence, the
    // reactor-vs-threaded scaling curve, and the saturation ratio the
    // gate enforces.
    out.push_str("  \"c10k\": {\n");
    let _ = writeln!(out, "    \"idle_conns\": {},", c10k.idle_conns);
    let _ = writeln!(
        out,
        "    \"idle_kib_per_conn\": {:.2},",
        c10k.idle_kib_per_conn
    );
    let _ = writeln!(
        out,
        "    \"idle_budget_kib_per_conn\": {C10K_MAX_IDLE_KIB_PER_CONN},"
    );
    let _ = writeln!(out, "    \"idle_all_live\": {},", c10k.idle_all_live);
    let _ = writeln!(
        out,
        "    \"responsive_at_scale\": {},",
        c10k.responsive_at_scale
    );
    out.push_str("    \"curve\": [\n");
    for (i, p) in c10k.curve.iter().enumerate() {
        let comma = if i + 1 < c10k.curve.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "      {{\"mode\": \"{}\", \"sessions\": {}, \"ops_per_s\": {:.3}}}{comma}",
            p.mode, p.sessions, p.ops_per_s,
        );
    }
    out.push_str("    ],\n");
    let _ = writeln!(
        out,
        "    \"saturation_ratio\": {:.3},",
        c10k.saturation_ratio
    );
    let _ = writeln!(
        out,
        "    \"saturation_ratio_floor\": {C10K_MIN_SATURATION_RATIO}"
    );
    out.push_str("  },\n");

    // The watch plane's measured cost on the standard small-op mix.
    let _ = writeln!(
        out,
        "  \"watch\": {{\"on_s\": {:.9}, \"off_s\": {:.9}, \"overhead\": {:.6}, \
         \"budget\": {WATCH_MAX_OVERHEAD}}},",
        watch.on_s,
        watch.off_s,
        watch.overhead(),
    );

    // The health plane's measured cost, with the background work that
    // ran during the measurement so "cheap because idle" is ruled out.
    let _ = writeln!(
        out,
        "  \"health\": {{\"on_s\": {:.9}, \"off_s\": {:.9}, \"overhead\": {:.6}, \
         \"budget\": {HEALTH_MAX_OVERHEAD}, \"scrub_passes\": {}, \"canary_probes\": {}}},",
        health.on_s,
        health.off_s,
        health.overhead(),
        health.scrub_passes,
        health.canary_probes,
    );

    // The metering plane's measured cost plus the Zipf attribution
    // evidence (recall of true top talkers under bounded cardinality).
    let _ = writeln!(
        out,
        "  \"meter\": {{\"on_s\": {:.9}, \"off_s\": {:.9}, \"overhead\": {:.6}, \
         \"budget\": {METER_MAX_OVERHEAD}, \"principals\": {}, \"ops\": {}, \
         \"recalled_top8\": {}, \"tracked\": {}, \"evictions\": {}}},",
        meter.on_s,
        meter.off_s,
        meter.overhead(),
        meter_attr.principals,
        meter_attr.ops,
        meter_attr.recalled_top8,
        meter_attr.tracked,
        meter_attr.evictions,
    );

    let _ = writeln!(out, "  \"unbalanced_phases\": {}", profile.unbalanced);
    out.push_str("}\n");
    out
}
