//! Regenerates the **§VII-A TCB-size claim**: "the enclave has only
//! 8102 lines of code, and 2376 of these are due to our TLS
//! implementation" (8441 including everything, per the contributions
//! list).
//!
//! Counts non-blank, non-comment Rust lines of this reproduction's
//! *trusted* code — everything that would live inside the enclave — and
//! of the untrusted host for contrast.
//!
//! Usage: `tcb_size [--quick]` (run from the workspace root; the LoC
//! count is instantaneous, so `--quick` is accepted for harness
//! uniformity and changes nothing)

use seg_bench::harness::arg_flag;
use std::path::Path;

fn count_loc(path: &Path) -> usize {
    let Ok(content) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut in_block_comment = false;
    content
        .lines()
        .filter(|line| {
            let trimmed = line.trim();
            if in_block_comment {
                if trimmed.contains("*/") {
                    in_block_comment = false;
                }
                return false;
            }
            if trimmed.starts_with("/*") {
                in_block_comment = !trimmed.contains("*/");
                return false;
            }
            !trimmed.is_empty() && !trimmed.starts_with("//") && !trimmed.starts_with("#![doc")
        })
        .count()
}

fn count_dir(dir: &Path, acc: &mut Vec<(String, usize)>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            count_dir(&path, acc);
        } else if path.extension().is_some_and(|e| e == "rs") {
            acc.push((path.display().to_string(), count_loc(&path)));
        }
    }
}

fn total<S: AsRef<str>>(dirs: &[S]) -> (usize, Vec<(String, usize)>) {
    let mut acc = Vec::new();
    for dir in dirs {
        let path = Path::new(dir.as_ref());
        if path.is_file() {
            let n = count_loc(path);
            acc.push((path.display().to_string(), n));
        } else {
            count_dir(path, &mut acc);
        }
    }
    let sum = acc.iter().map(|(_, n)| n).sum();
    (sum, acc)
}

fn main() {
    // Static count — already instantaneous; accepted so every bench bin
    // takes the flag (CI invokes them uniformly).
    let _ = arg_flag("--quick");
    // Resolve the workspace root regardless of the invocation cwd.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.to_string_lossy();
    let at = |rel: &str| format!("{root}/{rel}");

    // Trusted: everything that runs inside the enclave boundary.
    let (enclave_core, _) = total(&[&at("crates/core/src/enclave")]);
    let (tls, _) = total(&[&at("crates/tls/src")]);
    let (crypto, _) = total(&[&at("crates/crypto/src")]);
    let (fs_model, _) = total(&[&at("crates/fs/src")]);
    // Untrusted: host, stores, transports, client.
    let (untrusted, _) = total(&[
        &at("crates/core/src/untrusted"),
        &at("crates/core/src/client.rs"),
        &at("crates/store/src"),
        &at("crates/net/src"),
    ]);

    let trusted = enclave_core + tls + crypto + fs_model;
    println!("== §VII-A enclave TCB size ==");
    println!("paper: 8441 LoC total enclave code; 8102 excl. SDK; 2376 of it TLS");
    println!();
    println!("this reproduction (non-blank, non-comment Rust LoC, tests included):");
    println!("  enclave core (request handler, ACL, file mgr, tree): {enclave_core:>6}");
    println!("  TLS stack (handshake + record layer):                {tls:>6}");
    println!("  crypto primitives (the SDK-crypto equivalent):       {crypto:>6}");
    println!("  file-system model (paths, ACL/member-list codecs):   {fs_model:>6}");
    println!("  -------------------------------------------------------------");
    println!("  trusted total:                                       {trusted:>6}");
    println!("  untrusted host/client/stores/transports (contrast):  {untrusted:>6}");
    println!();
    println!("(same order of magnitude as the paper's 8.4 kLoC enclave; the");
    println!(" crypto line would be SDK-provided on real SGX, as in the paper)");
}
