//! Regenerates **Fig. 5**: overhead of the individual-file rollback
//! protection extension (§V-D), for two directory layouts.
//!
//! Preparation mirrors the paper: upload `2^x − 1` files of 10 kB
//! arranged (1) in a binary tree of directories with one file per leaf
//! and (2) flat under the root; then measure upload and download of one
//! additional 10 kB file, with the extension enabled and disabled.
//!
//! Paper: minimal average download 111.65 ms; at 16,384 files the
//! average rises to only 115.93 ms (tree) / 121.95 ms (flat); upload
//! overhead "negligible in the total latency".
//!
//! Usage: `fig5_rollback [--max-x 14] [--quick] [--no-buckets]`

use seg_bench::harness::{arg_flag, arg_value, fmt_s, measure, print_metrics_sidecar, wan, Rig};
use segshare::{Client, EnclaveConfig};

/// Builds the binary-tree directory layout with `count` files in the
/// leaves; returns the directory path for the probe file.
fn build_tree(client: &mut Client<seg_net::ChannelTransport>, count: usize, payload: &[u8]) {
    // Depth such that leaves can hold `count` files: files live at
    // depth x-1 directories (binary fanout).
    let mut made = 0usize;
    let mut level_dirs = vec![String::from("/")];
    while made < count {
        let mut next = Vec::new();
        for dir in &level_dirs {
            for side in ["l", "r"] {
                if made >= count {
                    break;
                }
                let sub = format!("{dir}{side}/");
                client.mkdir(&sub).unwrap();
                client.put(&format!("{sub}file.bin"), payload).unwrap();
                made += 1;
                next.push(sub);
            }
        }
        level_dirs = next;
    }
}

fn build_flat(client: &mut Client<seg_net::ChannelTransport>, count: usize, payload: &[u8]) {
    for i in 0..count {
        client.put(&format!("/file-{i:05}.bin"), payload).unwrap();
    }
}

fn main() {
    let max_x: u32 = arg_value("--max-x")
        .map(|v| v.parse().expect("integer"))
        .unwrap_or(if arg_flag("--quick") { 8 } else { 12 });
    let runs = if arg_flag("--quick") { 10 } else { 20 };
    let buckets = if arg_flag("--no-buckets") { 1 } else { 64 };
    let wan = wan();
    let payload = vec![0xabu8; 10_000];

    println!("== Fig. 5: individual-file rollback protection overhead ==");
    println!("paper: download 111.65 ms floor; at 16384 files 115.93 ms (tree) / 121.95 ms (flat)");
    println!("layouts: (1) binary-tree directories, (2) flat under the root; buckets = {buckets}");
    println!();
    println!(
        "{:>7} {:>6} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
        "files",
        "layout",
        "up (proc)",
        "up (WAN)",
        "down (proc)",
        "down (WAN)",
        "up-noRB",
        "down-noRB"
    );

    for x in (0..=max_x).step_by(2) {
        let count = (1usize << x) - 1;
        for layout in ["tree", "flat"] {
            let mut row = Vec::new();
            let mut rollback_rig = None;
            for rollback in [true, false] {
                let config = EnclaveConfig {
                    rollback_individual: rollback,
                    rollback_buckets: buckets,
                    ..EnclaveConfig::paper_prototype()
                };
                let rig = Rig::new(config);
                let mut client = rig.client();
                match layout {
                    "tree" => build_tree(&mut client, count, &payload),
                    _ => build_flat(&mut client, count, &payload),
                }
                // Probe: one additional 10 kB file at the root.
                let mut i = 0;
                let up = measure(runs, || {
                    i += 1;
                    client.put(&format!("/probe-{i}"), &payload).unwrap();
                });
                client.put("/probe", &payload).unwrap();
                let down = measure(runs, || {
                    let got = client.get("/probe").unwrap();
                    assert_eq!(got.len(), payload.len());
                });
                row.push((up.mean_s, down.mean_s));
                if rollback {
                    rollback_rig = Some(rig);
                }
            }
            let (up_rb, down_rb) = row[0];
            let (up_no, down_no) = row[1];
            println!(
                "{:>7} {:>6} | {:>11} {:>11} | {:>11} {:>11} | {:>11} {:>11}",
                count,
                layout,
                fmt_s(up_rb),
                fmt_s(wan.request_s(10_064, 16, up_rb)),
                fmt_s(down_rb),
                fmt_s(wan.request_s(64, 10_016, down_rb)),
                fmt_s(up_no),
                fmt_s(down_no),
            );
            if let Some(rig) = rollback_rig {
                print_metrics_sidecar(&rig.server);
            }
        }
    }
    println!();
    println!(
        "(WAN floor for a 10 kB request is ~{}; the paper's 111.65 ms)",
        fmt_s(wan.request_s(64, 10_016, 0.0))
    );
}
