//! Criterion companion to **Fig. 3**: end-to-end upload/download
//! processing through the full stack (client TLS → enclave → Protected
//! FS), at sizes that keep criterion's statistics affordable. The
//! `fig3_updown` harness binary covers the full 1–200 MB sweep and the
//! WAN composition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use seg_baseline::PlainFileServer;
use seg_bench::harness::Rig;
use segshare::EnclaveConfig;

fn bench_updown(c: &mut Criterion) {
    let mut group = c.benchmark_group("updown");
    for size in [65_536usize, 1_048_576, 8 * 1_048_576] {
        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        group.throughput(Throughput::Bytes(size as u64));

        // SeGShare full stack.
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut client = rig.client();
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("segshare_put", size), &size, |b, _| {
            b.iter(|| {
                i += 1;
                client
                    .put(&format!("/up-{i}"), black_box(&payload))
                    .expect("put");
            });
        });
        client.put("/down", &payload).expect("put");
        group.bench_with_input(BenchmarkId::new("segshare_get", size), &size, |b, _| {
            b.iter(|| black_box(client.get("/down").expect("get")));
        });

        // Plaintext baseline (the nginx-like data path).
        let plain = PlainFileServer::new();
        group.bench_with_input(BenchmarkId::new("plaintext_put", size), &size, |b, _| {
            b.iter(|| plain.put("/up", black_box(&payload)).expect("put"));
        });
        plain.put("/down", &payload).expect("put");
        group.bench_with_input(BenchmarkId::new("plaintext_get", size), &size, |b, _| {
            b.iter(|| black_box(plain.get("/down").expect("get")));
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_updown
);
criterion_main!(benches);
