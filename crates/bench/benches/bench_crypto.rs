//! Criterion micro-benchmarks for the cryptographic substrate: the
//! primitives whose throughput bounds SeGShare's large-transfer
//! processing (Fig. 3's `raw-proc` column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use seg_crypto::ed25519::SecretKey;
use seg_crypto::gcm::Gcm;
use seg_crypto::hmac::hmac_sha256;
use seg_crypto::mset::{MsetHash, MsetKey};
use seg_crypto::rng::DeterministicRng;
use seg_crypto::sha256::Sha256;
use seg_crypto::x25519::EphemeralKeyPair;

fn bench_gcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gcm");
    for size in [4096usize, 65_536, 1_048_576] {
        let gcm = Gcm::new(&[7u8; 16]).expect("key");
        let data = vec![0u8; size];
        let iv = [1u8; 12];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &size, |b, _| {
            b.iter(|| black_box(gcm.seal(&iv, b"", black_box(&data))));
        });
        let sealed = gcm.seal(&iv, b"", &data);
        group.bench_with_input(BenchmarkId::new("open", size), &size, |b, _| {
            b.iter(|| black_box(gcm.open(&iv, b"", black_box(&sealed)).expect("authentic")));
        });
    }
    group.finish();

    c.bench_function("gcm/key_setup", |b| {
        b.iter(|| black_box(Gcm::new(black_box(&[9u8; 16])).expect("key")));
    });
}

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash");
    let data = vec![0u8; 1_048_576];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256/1MiB", |b| {
        b.iter(|| black_box(Sha256::digest(black_box(&data))));
    });
    group.bench_function("hmac_sha256/1MiB", |b| {
        b.iter(|| black_box(hmac_sha256(b"key", black_box(&data))));
    });
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut rng = DeterministicRng::seeded(1);
    let sk = SecretKey::generate(&mut rng);
    let msg = vec![0u8; 256];
    let sig = sk.sign(&msg);
    c.bench_function("ed25519/sign", |b| {
        b.iter(|| black_box(sk.sign(black_box(&msg))));
    });
    c.bench_function("ed25519/verify", |b| {
        b.iter(|| {
            sk.public_key()
                .verify(black_box(&msg), &sig)
                .expect("valid")
        });
    });
    c.bench_function("x25519/diffie_hellman", |b| {
        let alice = EphemeralKeyPair::generate(&mut rng);
        let bob = EphemeralKeyPair::generate(&mut rng);
        b.iter(|| black_box(alice.diffie_hellman(bob.public()).expect("strong")));
    });
}

fn bench_mset(c: &mut Criterion) {
    let key = MsetKey::from_bytes([3u8; 32]);
    c.bench_function("mset/add", |b| {
        let mut h = MsetHash::empty();
        b.iter(|| h.add(&key, black_box(b"a 40-byte-ish child hash element....")));
    });
    c.bench_function("mset/replace", |b| {
        let mut h = MsetHash::of(&key, b"old");
        b.iter(|| h.replace(&key, black_box(b"old"), black_box(b"old")));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gcm, bench_hash, bench_signatures, bench_mset
);
criterion_main!(benches);
