//! Criterion companion to **Fig. 4**: membership and permission
//! operations with varying pre-existing counts — the logarithmic
//! dependence the paper shows is invisible at WAN scale, measured here
//! without the WAN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use seg_bench::harness::Rig;
use seg_fs::Perm;
use segshare::EnclaveConfig;

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    for n in [1usize, 100, 1000] {
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut admin = rig.client();
        for g in 0..n {
            admin.add_user("bob", &format!("pre-{g:05}")).expect("add");
        }
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("add", n), &n, |b, _| {
            b.iter(|| {
                i += 1;
                admin.add_user("bob", &format!("x-{i:07}")).expect("add");
            });
        });
        let mut j = 0u64;
        group.bench_with_input(BenchmarkId::new("revoke", n), &n, |b, _| {
            b.iter(|| {
                j += 1;
                if j <= i {
                    admin.remove_user("bob", &format!("x-{j:07}")).expect("rm");
                } else {
                    // Removing an absent membership still exercises the
                    // decrypt-search-encrypt path.
                    admin.remove_user("bob", "x-absent").expect("rm");
                }
            });
        });
    }
    group.finish();
}

fn bench_permissions(c: &mut Criterion) {
    let mut group = c.benchmark_group("permissions");
    for n in [1usize, 100, 1000] {
        let rig = Rig::new(EnclaveConfig::paper_prototype());
        let mut admin = rig.client();
        admin.put("/f", b"target").expect("put");
        for g in 0..n {
            admin
                .set_perm("/f", &format!("pre-{g:05}"), Perm::Read)
                .expect("perm");
        }
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::new("set", n), &n, |b, _| {
            b.iter(|| {
                i += 1;
                admin
                    .set_perm("/f", &format!("x-{i:07}"), Perm::Read)
                    .expect("perm");
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_membership, bench_permissions
);
criterion_main!(benches);
