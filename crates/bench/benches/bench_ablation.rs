//! Criterion companion to the `ablations` harness: isolated costs of
//! design choices — Protected-FS encryption vs. plain AEAD, the TLS
//! handshake, sealing, and the HE baseline's revocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::collections::HashMap;
use std::hint::black_box;

use seg_baseline::he::{HeFileShare, HeUser};
use seg_bench::harness::Rig;
use seg_crypto::pae::{pae_enc, PaeKey};
use seg_crypto::rng::DeterministicRng;
use seg_sgx::pfs;
use segshare::EnclaveConfig;

fn bench_pfs_vs_pae(c: &mut Criterion) {
    let mut group = c.benchmark_group("pfs_vs_pae");
    let size = 1_048_576usize;
    let data = vec![0u8; size];
    group.throughput(Throughput::Bytes(size as u64));
    group.bench_function("pfs_encrypt/1MiB", |b| {
        let mut rng = DeterministicRng::seeded(1);
        b.iter(|| {
            black_box(pfs::pfs_encrypt(&[7u8; 16], black_box(&data), &mut rng).expect("pfs"))
        });
    });
    group.bench_function("pae_encrypt/1MiB", |b| {
        let key = PaeKey::from_bytes(&[7u8; 16]);
        let mut rng = DeterministicRng::seeded(2);
        b.iter(|| black_box(pae_enc(&key, black_box(&data), b"", &mut rng)));
    });
    let mut rng = DeterministicRng::seeded(3);
    let blob = pfs::pfs_encrypt(&[7u8; 16], &data, &mut rng).expect("pfs");
    group.bench_function("pfs_decrypt/1MiB", |b| {
        b.iter(|| black_box(pfs::pfs_decrypt(&[7u8; 16], black_box(&blob)).expect("pfs")));
    });
    group.finish();
}

fn bench_connection_setup(c: &mut Criterion) {
    // Full mutually-authenticated handshake through the enclave.
    let rig = Rig::new(EnclaveConfig::paper_prototype());
    c.bench_function("tls/full_handshake", |b| {
        b.iter(|| black_box(rig.client()));
    });
}

fn bench_sealing(c: &mut Criterion) {
    let platform = seg_sgx::Platform::new_with_seed(5);
    let enclave = platform.launch(&seg_sgx::EnclaveImage::from_code(b"bench"));
    let sealed = enclave.seal(&[0u8; 32]).expect("seal");
    c.bench_function("sgx/seal_32B", |b| {
        b.iter(|| black_box(enclave.seal(black_box(&[0u8; 32])).expect("seal")));
    });
    c.bench_function("sgx/unseal_32B", |b| {
        b.iter(|| black_box(enclave.unseal(black_box(&sealed)).expect("unseal")));
    });
}

fn bench_he_revocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("revocation");
    group.sample_size(10);
    for files in [5usize, 20] {
        group.bench_with_input(
            BenchmarkId::new("he_revoke_everywhere", files),
            &files,
            |b, &files| {
                b.iter_with_setup(
                    || {
                        let alice = HeUser::new("alice");
                        let bob = HeUser::new("bob");
                        let mut he = HeFileShare::new();
                        for i in 0..files {
                            he.put(&format!("/f{i}"), &vec![0u8; 100_000], &[&alice, &bob])
                                .expect("put");
                        }
                        let dir: HashMap<String, [u8; 32]> = [
                            ("alice".to_string(), alice.public()),
                            ("bob".to_string(), bob.public()),
                        ]
                        .into();
                        (he, alice, dir)
                    },
                    |(mut he, alice, dir)| {
                        black_box(he.revoke_everywhere(&alice, "bob", &dir).expect("revoke"));
                    },
                );
            },
        );
    }
    // SeGShare's equivalent: one member-list update.
    let rig = Rig::new(EnclaveConfig::paper_prototype());
    let mut client = rig.client();
    client.add_user("bob", "team").expect("add");
    for i in 0..20 {
        client
            .put(&format!("/f{i}"), &vec![0u8; 100_000])
            .expect("put");
        client
            .set_perm(&format!("/f{i}"), "team", seg_fs::Perm::Read)
            .expect("perm");
    }
    group.bench_function("segshare_revoke_membership", |b| {
        b.iter(|| {
            client.remove_user("bob", "team").expect("rm");
            client.add_user("bob", "team").expect("re-add");
        });
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pfs_vs_pae, bench_connection_setup, bench_sealing, bench_he_revocation
);
criterion_main!(benches);
