//! Criterion companion to **Fig. 5**: 10 kB upload/download with the
//! individual-file rollback protection on vs. off, at two pre-loaded
//! file counts (flat layout — the worse case for validation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use seg_bench::harness::Rig;
use segshare::EnclaveConfig;

fn bench_rollback(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback");
    let payload = vec![0xabu8; 10_000];
    for rollback in [false, true] {
        for files in [0usize, 255] {
            let config = EnclaveConfig {
                rollback_individual: rollback,
                ..EnclaveConfig::paper_prototype()
            };
            let rig = Rig::new(config);
            let mut client = rig.client();
            for i in 0..files {
                client
                    .put(&format!("/flat-{i:05}"), &payload)
                    .expect("preload");
            }
            client.put("/probe", &payload).expect("put");
            let label = format!("rb={rollback}/files={files}");
            group.bench_with_input(BenchmarkId::new("download", &label), &files, |b, _| {
                b.iter(|| black_box(client.get("/probe").expect("get")));
            });
            let mut i = 0u64;
            group.bench_with_input(BenchmarkId::new("upload", &label), &files, |b, _| {
                b.iter(|| {
                    i += 1;
                    client.put(&format!("/p-{i}"), &payload).expect("put");
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_rollback
);
criterion_main!(benches);
