//! Observability integration: the unified telemetry snapshot over a
//! full upload → share → download → revoke flow.
//!
//! Checks the three contract points of the `seg-obs` layer:
//!
//! 1. every operation of the flow shows up with nonzero per-op counts
//!    and latency quantiles;
//! 2. the boundary counters folded into the snapshot match the
//!    simulated-SGX [`seg_sgx`] boundary accounting exactly;
//! 3. nothing request-derived (paths, user ids, group names, emails)
//!    appears in either snapshot encoding — the trust-boundary rule
//!    (paper §III: everything leaving the enclave is adversary-visible).

use seg_fs::Perm;
use segshare::{EnclaveConfig, FsoSetup, SegShareServer};

/// Distinctive strings used as operands below; none may leak into the
/// encoded snapshots.
const SECRETS: &[&str] = &[
    "alice",
    "bob",
    "strategyteam",
    "plans-secret",
    "q3-report",
    "acme.example",
];

/// Drives the canonical flow and returns the server for inspection.
fn run_flow() -> SegShareServer {
    let setup = FsoSetup::new_in_memory("obs-ca", EnclaveConfig::default());
    let server = setup.server().expect("setup");
    let alice = setup
        .enroll_user("alice", "alice@acme.example", "Alice")
        .expect("enroll alice");
    let bob = setup
        .enroll_user("bob", "bob@acme.example", "Bob")
        .expect("enroll bob");

    let mut a = server.connect_local(&alice).expect("alice connects");
    a.mkdir("/plans-secret/").expect("mkdir");
    let payload: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
    a.put("/plans-secret/q3-report", &payload).expect("upload");
    a.add_user("alice", "strategyteam").expect("create group");
    a.add_user("bob", "strategyteam").expect("share");
    a.set_perm("/plans-secret/q3-report", "strategyteam", Perm::Read)
        .expect("grant");

    let mut b = server.connect_local(&bob).expect("bob connects");
    assert_eq!(b.get("/plans-secret/q3-report").expect("download"), payload);

    a.remove_user("bob", "strategyteam").expect("revoke");
    assert!(
        b.get("/plans-secret/q3-report").is_err(),
        "revocation is immediate"
    );

    // Let the connection threads settle (they drain their outgoing
    // queues with ecalls after the last response is delivered).
    drop(a);
    drop(b);
    std::thread::sleep(std::time::Duration::from_millis(100));
    server
}

#[test]
fn flow_produces_nonzero_per_op_metrics() {
    let server = run_flow();
    let snap = server.metrics_snapshot();

    // Exact request counts: the client drove a known script. Bob's
    // second (denied) get also counts — requests are counted whether
    // they succeed or not.
    for (op, expected) in [
        ("mk_dir", 1),
        ("put_file", 1),
        ("get", 2),
        ("set_perm", 1),
        ("add_user", 2),
        ("remove_user", 1),
    ] {
        assert_eq!(
            snap.counter(&format!("seg_requests_total{{op=\"{op}\"}}")),
            Some(expected),
            "request count for {op}"
        );
        let h = snap
            .histogram(&format!("seg_request_latency_ns{{op=\"{op}\"}}"))
            .unwrap_or_else(|| panic!("latency histogram for {op}"));
        assert_eq!(h.count, expected, "latency sample count for {op}");
        assert!(h.p50 > 0 && h.p95 >= h.p50 && h.p99 >= h.p95, "{op}: {h:?}");
    }

    // The 64 KiB upload streamed at least one data chunk.
    assert!(
        snap.counter("seg_requests_total{op=\"data\"}").unwrap_or(0) >= 1,
        "upload streamed chunks"
    );

    // The denied download shows up under its error code.
    assert_eq!(
        snap.counter("seg_request_errors_total{code=\"denied\",op=\"get\"}"),
        Some(1)
    );

    // Store and crypto activity is attributed.
    assert!(
        snap.counter("seg_store_bytes_written_total{store=\"content\"}")
            .unwrap_or(0)
            > 64 * 1024,
        "content store saw the upload"
    );
    assert!(
        snap.counter("seg_store_bytes_written_total{store=\"group\"}")
            .unwrap_or(0)
            > 0,
        "group store saw membership updates"
    );
    assert!(
        snap.histogram("seg_pfs_encrypt_ns")
            .map(|h| h.count)
            .unwrap_or(0)
            > 0,
        "protected-fs encryption was timed"
    );
    assert!(
        snap.histogram("seg_rollback_tree_update_ns")
            .map(|h| h.count)
            .unwrap_or(0)
            > 0,
        "rollback-tree updates were timed"
    );

    // Connection-level accounting from the untrusted host.
    assert_eq!(snap.counter("seg_connections_total"), Some(2));
    assert!(
        snap.counter("seg_connection_bytes_total{dir=\"in\"}")
            .unwrap_or(0)
            > 64 * 1024,
        "inbound frames carried the upload"
    );
}

#[test]
fn snapshot_boundary_counts_match_sgx_accounting() {
    let server = run_flow();
    let snap = server.metrics_snapshot();
    // Read the authoritative counters *after* the snapshot: they are
    // monotonic, so equality proves the snapshot is exact and current.
    let stats = server.enclave().sgx().boundary().stats();
    assert_eq!(
        snap.counter("seg_boundary_ecalls_total"),
        Some(stats.ecalls)
    );
    assert_eq!(
        snap.counter("seg_boundary_ocalls_total"),
        Some(stats.ocalls)
    );
    assert!(stats.ecalls > 0 && stats.ocalls > 0, "{stats:?}");
    assert_eq!(
        snap.gauge("seg_boundary_simulated_ns"),
        Some(stats.simulated_ns)
    );

    // Repeated snapshots must not double-count the folded-in totals.
    let again = server.metrics_snapshot();
    assert_eq!(
        again.counter("seg_boundary_ecalls_total"),
        Some(stats.ecalls)
    );
}

#[test]
fn encoded_snapshots_carry_no_request_content() {
    let server = run_flow();
    let snap = server.metrics_snapshot();
    for (encoding, text) in [
        ("json", snap.to_json()),
        ("prometheus", snap.to_prometheus()),
    ] {
        for secret in SECRETS {
            assert!(
                !text.contains(secret),
                "{encoding} encoding leaks {secret:?}"
            );
        }
        // No path separators at all: every metric id is compiled in.
        assert!(
            !text.contains('/'),
            "{encoding} encoding contains a path separator"
        );
        assert!(
            !text.contains('@'),
            "{encoding} encoding contains an email-like token"
        );
    }
}

#[test]
fn watch_plane_families_always_export_with_clean_labels() {
    // The seg-watch families must be present in every export — zero on
    // idle or disabled subsystems, never absent — so dashboards see a
    // stable series set across configurations. And every series the
    // snapshot emits must satisfy the compiled-in-label hygiene rule.
    let server = run_flow();
    let text = server.metrics_snapshot().to_prometheus();

    for family in [
        "seg_lock_wait_ns",
        "seg_lock_hold_ns",
        "seg_lock_global_wait_ns",
        "seg_lock_global_hold_ns",
        "seg_lock_global_held_us",
        "seg_net_live_sessions",
        "seg_net_inflight_requests",
        "seg_net_accept_backlog",
        "seg_net_queued_bytes",
        "seg_net_send_stalls_total",
        "seg_net_send_stall_ns_total",
        "seg_watch_stalls_total",
        "seg_watch_dumps_total",
        "seg_watch_enabled",
        "seg_flight_frames_total",
        // Cache gauges export as zero even with the cache disabled.
        "seg_cache_entries",
        "seg_cache_bytes",
        // Health-plane families export even when no runner ever
        // started: zero samples, zero scrub passes, healthy state.
        "seg_health_samples_total",
        "seg_health_canary_probes_total",
        "seg_health_canary_failures_total",
        "seg_health_state",
        "seg_health_enabled",
        "seg_health_rollup_slots",
        "seg_health_canary_latency_us",
        "seg_slo_alerts_total",
        "seg_slo_alerts_suppressed_total",
        "seg_slo_alerts_active",
        "seg_scrub_passes_total",
        "seg_scrub_items_total",
        "seg_scrub_findings_total",
        // Durability families export on every backend — zero on
        // in-memory stores, live on a WAL backend — so a dashboard
        // built against one deployment works against the other.
        "seg_store_batches_total",
        "seg_store_batch_ops_total",
        "seg_store_fsyncs_total",
        "seg_store_fsync_bytes_total",
        // Meter-plane families export in every configuration so the
        // series set stays stable whether metering is on or off.
        "seg_meter_enabled",
        "seg_meter_samples_total",
        "seg_meter_tracked",
        "seg_meter_min_tracked_ops",
        "seg_meter_evictions_total",
        "seg_meter_overflow_ops_total",
    ] {
        assert!(
            text.contains(family),
            "family {family} missing from the prometheus export"
        );
    }

    let snap = server.metrics_snapshot();
    assert_eq!(snap.gauge("seg_watch_enabled"), Some(1), "always-on");
    assert_eq!(snap.gauge("seg_cache_entries"), Some(0), "cache disabled");
    assert_eq!(snap.gauge("seg_meter_enabled"), Some(1), "default config");
    for axis in ["principal", "group", "prefix"] {
        assert!(
            snap.gauge(&format!("seg_meter_tracked{{axis=\"{axis}\"}}"))
                .is_some(),
            "per-axis meter gauge pre-interned for {axis}"
        );
    }
    assert_eq!(snap.gauge("seg_health_enabled"), Some(1), "always-on");
    assert_eq!(snap.gauge("seg_health_state"), Some(0), "healthy at rest");
    // The scrub families pre-intern one series per check class, all
    // zero until a runner drives the scrubber.
    for check in ["audit", "tree", "cache", "orphan"] {
        assert_eq!(
            snap.counter(&format!("seg_scrub_findings_total{{check=\"{check}\"}}")),
            Some(0),
            "idle scrub findings for {check}"
        );
    }
    // Lock-wait series carry both label axes with expected values.
    assert!(
        snap.histogram("seg_lock_wait_ns{class=\"path\",intent=\"write\"}")
            .is_some(),
        "per-class lock-wait series pre-interned"
    );

    // Label-hygiene lint: every series line is `name{k="v",...} value`
    // where names and keys are [a-z_][a-z0-9_]* and values [a-z0-9_.]+.
    let clean_name = |s: &str| {
        !s.is_empty()
            && s.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    let clean_value = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    };
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let series = line.split_whitespace().next().unwrap();
        let (name, labels) = match series.find('{') {
            Some(pos) => (
                &series[..pos],
                series[pos + 1..].strip_suffix('}').unwrap_or(""),
            ),
            None => (series, ""),
        };
        assert!(clean_name(name), "bad metric name in line: {line}");
        for pair in labels.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').expect("k=\"v\" pair");
            let v = v.trim_matches('"');
            assert!(clean_name(k), "bad label key {k:?} in line: {line}");
            assert!(
                clean_value(v) && v.chars().all(|c| !c.is_ascii_uppercase()),
                "bad label value {v:?} in line: {line}"
            );
        }
    }
}

#[test]
fn watch_report_carries_no_request_content() {
    // The correlated watch bundle is the widest single export the
    // server offers (metrics + flight ring + traces + profile); it must
    // honor the same trust boundary as each constituent export.
    let server = run_flow();
    let report = server.watch_report();
    for section in [
        "\"saturation\"",
        "\"flight\"",
        "\"lock_top\"",
        "\"profile\"",
    ] {
        assert!(report.contains(section), "report missing {section}");
    }
    for secret in SECRETS {
        assert!(!report.contains(secret), "watch report leaks {secret:?}");
    }
    assert!(
        !report.contains('@'),
        "watch report contains an email-like token"
    );
}

#[test]
fn health_report_carries_no_request_content() {
    // The health bundle (verdict, scrub counters, alerts, SLO burn
    // rates, rollup history) honors the same trust boundary.
    let server = run_flow();
    server.enclave().scrub_step();
    let report = server.health_report();
    for section in [
        "\"state\"",
        "\"scrub\"",
        "\"canary\"",
        "\"slo\"",
        "\"history\"",
    ] {
        assert!(report.contains(section), "report missing {section}");
    }
    for secret in SECRETS {
        assert!(!report.contains(secret), "health report leaks {secret:?}");
    }
    assert!(
        !report.contains('/') && !report.contains('@'),
        "health report contains a path- or email-like token"
    );
}

#[test]
fn trace_ring_correlates_requests_across_layers() {
    let server = run_flow();
    let events = server.trace_tail(usize::MAX);
    assert!(!events.is_empty(), "the flow left trace events");

    // Sequence numbers are strictly increasing (no torn or duplicated
    // slots) and every dispatch-level event carries a request id.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
    let dispatch_ops = [
        "mk_dir",
        "put_file",
        "get",
        "set_perm",
        "add_user",
        "remove_user",
        "data",
    ];
    for e in &events {
        if dispatch_ops.contains(&e.op) {
            assert!(e.request_id > 0, "dispatch event without request id: {e:?}");
            assert!(e.principal != 0, "dispatch event without principal: {e:?}");
        }
    }

    // Access-control and store events inherit the dispatching request's
    // id: every get shares its id with at least one auth_file check.
    let get_ids: Vec<u64> = events
        .iter()
        .filter(|e| e.op == "get")
        .map(|e| e.request_id)
        .collect();
    assert_eq!(get_ids.len(), 2, "both downloads traced");
    for id in &get_ids {
        assert!(
            events
                .iter()
                .any(|e| e.op == "auth_file" && e.request_id == *id),
            "no auth_file event for get request {id}"
        );
    }

    // Bob's revoked download shows up as a deny.
    assert!(
        events
            .iter()
            .any(|e| e.decision == seg_obs::TraceDecision::Deny && e.code == "denied"),
        "denied decision traced"
    );

    // The snapshot's trace counters agree with the ring.
    let snap = server.metrics_snapshot();
    let emitted = snap.counter("seg_trace_events_total").unwrap_or(0);
    let dropped = snap.counter("seg_trace_dropped_total").unwrap_or(0);
    assert!(emitted >= events.len() as u64);
    assert_eq!(dropped, 0, "this small flow cannot overflow the ring");
}

#[test]
fn epc_gauges_report_peak_usage() {
    let server = run_flow();
    let snap = server.metrics_snapshot();
    let peak = snap.gauge("seg_epc_peak_bytes").expect("peak gauge");
    assert!(peak > 0, "the flow registered enclave memory");
    assert_eq!(
        Some(peak),
        Some(server.enclave().sgx().epc().peak_bytes()),
        "gauge mirrors the tracker"
    );
}

#[test]
fn profile_attributes_upload_wall_clock_to_phases() {
    // A 1 MB upload through the full enclave path: the phase profiler
    // must attribute the request's wall-clock without losing or double
    // counting time, and crypto must dominate (paper §VI: the enclave's
    // cost is encryption, not access control).
    let setup = FsoSetup::new_in_memory("prof-ca", EnclaveConfig::default());
    let server = setup.server().expect("setup");
    let alice = setup
        .enroll_user("alice", "alice@acme.example", "Alice")
        .expect("enroll");
    let mut a = server.connect_local(&alice).expect("connect");
    let payload: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    a.put("/big", &payload).expect("upload");
    drop(a);

    let prof = server.profile_snapshot();
    assert!(!prof.entries.is_empty(), "profiler captured the flow");
    assert_eq!(prof.unbalanced, 0, "no unbalanced phase stacks");

    // The upload arrives as one put_file request plus streamed data
    // chunks; fold both.
    let upload_ops = ["put_file", "data"];
    let wall_ns: u64 = upload_ops.iter().map(|op| prof.op_total_ns(op)).sum();
    let self_sum_ns: u64 = upload_ops
        .iter()
        .flat_map(|op| prof.op_entries(op))
        .map(|e| e.self_ns)
        .sum();
    assert!(wall_ns > 0, "upload ops carry wall-clock");
    let drift = (wall_ns as f64 - self_sum_ns as f64).abs() / wall_ns as f64;
    assert!(
        drift <= 0.10,
        "phase self-times must sum to the measured wall-clock \
         (wall {wall_ns} ns, self sum {self_sum_ns} ns, drift {drift:.3})"
    );

    let breakdown = prof.phase_breakdown(&upload_ops);
    assert_eq!(
        breakdown.first().map(|&(leaf, _)| leaf),
        Some("crypto_gcm"),
        "crypto_gcm self-time dominates a 1 MB upload: {breakdown:?}"
    );
}

#[test]
fn profile_exports_carry_no_request_content() {
    // Same trust-boundary rule as the metrics encodings: phase paths
    // are compiled-in names; operands never reach the export.
    let server = run_flow();
    let prof = server.profile_snapshot();
    assert!(!prof.entries.is_empty());
    for encoded in [prof.to_json(), prof.to_collapsed()] {
        for secret in SECRETS {
            assert!(
                !encoded.contains(secret),
                "{secret:?} leaked into a profile export"
            );
        }
    }
}

#[test]
fn meter_families_export_zeroed_when_disabled() {
    // A config with metering off must still export every seg_meter_*
    // family — all zero — so dashboards keep a stable series set and
    // an operator can see at a glance that the plane is off.
    let setup = FsoSetup::new_in_memory(
        "obs-meter-off",
        EnclaveConfig {
            meter: false,
            ..EnclaveConfig::default()
        },
    );
    let server = setup.server().expect("setup");
    let alice = setup
        .enroll_user("alice", "alice@acme.example", "Alice")
        .expect("enroll");
    let mut a = server.connect_local(&alice).expect("connect");
    a.mkdir("/plans-secret/").expect("mkdir");
    a.put("/plans-secret/q3-report", b"body").expect("upload");
    drop(a);
    std::thread::sleep(std::time::Duration::from_millis(100));

    let snap = server.metrics_snapshot();
    assert_eq!(snap.gauge("seg_meter_enabled"), Some(0), "metering off");
    assert_eq!(
        snap.counter("seg_meter_samples_total"),
        Some(0),
        "no request is attributed while disabled"
    );
    for axis in ["principal", "group", "prefix"] {
        for (family, value) in [
            (format!("seg_meter_tracked{{axis=\"{axis}\"}}"), 0),
            (format!("seg_meter_min_tracked_ops{{axis=\"{axis}\"}}"), 0),
        ] {
            assert_eq!(snap.gauge(&family), Some(value), "zeroed {family}");
        }
        for family in [
            format!("seg_meter_evictions_total{{axis=\"{axis}\"}}"),
            format!("seg_meter_overflow_ops_total{{axis=\"{axis}\"}}"),
        ] {
            assert_eq!(snap.counter(&family), Some(0), "zeroed {family}");
        }
    }
    // The report also exports in the disabled state — explicitly
    // marked disabled, with empty axes rather than absent sections.
    let report = server.meter_report();
    assert!(report.contains("\"enabled\":false"), "report marks off");
    assert!(report.contains("\"samples\":0"), "report shows no samples");
}
