//! Cache-freshness integration tests: the in-enclave object cache
//! (`EnclaveConfig.cache`) must never weaken the §III security
//! objectives. Revocations take effect on the very next request even
//! with a warm cache (P3/S4 immediate revocation), and a rolled-back
//! store serves fresh data or an integrity error — never stale state
//! the rollback tree would have caught.

use std::sync::Arc;

use seg_fs::Perm;
use seg_proto::ErrorCode;
use seg_store::{AdversaryStore, MemStore, ObjectStore};
use segshare::{EnclaveConfig, FsoSetup, SegShareError, SegShareServer};

struct Rig {
    setup: FsoSetup,
    server: SegShareServer,
    content: Arc<AdversaryStore<MemStore>>,
    group: Arc<AdversaryStore<MemStore>>,
}

fn cached_config() -> EnclaveConfig {
    EnclaveConfig {
        cache: true,
        ..EnclaveConfig::default()
    }
}

fn rig(config: EnclaveConfig, seed: u64) -> Rig {
    let content = Arc::new(AdversaryStore::new(MemStore::new()));
    let group = Arc::new(AdversaryStore::new(MemStore::new()));
    let dedup: Arc<dyn ObjectStore> = Arc::new(AdversaryStore::new(MemStore::new()));
    let setup = FsoSetup::with_stores(
        "ca",
        config,
        seg_sgx::Platform::new_with_seed(seed),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        Arc::clone(&group) as Arc<dyn ObjectStore>,
        dedup,
    );
    let server = setup.server().unwrap();
    Rig {
        setup,
        server,
        content,
        group,
    }
}

fn is_denied(result: Result<impl std::fmt::Debug, SegShareError>) -> bool {
    matches!(
        result,
        Err(SegShareError::Request {
            code: ErrorCode::Denied,
            ..
        })
    )
}

/// Repeated reads warm every layer of the cache (ACLs, member lists,
/// directory files, hot content bodies) for `path`.
fn warm<T: seg_net::FrameTransport>(client: &mut segshare::Client<T>, path: &str, expect: &[u8]) {
    for _ in 0..3 {
        assert_eq!(client.get(path).unwrap(), expect);
    }
}

#[test]
fn revocation_takes_effect_on_the_very_next_request_with_warm_cache() {
    // P3/S4 immediate revocation must survive a cache whose entries
    // were filled while the member was still authorized.
    let r = rig(cached_config(), 300);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = r.setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    let mut b = r.server.connect_local(&bob).unwrap();

    a.put("/secret", b"classified").unwrap();
    a.add_user("bob", "insiders").unwrap();
    a.set_perm("/secret", "insiders", Perm::Read).unwrap();

    // Warm every cached object on bob's read path: his member list,
    // the file's ACL, and the (small) content body itself.
    warm(&mut b, "/secret", b"classified");

    // Revoke, then probe on the *very next* request — no intervening
    // traffic that could incidentally invalidate anything.
    a.remove_user("bob", "insiders").unwrap();
    assert!(
        is_denied(b.get("/secret")),
        "warm cache must not outlive membership revocation"
    );
}

#[test]
fn permission_removal_takes_effect_with_warm_acl_cache() {
    let r = rig(cached_config(), 301);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = r.setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    let mut b = r.server.connect_local(&bob).unwrap();

    a.put("/doc", b"shared").unwrap();
    a.set_perm("/doc", "~bob", Perm::Read).unwrap();
    warm(&mut b, "/doc", b"shared");

    // Flip the warm ACL entry to an explicit deny.
    a.set_perm("/doc", "~bob", Perm::Deny).unwrap();
    assert!(
        is_denied(b.get("/doc")),
        "warm ACL cache must not outlive a permission change"
    );
}

#[test]
fn stale_member_list_replay_is_detected_with_cache_enabled() {
    // The §V-D replay: the attacker re-serves the group-store state
    // from when bob was still a member. Cached records pin the latest
    // authentic tree, so the replay must surface as an integrity error
    // (or a deny, if served from authentic cached state) — never as
    // restored access.
    let r = rig(cached_config(), 302);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = r.setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    let mut b = r.server.connect_local(&bob).unwrap();

    a.put("/secret", b"classified").unwrap();
    let before = r.group.inner().list().unwrap();
    a.add_user("bob", "insiders").unwrap();
    a.set_perm("/secret", "insiders", Perm::Read).unwrap();
    warm(&mut b, "/secret", b"classified");

    // Snapshot the group-store objects holding bob's membership...
    let mut touched = r.group.inner().list().unwrap();
    touched.retain(|k| !before.contains(k));
    assert!(!touched.is_empty());
    for key in &touched {
        r.group.snapshot_object(key).unwrap();
    }

    // ...revoke, then replay them.
    a.remove_user("bob", "insiders").unwrap();
    assert!(is_denied(b.get("/secret")));
    for key in &touched {
        r.group.rollback_object(key).unwrap();
    }
    match b.get("/secret") {
        Ok(_) => panic!("stale member list must not restore access"),
        Err(SegShareError::Request {
            code: ErrorCode::IntegrityViolation | ErrorCode::Denied,
            ..
        }) => {}
        Err(other) => panic!("unexpected failure mode: {other:?}"),
    }
}

#[test]
fn whole_store_rollback_with_warm_cache_serves_fresh_or_errors() {
    // §III freshness: after the attacker rolls back *both stores*
    // entirely, every response must be either the latest data (served
    // from the authentic in-enclave cache) or an integrity error —
    // never the rolled-back content.
    let r = rig(cached_config(), 303);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();

    a.put("/doc", b"old state").unwrap();
    r.content.snapshot_everything().unwrap();
    r.group.snapshot_everything().unwrap();
    a.put("/doc", b"new state").unwrap();
    warm(&mut a, "/doc", b"new state");

    r.content.rollback_everything().unwrap();
    r.group.rollback_everything().unwrap();

    // Warm path: the cached body is the *latest* enclave-written state.
    match a.get("/doc") {
        Ok(body) => assert_eq!(
            body, b"new state",
            "rollback must never surface stale content"
        ),
        Err(e) => assert!(
            matches!(
                e,
                SegShareError::Request {
                    code: ErrorCode::IntegrityViolation,
                    ..
                }
            ),
            "unexpected failure mode: {e:?}"
        ),
    }
}

#[test]
fn cache_off_is_byte_identical_to_seed_behavior() {
    // With the toggle off the §V-D boundary case behaves exactly as
    // before the cache existed: a complete, consistent old state
    // verifies (the residual risk §V-E exists for).
    let r = rig(EnclaveConfig::default(), 304);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();

    a.put("/doc", b"old state").unwrap();
    r.content.snapshot_everything().unwrap();
    r.group.snapshot_everything().unwrap();
    a.put("/doc", b"new state").unwrap();
    r.content.rollback_everything().unwrap();
    r.group.rollback_everything().unwrap();
    assert_eq!(a.get("/doc").unwrap(), b"old state");

    // The cache *activity* counters stay absent with the cache off, and
    // the occupancy gauges export as zero — gauge families are stable
    // across configurations so dashboards never see series appear and
    // disappear with a toggle.
    let snap = r.server.enclave().metrics_snapshot();
    assert!(snap.counter("seg_cache_hits_total").is_none());
    assert_eq!(snap.gauge("seg_cache_bytes"), Some(0));
    assert_eq!(snap.gauge("seg_cache_entries"), Some(0));
}

#[test]
fn cache_metrics_report_hits_and_invalidations() {
    let r = rig(cached_config(), 305);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();

    a.put("/hot", b"small hot object").unwrap();
    warm(&mut a, "/hot", b"small hot object");
    a.put("/hot", b"replaced").unwrap();
    warm(&mut a, "/hot", b"replaced");

    let snap = r.server.enclave().metrics_snapshot();
    let hits = snap.counter("seg_cache_hits_total").unwrap();
    let fills = snap.counter("seg_cache_fills_total").unwrap();
    let invalidations = snap.counter("seg_cache_invalidations_total").unwrap();
    assert!(hits > 0, "warm reads must hit the cache");
    assert!(fills > 0);
    assert!(invalidations > 0, "the overwrite must invalidate");
}
