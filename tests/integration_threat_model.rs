//! The attacker of §III-B as executable tests: a malicious cloud
//! provider that "can monitor and/or change data on disk or in memory;
//! rollback individual files or the whole file system; send arbitrary
//! requests to the enclave; view all network communications".

use std::sync::Arc;

use seg_fs::Perm;
use seg_proto::ErrorCode;
use seg_store::{AdversaryStore, MemStore, ObjectStore};
use segshare::{EnclaveConfig, FsoSetup, SegShareError, SegShareServer};

struct Rig {
    setup: FsoSetup,
    server: SegShareServer,
    content: Arc<AdversaryStore<MemStore>>,
    group: Arc<AdversaryStore<MemStore>>,
}

fn rig(config: EnclaveConfig, seed: u64) -> Rig {
    let content = Arc::new(AdversaryStore::new(MemStore::new()));
    let group = Arc::new(AdversaryStore::new(MemStore::new()));
    let dedup: Arc<dyn ObjectStore> = Arc::new(AdversaryStore::new(MemStore::new()));
    let setup = FsoSetup::with_stores(
        "ca",
        config,
        seg_sgx::Platform::new_with_seed(seed),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        Arc::clone(&group) as Arc<dyn ObjectStore>,
        dedup,
    );
    let server = setup.server().unwrap();
    Rig {
        setup,
        server,
        content,
        group,
    }
}

fn is_integrity_error(result: Result<impl std::fmt::Debug, SegShareError>) -> bool {
    matches!(
        result,
        Err(SegShareError::Request {
            code: ErrorCode::IntegrityViolation,
            ..
        })
    )
}

/// Store keys created by the last operation — the attacker can watch
/// which (opaque) objects a request touches.
fn keys_touched_by(store: &AdversaryStore<MemStore>, before: &[String]) -> Vec<String> {
    let mut after = store.inner().list().unwrap();
    after.retain(|k| !before.contains(k));
    after
}

#[test]
fn tampering_with_any_stored_object_is_detected() {
    let r = rig(EnclaveConfig::default(), 100);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    a.mkdir("/dir").unwrap();
    a.put("/dir/file", &vec![0x5au8; 50_000]).unwrap();

    // Flip one bit in *every* content-store object, one at a time.
    // Detection is lazy (on access, like the paper's validation-on-read),
    // so we probe the operations that touch each object: reading the
    // file, listing the directories, and an ownership check on the root
    // ACL. At least one probe must report an integrity violation
    // (S1/S2: all data *and management* files are protected).
    let keys = r.content.inner().list().unwrap();
    assert!(keys.len() > 5, "expected several encrypted objects");
    for key in keys {
        if key.starts_with("!sealed") {
            continue; // sealed blobs are read only at launch
        }
        if key.starts_with("!audit") {
            // Audit-trail objects sit off the request path; their
            // integrity probe is chain verification.
            r.content.snapshot_object(&key).unwrap();
            r.content.tamper(&key, 13, 2).unwrap();
            assert!(
                matches!(r.server.audit_verify(), Err(SegShareError::Integrity(_))),
                "tamper of {key} was not detected by audit_verify"
            );
            r.content.rollback_object(&key).unwrap();
            assert!(r.server.audit_verify().is_ok());
            continue;
        }
        r.content.snapshot_object(&key).unwrap();
        r.content.tamper(&key, 4096 + 13, 2).unwrap();
        let probes = [
            a.get("/dir/file").map(|_| ()),
            a.list("/dir").map(|_| ()),
            a.list("/").map(|_| ()),
            // Touches the root ACL (ownership check) — expected to be
            // Denied when intact, IntegrityViolation when tampered.
            a.set_perm("/", "~alice", Perm::Read).map(|_| ()),
        ];
        let detected = probes.iter().any(|p| {
            matches!(
                p,
                Err(SegShareError::Request {
                    code: ErrorCode::IntegrityViolation,
                    ..
                })
            )
        });
        assert!(detected, "tamper of {key} was not detected by any probe");
        r.content.rollback_object(&key).unwrap();
        // Sanity: intact again.
        assert_eq!(a.get("/dir/file").unwrap().len(), 50_000);
    }
}

#[test]
fn individual_file_rollback_is_detected() {
    let r = rig(EnclaveConfig::default(), 101);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();

    let before = r.content.inner().list().unwrap();
    a.put("/target", b"version 1").unwrap();
    // Snapshot every object the upload touched (data, ACL, hash
    // records, parent directory) — the attacker rolls back the data
    // and its hash record *consistently*.
    let touched = keys_touched_by(&r.content, &before);
    for key in &touched {
        r.content.snapshot_object(key).unwrap();
    }

    a.put("/target", b"version 2 - revoke the secret!").unwrap();
    assert_eq!(a.get("/target").unwrap(), b"version 2 - revoke the secret!");

    // Roll back only the file's own objects (not the whole store).
    for key in &touched {
        r.content.rollback_object(key).unwrap();
    }
    assert!(
        is_integrity_error(a.get("/target")),
        "individual-file rollback must be detected (§V-D)"
    );
}

#[test]
fn member_list_rollback_cannot_resurrect_membership() {
    // The §V-D motivation: "an old member list could enable a user to
    // regain access to files for which the permissions were previously
    // revoked".
    let r = rig(EnclaveConfig::default(), 102);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = r.setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    let mut b = r.server.connect_local(&bob).unwrap();

    a.put("/secret", b"classified").unwrap();
    let before = r.group.inner().list().unwrap();
    a.add_user("bob", "insiders").unwrap();
    a.set_perm("/secret", "insiders", Perm::Read).unwrap();
    assert_eq!(b.get("/secret").unwrap(), b"classified");

    // The attacker snapshots the group-store state while bob is a
    // member...
    let touched = keys_touched_by(&r.group, &before);
    assert!(!touched.is_empty());
    for key in &touched {
        r.group.snapshot_object(key).unwrap();
    }

    // ...alice revokes bob...
    a.remove_user("bob", "insiders").unwrap();
    assert!(matches!(
        b.get("/secret"),
        Err(SegShareError::Request {
            code: ErrorCode::Denied,
            ..
        })
    ));

    // ...and the attacker replays the stale member list. The enclave
    // must detect the rollback rather than honour the old membership.
    for key in &touched {
        r.group.rollback_object(key).unwrap();
    }
    let result = b.get("/secret");
    assert!(
        is_integrity_error(result),
        "stale member list must not restore access"
    );
}

#[test]
fn whole_fs_rollback_detected_only_with_counter() {
    // Without §V-E, rolling back *everything* (including the root) is
    // the one attack the individual-file tree cannot see — the paper is
    // explicit about this boundary. With the monotonic counter it is
    // caught.
    for (whole_fs, expect_detected) in [(false, false), (true, true)] {
        let config = EnclaveConfig {
            rollback_whole_fs: whole_fs,
            ..EnclaveConfig::default()
        };
        let r = rig(config, 103 + whole_fs as u64);
        let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
        let mut a = r.server.connect_local(&alice).unwrap();

        a.put("/doc", b"old state").unwrap();
        r.content.snapshot_everything().unwrap();
        r.group.snapshot_everything().unwrap();
        a.put("/doc", b"new state").unwrap();

        r.content.rollback_everything().unwrap();
        r.group.rollback_everything().unwrap();

        let result = a.get("/doc");
        if expect_detected {
            assert!(
                is_integrity_error(result),
                "whole-FS rollback must be detected with the counter (§V-E)"
            );
        } else {
            // The complete, consistent old state verifies — exactly the
            // residual risk the paper assigns to §V-E.
            assert_eq!(result.unwrap(), b"old state");
        }
    }
}

#[test]
fn provider_sees_no_plaintext() {
    let r = rig(EnclaveConfig::default(), 105);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();

    a.mkdir("/top-secret-project").unwrap();
    a.put(
        "/top-secret-project/merger-plan.docx",
        b"ACME will acquire Initech for ONE MILLION dollars",
    )
    .unwrap();
    a.add_user("bob", "merger-team").unwrap();
    a.set_perm(
        "/top-secret-project/merger-plan.docx",
        "merger-team",
        Perm::Read,
    )
    .unwrap();

    // S1: neither file contents, nor paths, nor group names, nor user
    // names appear anywhere in either store (keys or values).
    for store in [&r.content, &r.group] {
        for key in store.inner().list().unwrap() {
            if key.starts_with("!sealed") {
                continue;
            }
            for needle in [
                "top-secret",
                "merger",
                "ACME",
                "Initech",
                "MILLION",
                "alice",
                "bob",
            ] {
                assert!(
                    !key.contains(needle),
                    "storage key {key:?} leaks {needle:?}"
                );
                let value = store.inner().get(&key).unwrap().unwrap();
                let haystack = String::from_utf8_lossy(&value);
                assert!(
                    !haystack.contains(needle),
                    "object {key:?} leaks {needle:?}"
                );
            }
        }
    }
}

#[test]
fn unauthorized_requests_are_denied_not_crashed() {
    let r = rig(EnclaveConfig::default(), 106);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mallory = r.setup.enroll_user("mallory", "m@x", "Mallory").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    let mut m = r.server.connect_local(&mallory).unwrap();

    a.mkdir("/private").unwrap();
    a.put("/private/data", b"alice only").unwrap();

    // Mallory probes everything she can think of; the server stays up
    // and denies each one.
    assert!(m.get("/private/data").is_err());
    assert!(m.put("/private/data", b"overwritten").is_err());
    assert!(m.remove("/private/data").is_err());
    assert!(m.rename("/private/data", "/stolen").is_err());
    assert!(m
        .set_perm("/private/data", "~mallory", Perm::ReadWrite)
        .is_err());
    assert!(m.add_owner("/private/data", "~mallory").is_err());
    assert!(m.set_inherit("/private/data", true).is_err());
    assert!(m.list("/private").is_err());
    // Creating her own content in the root is allowed by design.
    m.put("/mallorys-own", b"hers").unwrap();
    // Alice is untouched.
    assert_eq!(a.get("/private/data").unwrap(), b"alice only");
}

#[test]
fn multi_user_adversary_gets_only_the_union_of_permissions() {
    // §III-B: "An attacker controlling multiple users should only have
    // permissions according to the union of permissions of the
    // individual controlled users."
    let r = rig(EnclaveConfig::default(), 107);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let eve1 = r.setup.enroll_user("eve1", "e1@x", "Eve One").unwrap();
    let eve2 = r.setup.enroll_user("eve2", "e2@x", "Eve Two").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    let mut e1 = r.server.connect_local(&eve1).unwrap();
    let mut e2 = r.server.connect_local(&eve2).unwrap();

    a.put("/readable-by-eve1", b"r1").unwrap();
    a.set_perm("/readable-by-eve1", "~eve1", Perm::Read)
        .unwrap();
    a.put("/writable-by-eve2", b"w2").unwrap();
    a.set_perm("/writable-by-eve2", "~eve2", Perm::Write)
        .unwrap();
    a.put("/neither", b"n").unwrap();

    // Each controlled user has exactly their own grant...
    assert_eq!(e1.get("/readable-by-eve1").unwrap(), b"r1");
    e2.put("/writable-by-eve2", b"w2 modified").unwrap();
    // ...and no cross-pollination.
    assert!(e2.get("/readable-by-eve1").is_err());
    assert!(e1.put("/writable-by-eve2", b"x").is_err());
    assert!(e1.get("/neither").is_err());
    assert!(e2.get("/neither").is_err());
}

#[test]
fn storage_failures_surface_as_errors_not_corruption() {
    let r = rig(EnclaveConfig::default(), 108);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    a.put("/file", b"stable").unwrap();

    // Inject a failure a few operations ahead; requests fail cleanly.
    r.content.fail_after(Some(2));
    let result = a.get("/file");
    assert!(result.is_err(), "injected failure must surface");
    r.content.fail_after(None);
    // Service recovers.
    assert_eq!(a.get("/file").unwrap(), b"stable");
}

#[test]
fn stolen_certificate_without_key_cannot_connect() {
    let r = rig(EnclaveConfig::default(), 109);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mallory = r.setup.enroll_user("mallory", "m@x", "Mallory").unwrap();

    // Mallory presents alice's certificate with her own key.
    let frankenstein = segshare::EnrolledUser {
        user_id: alice.user_id.clone(),
        certificate: alice.certificate.clone(),
        secret_key: mallory.secret_key.clone(),
        ca_key: alice.ca_key,
        now: alice.now,
    };
    assert!(
        r.server.connect_local(&frankenstein).is_err(),
        "certificate-verify must require the matching private key"
    );
}

/// A protocol-level attacker: a *valid* user speaking raw protocol
/// messages in hostile orders ("send arbitrary requests to the enclave",
/// §III-B).
#[test]
fn hostile_protocol_sequences_are_survived() {
    use seg_proto::{Request, Response};
    use seg_tls::SecureStream;

    let r = rig(EnclaveConfig::default(), 110);
    let mallory = r.setup.enroll_user("mallory", "m@x", "Mallory").unwrap();

    // Raw secure stream (below the Client convenience layer).
    let (client_t, server_t) = seg_net::duplex();
    let enclave = std::sync::Arc::clone(r.server.enclave());
    std::thread::spawn(move || {
        let _ = segshare::untrusted::serve_connection(&enclave, server_t);
    });
    let mut stream = SecureStream::connect(
        client_t,
        mallory.certificate.clone(),
        mallory.secret_key.clone(),
        mallory.ca_key,
        mallory.now,
        &mut seg_crypto::rng::SystemRng::new(),
    )
    .unwrap();

    let send = |stream: &mut SecureStream<_>, req: &Request| stream.send(&req.encode()).unwrap();

    // 1. Data chunk with no active upload -> BadRequest, session lives.
    send(
        &mut stream,
        &Request::Data {
            bytes: vec![1, 2, 3],
        },
    );
    let resp = Response::decode(&stream.recv().unwrap()).unwrap();
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::BadRequest,
            ..
        }
    ));

    // 2. Announce an upload, then interrupt it with another request:
    //    the upload aborts with an error and the interrupting request
    //    is *not* silently executed.
    send(
        &mut stream,
        &Request::PutFile {
            path: "/m".to_string(),
            size: 10,
        },
    );
    send(
        &mut stream,
        &Request::Get {
            path: "/".to_string(),
        },
    );
    let resp = Response::decode(&stream.recv().unwrap()).unwrap();
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::BadRequest,
            ..
        }
    ));

    // 3. Oversized chunk against a fresh announcement.
    send(
        &mut stream,
        &Request::PutFile {
            path: "/m".to_string(),
            size: 4,
        },
    );
    send(
        &mut stream,
        &Request::Data {
            bytes: vec![0u8; 100],
        },
    );
    let resp = Response::decode(&stream.recv().unwrap()).unwrap();
    assert!(matches!(resp, Response::Error { .. }));

    // 4. After all that abuse, an honest request still works.
    send(
        &mut stream,
        &Request::PutFile {
            path: "/m".to_string(),
            size: 2,
        },
    );
    send(&mut stream, &Request::Data { bytes: vec![7, 7] });
    let resp = Response::decode(&stream.recv().unwrap()).unwrap();
    assert!(matches!(resp, Response::Ok), "{resp:?}");
    send(
        &mut stream,
        &Request::Get {
            path: "/m".to_string(),
        },
    );
    let resp = Response::decode(&stream.recv().unwrap()).unwrap();
    assert!(matches!(resp, Response::FileStart { size: 2 }));
    let resp = Response::decode(&stream.recv().unwrap()).unwrap();
    assert!(matches!(resp, Response::Data { .. }));
}
