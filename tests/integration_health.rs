//! The health plane end to end: a clean workload stays `healthy` with
//! zero alerts; every corruption class the §III-B attacker can inject
//! (content bit-flips, audit-trail truncation, stale rollback-tree
//! state, store orphans, cache incoherence) is caught by the
//! background scrubber within one pass and latches the `failing`
//! state with a correlated, fingerprint-only alert.

use std::sync::Arc;

use seg_store::{AdversaryStore, MemStore, ObjectStore};
use segshare::{EnclaveConfig, FsoSetup, HealthOptions, ScrubCheck, SegShareServer};

struct Rig {
    setup: FsoSetup,
    server: SegShareServer,
    content: Arc<AdversaryStore<MemStore>>,
}

fn rig(config: EnclaveConfig, seed: u64) -> Rig {
    let content = Arc::new(AdversaryStore::new(MemStore::new()));
    let group: Arc<dyn ObjectStore> = Arc::new(AdversaryStore::new(MemStore::new()));
    let dedup: Arc<dyn ObjectStore> = Arc::new(AdversaryStore::new(MemStore::new()));
    let setup = FsoSetup::with_stores(
        "ca",
        config,
        seg_sgx::Platform::new_with_seed(seed),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        group,
        dedup,
    );
    let server = setup.server().unwrap();
    Rig {
        setup,
        server,
        content,
    }
}

/// Drives budgeted scrub steps until one full pass completes,
/// returning the findings raised during it.
fn run_scrub_pass(server: &SegShareServer) -> u64 {
    let mut findings = 0;
    for _ in 0..10_000 {
        let report = server.enclave().scrub_step();
        findings += report.findings;
        if report.pass_completed {
            return findings;
        }
    }
    panic!("scrub pass did not complete within budget");
}

#[test]
fn clean_stationary_workload_stays_healthy_with_zero_alerts() {
    let config = EnclaveConfig {
        cache: true,
        ..EnclaveConfig::default()
    };
    let r = rig(config, 700);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    a.mkdir("/docs").unwrap();
    for i in 0..8 {
        let path = format!("/docs/f{i}");
        a.put(&path, &vec![i as u8; 2_000]).unwrap();
        assert_eq!(a.get(&path).unwrap().len(), 2_000);
    }

    // Two full scrub passes over the live namespace: nothing to find.
    for _ in 0..2 {
        assert_eq!(run_scrub_pass(&r.server), 0, "clean data must not alert");
    }
    let health = r.server.enclave().health();
    assert_eq!(health.state_code(), 0);
    assert_eq!(health.state_label(), "healthy");
    assert_eq!(health.findings_total(), 0);
    assert_eq!(health.monitor().alerts().total(), 0);
    assert_eq!(health.scrub_passes(), 2);
    assert!(
        health.items(ScrubCheck::Tree) > 10,
        "the walk visited the namespace"
    );
    assert!(
        health.items(ScrubCheck::Audit) > 0,
        "the audit chain was re-verified"
    );
    let report = r.server.health_report();
    assert!(report.contains("\"state\":\"healthy\""));
    assert!(report.contains("\"history\""));
}

#[test]
fn content_bitflip_latches_failing_with_fingerprint_only_alert() {
    let r = rig(EnclaveConfig::default(), 701);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    a.mkdir("/payroll").unwrap();
    a.put("/payroll/salaries", &vec![0x5au8; 40_000]).unwrap();

    // Flip one bit in some non-special content object: the walk's
    // verified read (AEAD + rollback tree) must refuse it.
    let key = r
        .content
        .inner()
        .list()
        .unwrap()
        .into_iter()
        .find(|k| !k.starts_with('!'))
        .expect("an encrypted object exists");
    r.content.tamper(&key, 13, 4).unwrap();

    let findings = run_scrub_pass(&r.server);
    assert!(findings > 0, "one pass must catch the bit-flip");
    let health = r.server.enclave().health();
    assert_eq!(health.state_code(), 2);
    assert_eq!(health.state_label(), "failing");
    assert!(health.monitor().alerts().total() > 0);

    // The alert and report are correlated but leak nothing: compiled-in
    // names and keyed fingerprints only — never paths or user ids.
    let report = r.server.health_report();
    assert!(report.contains("scrub_integrity"));
    assert!(!report.contains("payroll"), "no plaintext paths");
    assert!(!report.contains("salaries"), "no plaintext names");
    assert!(!report.contains("alice"), "no principal identities");
}

#[test]
fn audit_trail_truncation_is_an_audit_finding() {
    let r = rig(EnclaveConfig::default(), 702);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    for i in 0..5 {
        a.put(&format!("/f{i}"), b"body").unwrap();
    }

    // Delete one hash-chained audit record: the incremental window
    // verification must report the hole within the pass.
    let victim = r
        .content
        .inner()
        .list()
        .unwrap()
        .into_iter()
        .find(|k| k.starts_with("!audit-rec-"))
        .expect("audit records exist");
    r.content.inner().delete(&victim).unwrap();

    let findings = run_scrub_pass(&r.server);
    assert!(findings > 0);
    let health = r.server.enclave().health();
    assert!(
        health.findings(ScrubCheck::Audit) > 0,
        "the finding is attributed to the audit check"
    );
    assert_eq!(health.state_code(), 2);
}

#[test]
fn stale_tree_state_rollback_is_detected_by_the_walk() {
    let r = rig(EnclaveConfig::default(), 703);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();

    let before = r.content.inner().list().unwrap();
    a.put("/target", b"version 1").unwrap();
    let touched: Vec<String> = r
        .content
        .inner()
        .list()
        .unwrap()
        .into_iter()
        .filter(|k| !before.contains(k))
        .collect();
    for key in &touched {
        r.content.snapshot_object(key).unwrap();
    }
    a.put("/target", b"version 2 - revoked").unwrap();
    // Consistent rollback of the file's data *and* hash record: only
    // the parent tree comparison can catch it — exactly what the
    // scrubber's verified read performs.
    for key in &touched {
        r.content.rollback_object(key).unwrap();
    }

    let findings = run_scrub_pass(&r.server);
    assert!(findings > 0, "stale tree state must be caught in one pass");
    let health = r.server.enclave().health();
    assert!(health.findings(ScrubCheck::Tree) > 0);
    assert_eq!(health.state_code(), 2);
}

#[test]
fn orphaned_store_key_is_an_orphan_finding() {
    let r = rig(EnclaveConfig::default(), 704);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();
    a.put("/real", b"legitimate").unwrap();

    // A key the enclave never wrote (attacker garbage, or a refcount
    // leak from a buggy host): present across a whole pass and never
    // claimed by the walk.
    r.content
        .inner()
        .put("deadbeef-not-an-enclave-object", b"junk")
        .unwrap();

    let findings = run_scrub_pass(&r.server);
    assert!(findings > 0);
    let health = r.server.enclave().health();
    assert!(health.findings(ScrubCheck::Orphan) > 0);
    assert_eq!(
        health.findings(ScrubCheck::Tree),
        0,
        "the walk itself saw nothing wrong"
    );
    assert_eq!(health.state_code(), 2);
}

#[test]
fn cache_coherence_probe_catches_tampering_under_a_live_entry() {
    let config = EnclaveConfig {
        cache: true,
        ..EnclaveConfig::default()
    };
    let r = rig(config, 705);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = r.server.connect_local(&alice).unwrap();

    let before = r.content.inner().list().unwrap();
    a.put("/hot", &vec![7u8; 1_000]).unwrap();
    let touched: Vec<String> = r
        .content
        .inner()
        .list()
        .unwrap()
        .into_iter()
        .filter(|k| !before.contains(k))
        .collect();
    // Warm the cache: the download path fills the body entry.
    assert_eq!(a.get("/hot").unwrap().len(), 1_000);
    assert_eq!(a.get("/hot").unwrap().len(), 1_000);

    // Tamper the backing store *under* the live cache entry. Requests
    // served from cache would keep succeeding — only the coherence
    // probe's cache-vs-verified-reread comparison sees the divergence.
    for key in &touched {
        let _ = r.content.tamper(key, 13, 1);
    }

    let findings = run_scrub_pass(&r.server);
    assert!(findings > 0);
    let health = r.server.enclave().health();
    assert!(
        health.findings(ScrubCheck::Cache) + health.findings(ScrubCheck::Tree) > 0,
        "divergence caught by the cache probe and/or the walk"
    );
    assert_eq!(health.state_code(), 2);
}

#[test]
fn health_runner_scrubs_probes_and_samples_an_idle_server() {
    let config = EnclaveConfig {
        // Aggressive cadence so the test observes full passes quickly.
        scrub_interval_us: 5_000,
        ..EnclaveConfig::default()
    };
    let r = rig(config, 706);
    let canary = r.setup.enroll_user("canary", "c@x", "Canary").unwrap();
    r.server.start_health(HealthOptions {
        canary: Some(canary),
        tick_us: 2_000,
        canary_interval_us: 10_000,
    });

    // The server is otherwise idle: every signal below is produced by
    // the background runner alone.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let health = r.server.enclave().health();
        if health.scrub_passes() >= 2 && health.canary_probes() >= 3 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "runner made no progress: passes={} probes={}",
            health.scrub_passes(),
            health.canary_probes()
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    r.server.stop_health();

    let health = r.server.enclave().health();
    assert_eq!(health.canary_failures(), 0, "loopback probes succeed");
    assert!(health.canary_last_latency_us() > 0);
    assert_eq!(
        health.findings_total(),
        0,
        "an untampered server scrubs clean (canary objects included)"
    );
    assert_eq!(health.state_code(), 0);

    let snapshot = r.server.metrics_snapshot();
    assert!(snapshot.counter("seg_scrub_passes_total").unwrap_or(0) >= 2);
    assert!(
        snapshot
            .counter("seg_health_canary_probes_total")
            .unwrap_or(0)
            >= 3
    );
    let report = r.server.health_report();
    assert!(report.contains("\"state\":\"healthy\""));
    assert!(report.contains("\"canary\""));
}

#[test]
fn disabled_health_plane_is_inert() {
    let r = rig(EnclaveConfig::default(), 707);
    r.server.set_health(false);
    assert!(r.server.enclave().health_tick().is_none());
    let health = r.server.enclave().health();
    assert!(!health.enabled());
    assert_eq!(health.scrub_passes(), 0);
    // The report still renders (state machine reads, no scrub work).
    let report = r.server.health_report();
    assert!(report.contains("\"enabled\":false"));
    r.server.set_health(true);
    assert!(health.enabled());
}
