//! Parallel request serving: with the per-object `LockManager` in
//! place, concurrent sessions must preserve every §III objective that
//! used to be trivially guaranteed by the old whole-filesystem lock —
//! revocation takes effect on the very next request, the rollback tree
//! still verifies and still detects tampering, the audit chain stays
//! intact — and no interleaving of multi-object operations may
//! deadlock the dispatcher.
//!
//! All tests drive real client sessions (full TLS handshake, one
//! server pump thread per session) against one shared enclave, so the
//! lock scopes exercised are exactly the production ones in
//! `session.rs`.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use seg_fs::Perm;
use seg_proto::ErrorCode;
use seg_store::{AdversaryStore, MemStore, ObjectStore, StoreError};
use segshare::{Client, EnclaveConfig, EnrolledUser, FsoSetup, SegShareError, SegShareServer};

/// Paper prototype (audit + rollback tree on) with the object cache —
/// the configuration with the most shared mutable enclave state.
fn full_config() -> EnclaveConfig {
    EnclaveConfig {
        cache: true,
        ..EnclaveConfig::paper_prototype()
    }
}

struct Rig {
    setup: FsoSetup,
    server: SegShareServer,
    content: Arc<AdversaryStore<MemStore>>,
}

fn rig(config: EnclaveConfig, seed: u64) -> Rig {
    let content = Arc::new(AdversaryStore::new(MemStore::new()));
    let setup = FsoSetup::with_stores(
        "ca",
        config,
        seg_sgx::Platform::new_with_seed(seed),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        Arc::new(MemStore::new()),
        Arc::new(MemStore::new()),
    );
    let server = setup.server().unwrap();
    Rig {
        setup,
        server,
        content,
    }
}

fn connect(r: &Rig, user: &EnrolledUser) -> Client<seg_net::ChannelTransport> {
    r.server.connect_local(user).unwrap()
}

fn is_denied<T: std::fmt::Debug>(result: &Result<T, SegShareError>) -> bool {
    matches!(
        result,
        Err(SegShareError::Request {
            code: ErrorCode::Denied,
            ..
        })
    )
}

#[test]
fn parallel_disjoint_uploads_verify_and_audit_stays_intact() {
    // Four sessions writing disjoint directories run under disjoint
    // lock scopes; afterwards every object must read back bit-exact
    // through full tree validation and the hash-chained audit trail
    // must verify end to end.
    let r = rig(full_config(), 400);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();

    std::thread::scope(|s| {
        for t in 0..4usize {
            let mut client = connect(&r, &alice);
            s.spawn(move || {
                let dir = format!("/w{t}");
                client.mkdir(&dir).unwrap();
                for j in 0..6usize {
                    let body = vec![(t * 16 + j) as u8; 3000 + j];
                    client.put(&format!("{dir}/f{j}"), &body).unwrap();
                }
                for j in 0..6usize {
                    let body = vec![(t * 16 + j) as u8; 3000 + j];
                    assert_eq!(client.get(&format!("{dir}/f{j}")).unwrap(), body);
                }
            });
        }
    });

    // Cross-check from a fresh session: state written under per-object
    // locks is globally consistent, not merely session-visible.
    let mut c = connect(&r, &alice);
    for t in 0..4usize {
        assert_eq!(c.list(&format!("/w{t}")).unwrap().len(), 6);
    }
    assert!(r.server.audit_verify().unwrap() > 0);
}

#[test]
fn overlapping_writes_to_one_directory_lose_no_entries() {
    // All sessions write distinct files into the *same* directory: the
    // parent's write lock serializes the dirfile read-modify-write, so
    // no concurrent commit may overwrite another's directory entry.
    let r = rig(full_config(), 401);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut c = connect(&r, &alice);
    c.mkdir("/shared").unwrap();

    std::thread::scope(|s| {
        for t in 0..4usize {
            let mut client = connect(&r, &alice);
            s.spawn(move || {
                for j in 0..5usize {
                    client
                        .put(&format!("/shared/t{t}f{j}"), format!("{t}:{j}").as_bytes())
                        .unwrap();
                }
            });
        }
    });

    assert_eq!(c.list("/shared").unwrap().len(), 20);
    for t in 0..4usize {
        for j in 0..5usize {
            assert_eq!(
                c.get(&format!("/shared/t{t}f{j}")).unwrap(),
                format!("{t}:{j}").as_bytes()
            );
        }
    }
    assert!(r.server.audit_verify().unwrap() > 0);
}

#[test]
fn readers_never_observe_torn_state_during_overwrites() {
    // One writer repeatedly overwrites a file with self-describing
    // bodies (every byte equals the version number); parallel readers
    // doing full tree validation must only ever see a complete version
    // — no mixed bytes, no spurious integrity errors from catching the
    // rollback-tree walk mid-update.
    let r = rig(full_config(), 402);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut w = connect(&r, &alice);
    w.put("/hot", &[0u8; 2048]).unwrap();

    let done = AtomicBool::new(false);
    let version = AtomicU32::new(0);
    std::thread::scope(|s| {
        for _ in 0..3 {
            let mut reader = connect(&r, &alice);
            let done = &done;
            let version = &version;
            s.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let floor = version.load(Ordering::SeqCst);
                    let body = reader.get("/hot").unwrap();
                    assert_eq!(body.len(), 2048);
                    let v = body[0];
                    assert!(
                        body.iter().all(|&b| b == v),
                        "torn read: mixed versions in one body"
                    );
                    // A read that *started* after version `floor` was
                    // committed must not return anything older.
                    assert!(u32::from(v) >= floor, "stale read: {v} < {floor}");
                }
            });
        }
        for v in 1..=40u8 {
            w.put("/hot", &[v; 2048]).unwrap();
            version.store(u32::from(v), Ordering::SeqCst);
        }
        done.store(true, Ordering::Relaxed);
    });
}

#[test]
fn revocation_is_immediate_under_parallel_reads() {
    // §III P3/S4: the *next* request after `remove_user` returns must
    // be denied, even while other sessions hammer the same object and
    // keep every cache layer warm.
    let r = rig(full_config(), 403);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = r.setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = connect(&r, &alice);
    a.put("/secret", b"classified").unwrap();
    a.add_user("bob", "ins").unwrap();
    a.set_perm("/secret", "ins", Perm::Read).unwrap();

    let revoked = AtomicBool::new(false);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..3 {
            let mut b = connect(&r, &bob);
            let revoked = &revoked;
            let done = &done;
            s.spawn(move || {
                let mut denied_after_revoke = false;
                while !done.load(Ordering::Relaxed) {
                    let was_revoked = revoked.load(Ordering::SeqCst);
                    match b.get("/secret") {
                        Ok(body) => {
                            assert_eq!(body, b"classified");
                            // A read *started* after the revocation
                            // returned must never succeed.
                            assert!(!was_revoked, "read succeeded after revocation");
                        }
                        Err(e) => {
                            assert!(is_denied(&Err::<(), _>(e)), "only Denied is acceptable");
                            denied_after_revoke = true;
                        }
                    }
                }
                assert!(denied_after_revoke, "reader never observed the revocation");
            });
        }
        // Let the readers warm up, then revoke mid-storm.
        std::thread::sleep(std::time::Duration::from_millis(20));
        a.remove_user("bob", "ins").unwrap();
        revoked.store(true, Ordering::SeqCst);
        // Give every reader a chance to issue post-revocation reads.
        std::thread::sleep(std::time::Duration::from_millis(20));
        done.store(true, Ordering::Relaxed);
    });
    assert!(r.server.audit_verify().unwrap() > 0);
}

#[test]
fn rollback_detection_survives_a_parallel_workload() {
    // The tree built up under concurrent commits must still catch a
    // store rollback afterwards: parallelism must not have skipped or
    // misordered any hash-record update. Whole-store rollback to a
    // *consistent* earlier state is exactly the §V-E case, so this rig
    // also enables the monotonic-counter protection (whose root counter
    // was bumped under concurrent commits).
    let r = rig(
        EnclaveConfig {
            rollback_whole_fs: true,
            ..full_config()
        },
        404,
    );
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();

    std::thread::scope(|s| {
        for t in 0..3usize {
            let mut client = connect(&r, &alice);
            s.spawn(move || {
                let dir = format!("/d{t}");
                client.mkdir(&dir).unwrap();
                for j in 0..4usize {
                    client
                        .put(&format!("{dir}/f{j}"), format!("old {t} {j}").as_bytes())
                        .unwrap();
                }
            });
        }
    });

    // Snapshot the content store, advance one object, then roll the
    // whole store back: the updated tree must refuse the stale state.
    r.content.snapshot_everything().unwrap();
    let mut c = connect(&r, &alice);
    c.put("/d0/f0", b"newer").unwrap();
    r.content.rollback_everything().unwrap();
    match c.get("/d0/f0") {
        Ok(body) => assert_eq!(body, b"newer", "stale body served after rollback"),
        Err(SegShareError::Request {
            code: ErrorCode::IntegrityViolation,
            ..
        }) => {}
        Err(other) => panic!("unexpected failure mode: {other:?}"),
    }
}

#[test]
fn membership_churn_on_distinct_members_stays_consistent() {
    // Per-member lock keys let revocations of *different* members run
    // in parallel; after arbitrary interleavings of remove/re-add per
    // member, the final membership must match the last operation of
    // every thread.
    let r = rig(full_config(), 405);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = connect(&r, &alice);
    a.put("/team-doc", b"shared").unwrap();
    a.set_perm("/team-doc", "team", Perm::Read).unwrap();
    let members: Vec<EnrolledUser> = (0..3)
        .map(|i| {
            let name = format!("u{i}");
            let user = r
                .setup
                .enroll_user(&name, &format!("{name}@x"), "U")
                .unwrap();
            a.add_user(&name, "team").unwrap();
            user
        })
        .collect();

    std::thread::scope(|s| {
        for (i, _) in members.iter().enumerate() {
            let mut owner = connect(&r, &alice);
            s.spawn(move || {
                let name = format!("u{i}");
                for _ in 0..8 {
                    owner.remove_user(&name, "team").unwrap();
                    owner.add_user(&name, "team").unwrap();
                }
            });
        }
    });

    // Every member's final state is "added": all must read the doc.
    for m in &members {
        let mut c = connect(&r, m);
        assert_eq!(c.get("/team-doc").unwrap(), b"shared");
    }
    assert!(r.server.audit_verify().unwrap() > 0);
}

#[test]
fn permuted_multi_object_operations_do_not_deadlock() {
    // Deadlock smoke test: sessions acquire multi-key scopes in every
    // order the protocol allows — AddUser scopes with requester/member
    // in opposite roles, sibling creates under one parent, global-mode
    // renames and group deletions interleaved with per-object traffic.
    // The ordered stripe acquisition must make every interleaving
    // terminate; the test simply has to finish.
    let r = rig(full_config(), 406);
    let alice = r.setup.enroll_user("alice", "a@x", "Alice").unwrap();
    for i in 0..4 {
        r.setup
            .enroll_user(&format!("m{i}"), &format!("m{i}@x"), "M")
            .unwrap();
    }
    let mut c = connect(&r, &alice);
    c.mkdir("/mix").unwrap();

    std::thread::scope(|s| {
        for t in 0..4usize {
            let mut client = connect(&r, &alice);
            s.spawn(move || {
                for round in 0..25usize {
                    match (t + round) % 4 {
                        0 => {
                            // Membership scopes with members in
                            // opposite orders across threads.
                            let g = format!("g{t}");
                            let (x, y) = if t % 2 == 0 { (0, 1) } else { (1, 0) };
                            let _ = client.add_user(&format!("m{x}"), &g);
                            let _ = client.add_user(&format!("m{y}"), &g);
                            let _ = client.remove_user(&format!("m{x}"), &g);
                        }
                        1 => {
                            // Sibling creates/deletes under one parent.
                            let p = format!("/mix/t{t}r{round}");
                            let _ = client.put(&p, b"x");
                            let _ = client.remove(&p);
                        }
                        2 => {
                            // Global-mode op racing per-object scopes.
                            let from = format!("/mix/mv{t}");
                            let _ = client.put(&from, b"y");
                            let _ = client.rename(&from, &format!("/mix/mv{t}b"));
                            let _ = client.remove(&format!("/mix/mv{t}b"));
                        }
                        _ => {
                            // Group teardown (global mode) under churn.
                            let g = format!("tmp{t}");
                            let _ = client.add_user(&format!("m{t}"), &g);
                            let _ = client.delete_group(&g);
                        }
                    }
                }
            });
        }
    });

    // The dispatcher survived every interleaving; the audit chain must
    // have recorded a linearization of it.
    assert!(r.server.audit_verify().unwrap() > 0);
}

// ----------------------------------------------------- watch plane

/// A store that sleeps on every read and write: lock hold times stretch
/// into milliseconds, so contention becomes measurable instead of
/// vanishing into nanosecond acquisitions.
struct DelayStore {
    inner: MemStore,
    delay: Duration,
}

impl DelayStore {
    fn new(delay: Duration) -> DelayStore {
        DelayStore {
            inner: MemStore::new(),
            delay,
        }
    }
}

impl ObjectStore for DelayStore {
    fn get(&self, key: &str) -> Result<Option<Vec<u8>>, StoreError> {
        std::thread::sleep(self.delay);
        self.inner.get(key)
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        std::thread::sleep(self.delay);
        self.inner.put(key, value)
    }

    fn delete(&self, key: &str) -> Result<bool, StoreError> {
        self.inner.delete(key)
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.inner.list()
    }
}

/// A rig whose content and group stores sleep `delay` per access.
fn slow_rig(config: EnclaveConfig, seed: u64, delay: Duration) -> (FsoSetup, SegShareServer) {
    let setup = FsoSetup::with_stores(
        "ca",
        config,
        seg_sgx::Platform::new_with_seed(seed),
        Arc::new(DelayStore::new(delay)),
        Arc::new(DelayStore::new(delay)),
        Arc::new(MemStore::new()),
    );
    let server = setup.server().unwrap();
    (setup, server)
}

/// Total lock wait charged to writes on the path key class.
fn path_write_wait_ns(server: &SegShareServer) -> u64 {
    server
        .metrics_snapshot()
        .histogram("seg_lock_wait_ns{class=\"path\",intent=\"write\"}")
        .expect("lock-wait family always exports")
        .sum
}

#[test]
fn lock_wait_is_attributed_to_the_contended_key_class() {
    // The same operation count run two ways: four sessions hammering
    // ONE path must show substantial write wait on the path class,
    // while four sessions on disjoint paths must show (near) none —
    // the attribution the seg-watch plane exists for.
    let config = EnclaveConfig {
        watch_deadline_us: 0,
        watch_global_budget_us: 0,
        ..EnclaveConfig::paper_prototype()
    };
    let delay = Duration::from_millis(2);

    let (setup, server) = slow_rig(config, 407, delay);
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    std::thread::scope(|s| {
        for t in 0..4usize {
            let mut client = server.connect_local(&alice).unwrap();
            s.spawn(move || {
                for j in 0..4usize {
                    client
                        .put("/contend", format!("{t}:{j}").as_bytes())
                        .unwrap();
                }
            });
        }
    });
    let overlapping = path_write_wait_ns(&server);

    let (setup, server) = slow_rig(config, 408, delay);
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut c = server.connect_local(&alice).unwrap();
    for t in 0..4usize {
        c.mkdir(&format!("/w{t}")).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..4usize {
            let mut client = server.connect_local(&alice).unwrap();
            s.spawn(move || {
                for j in 0..4usize {
                    client
                        .put(&format!("/w{t}/f{j}"), format!("{t}:{j}").as_bytes())
                        .unwrap();
                }
            });
        }
    });
    let disjoint = path_write_wait_ns(&server);

    assert!(
        overlapping > 1_000_000,
        "overlapping writes must accumulate visible path-class wait, got {overlapping}ns"
    );
    assert!(
        overlapping > 10 * disjoint.max(1),
        "disjoint writes must wait far less than overlapping ones \
         (overlapping {overlapping}ns vs disjoint {disjoint}ns)"
    );
}

#[test]
fn watchdog_stall_dumps_a_correlated_bundle_without_leaking_content() {
    // A 1ms deadline over a 3ms-per-store-access rig: every request
    // stalls, so the watchdog must capture its correlated bundle — and
    // that bundle, which leaves the enclave wholesale, must carry only
    // aggregates and fingerprints, never the user id, email domain, or
    // path the workload used.
    let config = EnclaveConfig {
        watch_deadline_us: 1_000,
        ..EnclaveConfig::paper_prototype()
    };
    let (setup, server) = slow_rig(config, 409, Duration::from_millis(3));
    let alice = setup
        .enroll_user("alice", "alice@acme.example", "Alice")
        .unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.put("/plans-secret", b"q3-report body").unwrap();
    assert_eq!(a.get("/plans-secret").unwrap(), b"q3-report body");

    let watch = server.watch_stats();
    assert!(watch.stalls_request() > 0, "the deadline must have tripped");
    assert!(watch.dumps() > 0, "the first stall captures a dump");
    let dump = server.watch_dump().expect("dump stored");
    for section in [
        "\"saturation\"",
        "\"stalls\"",
        "\"global_held_us\"",
        "\"lock_top\"",
        "\"flight\"",
        "\"trace_tail\"",
        "\"slow_requests\"",
        "\"profile\"",
    ] {
        assert!(dump.contains(section), "dump missing section {section}");
    }
    for secret in ["alice", "plans-secret", "q3-report", "acme.example"] {
        assert!(
            !dump.contains(secret),
            "watch dump leaked request content: {secret}"
        );
    }
    assert!(!dump.contains('@'), "watch dump leaked an email");

    // The on-demand report is the same bundle and honors the same
    // boundary.
    let report = server.watch_report();
    assert!(report.contains("\"flight\""));
    assert!(!report.contains("plans-secret") && !report.contains('@'));
}
