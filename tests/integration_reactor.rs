//! Connection-lifecycle edges of the event-driven reactor front end.
//!
//! The reactor replaces the thread-per-connection loop, so these tests
//! pin down exactly the behaviors that differ structurally between the
//! two front ends: partial frames dribbling in (slowloris), peers
//! vanishing mid-handshake, idle connections being reaped by the timer
//! wheel, bounded outbound queues under streaming downloads, accept
//! shedding at the connection cap — and, above all, that a client
//! cannot tell the front ends apart (the equivalence test runs one
//! workload against both and compares every observable outcome).
//!
//! The rest of the integration suite runs against the reactor too: it
//! is the default front end, and CI's matrix re-runs the same suites
//! with `SEGSHARE_FRONTEND=threaded` to hold the seed-era path green.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use seg_fs::Perm;
use seg_net::reactor::ReactorConfig;
use seg_store::{MemStore, ObjectStore};
use segshare::{Client, EnclaveConfig, EnrolledUser, FrontEnd, FsoSetup, SegShareServer};

fn rig(seed: u64) -> (FsoSetup, SegShareServer, EnrolledUser) {
    let setup = FsoSetup::with_stores(
        "ca",
        EnclaveConfig {
            cache: true,
            ..EnclaveConfig::paper_prototype()
        },
        seg_sgx::Platform::new_with_seed(seed),
        Arc::new(MemStore::new()) as Arc<dyn ObjectStore>,
        Arc::new(MemStore::new()) as Arc<dyn ObjectStore>,
        Arc::new(MemStore::new()) as Arc<dyn ObjectStore>,
    );
    let server = setup.server().unwrap();
    server.set_front_end(FrontEnd::Reactor);
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    (setup, server, alice)
}

/// Polls `cond` until it holds or the deadline passes.
fn eventually(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------- edges

/// A slowloris peer dribbles a frame in one-byte pieces with long
/// pauses. The reactor must keep serving other clients at full speed —
/// the partial frame pins a read buffer, never a worker thread — and
/// must tear the connection down cleanly when the slow peer gives up.
#[test]
fn slowloris_partial_frames_do_not_starve_other_clients() {
    let (_setup, server, alice) = rig(1);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    server.serve_listener(listener).unwrap();

    // The slow peer: claims a 4 KiB frame, delivers 3 bytes of it.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.write_all(&4096u32.to_le_bytes()).unwrap();
    for b in [1u8, 2, 3] {
        slow.write_all(&[b]).unwrap();
        slow.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = Arc::clone(server.reactor().stats());
    eventually("slow conn accepted", || stats.accepted_total() >= 1);

    // Meanwhile a real client handshakes and works, over the same
    // reactor, without waiting on the slowloris.
    let mut c = server
        .connect_local(&alice)
        .expect("full client connects while slowloris holds a socket");
    c.mkdir("/fast").unwrap();
    c.put("/fast/doc", b"served").unwrap();
    assert_eq!(c.get("/fast/doc").unwrap(), b"served");

    // The dribbled bytes never formed a frame: no enclave work ran for
    // the slow connection (the real client's frames are the only ones).
    assert_eq!(stats.protocol_errors_total(), 0);

    // The slow peer gives up; its connection (which never completed a
    // single frame) is torn down and the session slot released.
    let live_before = server.watch_stats().live_sessions();
    drop(slow);
    eventually("slowloris torn down", || {
        server.watch_stats().live_sessions() < live_before
    });
}

/// A peer that vanishes mid-handshake (partial frame on the wire, then
/// RST/FIN) must not leak the session slot, the connection, or the
/// live-session gauge.
#[test]
fn mid_handshake_disconnect_releases_everything() {
    let (_setup, server, alice) = rig(2);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    server.serve_listener(listener).unwrap();
    let stats = Arc::clone(server.reactor().stats());

    // One full client before, to prove the server state is live.
    let mut c = server.connect_local(&alice).unwrap();
    c.mkdir("/pre").unwrap();
    let baseline = server.watch_stats().live_sessions();

    for round in 0u32..3 {
        let mut doomed = TcpStream::connect(addr).unwrap();
        // A length prefix and half a "handshake" frame, never finished.
        doomed.write_all(&64u32.to_le_bytes()).unwrap();
        doomed.write_all(&round.to_le_bytes()).unwrap();
        doomed.flush().unwrap();
        eventually("doomed conn accepted", || {
            stats.accepted_total() >= 2 + u64::from(round)
        });
        drop(doomed);
        eventually("doomed conn cleaned", || {
            server.watch_stats().live_sessions() == baseline
        });
    }
    // The surviving session still works — no collateral damage.
    c.put("/pre/doc", b"still here").unwrap();
    assert_eq!(c.get("/pre/doc").unwrap(), b"still here");
    assert_eq!(stats.live_conns(), 1, "only the real client remains");
}

/// A complete-but-garbage first frame is a failed TLS handshake:
/// session-fatal, counted, connection closed, gauge released.
#[test]
fn garbage_handshake_frame_closes_the_connection() {
    let (_setup, server, alice) = rig(3);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    server.serve_listener(listener).unwrap();

    let mut evil = TcpStream::connect(addr).unwrap();
    let garbage = [0xAAu8; 32];
    evil.write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    evil.write_all(&garbage).unwrap();
    evil.flush().unwrap();

    eventually("garbage conn closed", || {
        server.reactor().stats().closed_total() >= 1
    });
    eventually("session slot released", || {
        server.watch_stats().live_sessions() == 0
    });
    // The enclave is unharmed.
    let mut c = server.connect_local(&alice).unwrap();
    c.mkdir("/after").unwrap();
}

/// Idle connections are reaped by the timer wheel: after the idle
/// timeout the client's transport reads closed, the reap counter
/// ticks, and the gauges return to zero. An *active* client must not
/// be reaped.
#[test]
fn idle_timeout_reaps_only_idle_connections() {
    let (_setup, server, alice) = rig(4);
    server.set_reactor_config(ReactorConfig {
        idle_timeout: Duration::from_millis(200),
        ..ReactorConfig::default()
    });

    let mut idle = server.connect_local(&alice).unwrap();
    idle.mkdir("/was-here").unwrap();

    // The busy client keeps issuing requests across several timeout
    // periods — activity must keep resetting its reap deadline.
    let mut busy = server.connect_local(&alice).unwrap();
    for i in 0..8 {
        busy.put("/busy", format!("beat {i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(60));
    }

    let stats = Arc::clone(server.reactor().stats());
    eventually("idle conn reaped", || stats.reaped_idle_total() >= 1);
    // The idle client's next request fails: its connection is gone.
    assert!(idle.get("/was-here").is_err(), "reaped transport is dead");
    // The busy client outlived every timeout period.
    assert_eq!(busy.get("/busy").unwrap(), b"beat 7");
    eventually("gauges settle to the busy conn", || stats.live_conns() == 1);
    assert_eq!(stats.reaped_idle_total(), 1, "only the idle conn reaped");
}

/// Streaming downloads stay constant-memory end to end (§VI): the
/// outbound queue's high-water mark must stay near its configured cap
/// no matter how large the file is, because chunks are produced lazily
/// and only below the low-water mark.
#[test]
fn download_backpressure_keeps_outbound_bounded() {
    let (_setup, server, alice) = rig(5);
    let cap = 256 * 1024;
    server.set_reactor_config(ReactorConfig {
        outbound_bytes: cap,
        ..ReactorConfig::default()
    });
    let mut c = server.connect_local(&alice).unwrap();
    let payload: Vec<u8> = (0..6_000_000u32).map(|i| (i ^ (i >> 11)) as u8).collect();
    c.put("/big", &payload).unwrap();
    assert_eq!(c.get("/big").unwrap(), payload);

    let high = server.reactor().stats().outq_highwater_bytes();
    assert!(high > 0, "the download actually queued frames");
    // One dispatcher turn may overshoot the cap by its drain budget
    // plus a frame; far below the 6 MB file proves streaming.
    assert!(
        high <= (cap + 700 * 1024) as u64,
        "outbound high-water {high} B must stay near the {cap} B cap"
    );
}

/// At the connection cap the reactor sheds new connections instead of
/// queueing them, and the shed is visible on the watch plane.
#[test]
fn accept_shedding_at_the_connection_cap() {
    let (_setup, server, alice) = rig(6);
    server.set_reactor_config(ReactorConfig {
        max_conns: 2,
        ..ReactorConfig::default()
    });
    let _a = server.connect_local(&alice).unwrap();
    let _b = server.connect_local(&alice).unwrap();
    let shed = server.connect_local(&alice);
    assert!(shed.is_err(), "third connection is shed at the cap");
    assert_eq!(server.watch_stats().sheds(), 1);
    assert_eq!(server.reactor().stats().shed_total(), 1);

    // Dropping one admits the next.
    drop(_a);
    eventually("slot freed", || server.reactor().stats().live_conns() < 2);
    let _c = server.connect_local(&alice).unwrap();
}

/// Many concurrent sessions on one reactor: far more connections than
/// worker threads, all making progress, gauges exact at both ends.
#[test]
fn many_concurrent_sessions_share_the_worker_pool() {
    let (_setup, server, alice) = rig(7);
    server.set_reactor_config(ReactorConfig {
        workers: 2,
        ..ReactorConfig::default()
    });
    let mut clients: Vec<Client<seg_net::ChannelTransport>> = (0..24)
        .map(|_| server.connect_local(&alice).unwrap())
        .collect();
    assert_eq!(server.reactor().stats().live_conns(), 24);
    assert_eq!(server.watch_stats().live_sessions(), 24);
    clients[0].mkdir("/shared").unwrap();
    for (i, c) in clients.iter_mut().enumerate() {
        c.put(&format!("/shared/f{i}"), format!("body {i}").as_bytes())
            .unwrap();
    }
    for (i, c) in clients.iter_mut().enumerate() {
        assert_eq!(
            c.get(&format!("/shared/f{i}")).unwrap(),
            format!("body {i}").as_bytes()
        );
    }
    drop(clients);
    eventually("all sessions released", || {
        server.watch_stats().live_sessions() == 0 && server.reactor().stats().live_conns() == 0
    });
}

// ----------------------------------------------------------- equivalence

/// Runs one observable workload and returns every outcome a client can
/// see: directory listings, file bytes, and whether the revoked user's
/// access actually failed.
fn observable_workload(setup: &FsoSetup, server: &SegShareServer) -> (Vec<String>, Vec<u8>, bool) {
    let alice = setup.enroll_user("wl-alice", "wa@x", "Alice").unwrap();
    let bob = setup.enroll_user("wl-bob", "wb@x", "Bob").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.mkdir("/w").unwrap();
    a.put("/w/one", b"first body").unwrap();
    a.put("/w/two", &vec![7u8; 300_000]).unwrap();
    a.add_user("wl-alice", "readers").unwrap(); // creates group, alice owner
    a.add_user("wl-bob", "readers").unwrap();
    a.set_perm("/w/one", "readers", Perm::Read).unwrap();

    let mut b = server.connect_local(&bob).unwrap();
    let readable = b.get("/w/one").is_ok();
    assert!(readable, "shared read works on both front ends");
    a.remove_user("wl-bob", "readers").unwrap();
    let revoked = b.get("/w/one").is_err();

    let listing: Vec<String> = a
        .list("/w")
        .unwrap()
        .into_iter()
        .map(|e| format!("{}{}", if e.is_dir { "d:" } else { "f:" }, e.name))
        .collect();
    let bytes = a.get("/w/two").unwrap();
    (listing, bytes, revoked)
}

/// The same workload through both front ends produces byte-identical
/// observable results — the enclave cannot tell who is feeding it.
#[test]
fn reactor_and_threaded_front_ends_are_equivalent() {
    let (setup_r, server_r, _alice) = rig(8);
    server_r.set_front_end(FrontEnd::Reactor);
    let reactor_out = observable_workload(&setup_r, &server_r);

    let (setup_t, server_t, _alice) = rig(8);
    server_t.set_front_end(FrontEnd::Threaded);
    let threaded_out = observable_workload(&setup_t, &server_t);

    assert_eq!(reactor_out.0, threaded_out.0, "identical listings");
    assert_eq!(reactor_out.1, threaded_out.1, "identical file bytes");
    assert_eq!(reactor_out.2, threaded_out.2, "identical revocation");
    assert!(reactor_out.2, "revocation enforced on both");
}
