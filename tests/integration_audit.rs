//! Audit-trail integration: the tamper classes of the threat model
//! against the hash-chained audit log, and redaction hygiene of every
//! structured export.
//!
//! The §III-B attacker owns the stores, so it can delete, reorder,
//! substitute, or bit-flip the sealed `!audit-*` objects at will. Each
//! of those manipulations must turn `audit_verify()` into an
//! [`SegShareError::Integrity`]; and nothing leaving the enclave
//! through the trace ring or the audit export may carry raw paths,
//! user ids, or key material.

use std::sync::Arc;

use proptest::test_runner::TestRng;
use seg_fs::Perm;
use seg_store::{MemStore, ObjectStore};
use segshare::{EnclaveConfig, FsoSetup, SegShareError, SegShareServer};

/// Distinctive request operands; none may appear in any export.
const SECRETS: &[&str] = &[
    "alice",
    "bob",
    "strategyteam",
    "plans-secret",
    "q3-report",
    "acme.example",
];

struct AuditRig {
    server: SegShareServer,
    content: Arc<MemStore>,
}

/// Drives the canonical upload → share → download → revoke flow with
/// auditing on and hands back the content store for manipulation.
fn audited_flow() -> AuditRig {
    let content = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "audit-ca",
        EnclaveConfig::default(),
        seg_sgx::Platform::new_with_seed(77),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        Arc::new(MemStore::new()),
        Arc::new(MemStore::new()),
    );
    let server = setup.server().expect("setup");
    let alice = setup
        .enroll_user("alice", "alice@acme.example", "Alice")
        .expect("enroll alice");
    let bob = setup
        .enroll_user("bob", "bob@acme.example", "Bob")
        .expect("enroll bob");

    let mut a = server.connect_local(&alice).expect("alice connects");
    a.mkdir("/plans-secret/").expect("mkdir");
    a.put("/plans-secret/q3-report", &vec![0x42u8; 64 * 1024])
        .expect("upload");
    a.add_user("alice", "strategyteam").expect("create group");
    a.add_user("bob", "strategyteam").expect("share");
    a.set_perm("/plans-secret/q3-report", "strategyteam", Perm::Read)
        .expect("grant");

    let mut b = server.connect_local(&bob).expect("bob connects");
    assert_eq!(
        b.get("/plans-secret/q3-report").expect("download").len(),
        64 * 1024
    );
    a.remove_user("bob", "strategyteam").expect("revoke");
    assert!(b.get("/plans-secret/q3-report").is_err(), "revoked");

    drop(a);
    drop(b);
    std::thread::sleep(std::time::Duration::from_millis(100));
    AuditRig { server, content }
}

/// The audit-record object names, in chain (sequence) order. Record
/// names embed the zero-padded hex sequence number, so lexicographic
/// order is chain order.
fn record_names(content: &MemStore) -> Vec<String> {
    let mut names: Vec<String> = content
        .list()
        .unwrap()
        .into_iter()
        .filter(|k| k.starts_with("!audit-rec-"))
        .collect();
    names.sort();
    names
}

fn assert_tamper_detected(server: &SegShareServer, what: &str) {
    match server.audit_verify() {
        Err(SegShareError::Integrity(msg)) => {
            assert!(msg.contains("audit"), "{what}: unexpected message {msg:?}");
        }
        other => panic!("{what}: expected Integrity error, got {other:?}"),
    }
}

/// Saves an object's bytes, runs `tamper` on them, verifies detection,
/// then restores the original and verifies the chain is whole again.
fn tamper_roundtrip(rig: &AuditRig, key: &str, what: &str, tamper: impl FnOnce(&mut Vec<u8>)) {
    let original = rig.content.get(key).unwrap().expect("object exists");
    let mut mutated = original.clone();
    tamper(&mut mutated);
    rig.content.put(key, &mutated).unwrap();
    assert_tamper_detected(&rig.server, what);
    rig.content.put(key, &original).unwrap();
    rig.server
        .audit_verify()
        .unwrap_or_else(|e| panic!("{what}: chain broken after restore: {e}"));
}

#[test]
fn intact_chain_verifies_and_exports_the_flow() {
    let rig = audited_flow();
    let count = rig.server.audit_verify().expect("intact chain");
    let records = rig.server.audit_export().expect("export");
    assert_eq!(records.len() as u64, count);
    assert!(count >= 8, "flow produced {count} records");

    // Sequence numbers are dense and ordered; request ids increase.
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64);
    }
    let ops: Vec<&str> = records.iter().map(|r| r.op.as_str()).collect();
    for op in [
        "mk_dir",
        "put_file",
        "put_commit",
        "add_user",
        "set_perm",
        "get",
        "remove_user",
    ] {
        assert!(ops.contains(&op), "missing {op} in {ops:?}");
    }

    // Bob's denied read is on the record, correlated with his earlier
    // allowed one through the same principal fingerprint.
    let denied: Vec<_> = records.iter().filter(|r| r.code == "denied").collect();
    assert_eq!(denied.len(), 1, "exactly one denied decision");
    let allowed_get = records
        .iter()
        .find(|r| r.op == "get" && r.code == "ok")
        .expect("allowed get");
    assert_eq!(denied[0].principal, allowed_get.principal);
    assert_eq!(denied[0].object, allowed_get.object);
    // ...and the uploader is someone else.
    let upload = records.iter().find(|r| r.op == "put_file").unwrap();
    assert_ne!(upload.principal, denied[0].principal);
}

#[test]
fn truncating_the_chain_is_detected() {
    let rig = audited_flow();
    let names = record_names(&rig.content);

    // Deleting the newest record (hiding the revocation, say).
    let last = names.last().unwrap();
    let saved = rig.content.get(last).unwrap().unwrap();
    rig.content.delete(last).unwrap();
    assert_tamper_detected(&rig.server, "truncate tail");
    rig.content.put(last, &saved).unwrap();
    rig.server.audit_verify().expect("restored");

    // Deleting a record from the middle.
    let mid = &names[names.len() / 2];
    let saved = rig.content.get(mid).unwrap().unwrap();
    rig.content.delete(mid).unwrap();
    assert_tamper_detected(&rig.server, "truncate middle");
    rig.content.put(mid, &saved).unwrap();
    rig.server.audit_verify().expect("restored");
}

#[test]
fn reordering_records_is_detected() {
    let rig = audited_flow();
    let names = record_names(&rig.content);
    let (a, b) = (&names[1], &names[names.len() - 2]);
    let blob_a = rig.content.get(a).unwrap().unwrap();
    let blob_b = rig.content.get(b).unwrap().unwrap();
    rig.content.put(a, &blob_b).unwrap();
    rig.content.put(b, &blob_a).unwrap();
    assert_tamper_detected(&rig.server, "reorder");
    rig.content.put(a, &blob_a).unwrap();
    rig.content.put(b, &blob_b).unwrap();
    rig.server.audit_verify().expect("restored");
}

#[test]
fn substituting_a_record_is_detected() {
    let rig = audited_flow();
    let names = record_names(&rig.content);
    // Overwrite the revocation record with a copy of an earlier,
    // legitimately sealed record (a classic replay-as-substitution).
    let last = names.last().unwrap();
    tamper_roundtrip(&rig, last, "substitute", |bytes| {
        *bytes = rig.content.get(&names[0]).unwrap().unwrap();
    });
}

#[test]
fn bit_flips_anywhere_are_detected() {
    let rig = audited_flow();
    let names = record_names(&rig.content);
    let mut rng = TestRng::from_seed(0x0a0d_1701);
    // Random record, random bit, several times.
    for round in 0..8 {
        let name = &names[rng.usize_in(0, names.len())];
        tamper_roundtrip(&rig, name, &format!("bit-flip #{round}"), |bytes| {
            let byte = rng.usize_in(0, bytes.len());
            let bit = rng.below(8) as u8;
            bytes[byte] ^= 1 << bit;
        });
    }
    // The head record is fair game too.
    tamper_roundtrip(&rig, "!audit-head", "head bit-flip", |bytes| {
        let byte = rng.usize_in(0, bytes.len());
        bytes[byte] ^= 0x80;
    });
}

#[test]
fn forged_trailing_record_is_detected() {
    let rig = audited_flow();
    let count = rig.server.audit_verify().expect("intact");
    // Appending a record *without* advancing the sealed head: replay an
    // old ciphertext at the next sequence slot.
    let forged_name = format!("!audit-rec-{count:016x}");
    let donor = rig
        .content
        .get(&record_names(&rig.content)[0])
        .unwrap()
        .unwrap();
    rig.content.put(&forged_name, &donor).unwrap();
    assert_tamper_detected(&rig.server, "forged append");
    rig.content.delete(&forged_name).unwrap();
    rig.server.audit_verify().expect("restored");
}

/// §V-E across a restart: the attacker rolls the *entire* store back to
/// an old, internally consistent snapshot and relaunches the enclave.
/// Only the monotonic-counter anchor can expose the stale trail, and it
/// must do so at launch — before the first new append could re-anchor
/// the head and permanently erase the evidence.
#[test]
fn whole_store_rollback_across_restart_is_detected_at_launch() {
    let content = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "audit-ca",
        EnclaveConfig {
            rollback_whole_fs: true,
            ..EnclaveConfig::default()
        },
        seg_sgx::Platform::new_with_seed(78),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        Arc::new(MemStore::new()),
        Arc::new(MemStore::new()),
    );
    let server = setup.server().expect("first launch");
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.put("/doc", b"v1").unwrap();

    // The attacker snapshots everything while this history is current...
    let snapshot = content.snapshot();

    // ...the enclave appends more (audited) history...
    a.put("/doc", b"v2 - the revocation-worthy update").unwrap();
    a.remove("/doc").unwrap();
    drop(a);
    drop(server);
    std::thread::sleep(std::time::Duration::from_millis(100));

    // ...and the whole store is rolled back before a restart.
    for key in content.list().unwrap() {
        content.delete(&key).unwrap();
    }
    for (key, value) in &snapshot {
        content.put(key, value).unwrap();
    }
    match setup.server() {
        Err(SegShareError::Integrity(msg)) => {
            assert!(
                msg.contains("audit") && msg.contains("rollback"),
                "unexpected message: {msg}"
            );
        }
        Ok(_) => panic!("stale-snapshot relaunch must fail audit load"),
        Err(other) => panic!("expected Integrity, got {other:?}"),
    }
}

/// A crash between an append's record write and its head write leaves
/// one genuine record beyond the sealed head. The restart must adopt it
/// (completing the append) instead of reporting a forged append.
#[test]
fn interrupted_append_recovers_across_restart() {
    let content = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "audit-ca",
        EnclaveConfig {
            rollback_whole_fs: true,
            ..EnclaveConfig::default()
        },
        seg_sgx::Platform::new_with_seed(79),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        Arc::new(MemStore::new()),
        Arc::new(MemStore::new()),
    );
    let server = setup.server().expect("first launch");
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.put("/doc", b"v1").unwrap();
    let count_before = server.audit_verify().expect("intact");

    // Simulate the crash window: a `get` appends exactly one record;
    // roll back only the head blob, as if its write never hit disk.
    let stale_head = content.get("!audit-head").unwrap().unwrap();
    assert_eq!(a.get("/doc").unwrap(), b"v1");
    drop(a);
    drop(server);
    std::thread::sleep(std::time::Duration::from_millis(100));
    content.put("!audit-head", &stale_head).unwrap();

    // The restart adopts the orphaned record and the trail stays whole:
    // the interrupted `get` is in the export, and new appends continue.
    let server = setup.server().expect("recovery relaunch");
    let count = server.audit_verify().expect("chain whole after recovery");
    assert_eq!(count, count_before + 1);
    let records = server.audit_export().expect("export");
    assert_eq!(records.last().unwrap().op, "get");
    let mut a = server.connect_local(&alice).unwrap();
    assert_eq!(a.get("/doc").unwrap(), b"v1");
    drop(a);
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert!(server.audit_verify().expect("still whole") > count);
}

#[test]
fn exports_carry_no_principals_paths_or_keys() {
    let rig = audited_flow();
    let root_hex: String = rig
        .server
        .enclave()
        .store()
        .keys()
        .root()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();

    let trace = seg_obs::events_json(&rig.server.trace_tail(usize::MAX));
    let slow = seg_obs::events_json(&rig.server.slow_requests(usize::MAX));
    let audit = segshare::enclave::audit::records_json(&rig.server.audit_export().unwrap());

    for (name, text) in [("trace", &trace), ("slow", &slow), ("audit", &audit)] {
        for secret in SECRETS {
            assert!(!text.contains(secret), "{name} export leaks {secret:?}");
        }
        assert!(
            !text.contains('/'),
            "{name} export contains a path separator"
        );
        assert!(!text.contains('@'), "{name} export contains an email token");
        assert!(
            !text.contains(&root_hex) && !text.contains(&root_hex[..16]),
            "{name} export leaks root-key material"
        );
    }

    // The trace did fire: fingerprints are present and stable across
    // layers (the denied get carries the same object fingerprint in
    // the access-control event and the dispatch event).
    let events = rig.server.trace_tail(usize::MAX);
    assert!(!events.is_empty());
    let denied: Vec<_> = events
        .iter()
        .filter(|e| e.decision == seg_obs::TraceDecision::Deny)
        .collect();
    assert!(denied.len() >= 2, "auth deny + dispatch deny: {denied:?}");
    assert!(denied.iter().all(|e| e.request_id == denied[0].request_id));
    assert!(denied.iter().all(|e| e.object == denied[0].object));
}
