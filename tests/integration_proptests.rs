//! Model-based property tests: random operation sequences against the
//! real server, compared with a trivial in-memory reference model.

use std::collections::BTreeMap;

use proptest::prelude::*;
use seg_proto::ErrorCode;
use segshare::{EnclaveConfig, FsoSetup, SegShareError};

/// Operations the single-user model covers.
#[derive(Debug, Clone)]
enum Op {
    MkDir(u8),
    Put { dir: u8, file: u8, content: Vec<u8> },
    Get { dir: u8, file: u8 },
    Remove { dir: u8, file: u8 },
    List(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::MkDir),
        (
            0u8..4,
            0u8..4,
            proptest::collection::vec(any::<u8>(), 0..2000)
        )
            .prop_map(|(dir, file, content)| Op::Put { dir, file, content }),
        (0u8..4, 0u8..4).prop_map(|(dir, file)| Op::Get { dir, file }),
        (0u8..4, 0u8..4).prop_map(|(dir, file)| Op::Remove { dir, file }),
        (0u8..4).prop_map(Op::List),
    ]
}

fn dir_path(dir: u8) -> String {
    format!("/d{dir}/")
}

fn file_path(dir: u8, file: u8) -> String {
    format!("/d{dir}/f{file}")
}

/// Reference model: which directories exist, and path -> content.
#[derive(Default)]
struct Model {
    dirs: Vec<u8>,
    files: BTreeMap<String, Vec<u8>>,
}

fn not_found(e: &SegShareError) -> bool {
    matches!(
        e,
        SegShareError::Request {
            code: ErrorCode::NotFound,
            ..
        }
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn server_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
        let server = setup.server().unwrap();
        let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
        let mut client = server.connect_local(&alice).unwrap();
        let mut model = Model::default();

        for op in &ops {
            match op {
                Op::MkDir(d) => {
                    let result = client.mkdir(&dir_path(*d));
                    if model.dirs.contains(d) {
                        prop_assert!(result.is_err(), "mkdir over existing dir must fail");
                    } else {
                        prop_assert!(result.is_ok(), "mkdir failed: {result:?}");
                        model.dirs.push(*d);
                    }
                }
                Op::Put { dir, file, content } => {
                    let path = file_path(*dir, *file);
                    let result = client.put(&path, content);
                    if model.dirs.contains(dir) {
                        prop_assert!(result.is_ok(), "put failed: {result:?}");
                        model.files.insert(path, content.clone());
                    } else {
                        prop_assert!(
                            result.as_ref().err().map(not_found).unwrap_or(false),
                            "put into missing dir: {result:?}"
                        );
                    }
                }
                Op::Get { dir, file } => {
                    let path = file_path(*dir, *file);
                    let result = client.get(&path);
                    match model.files.get(&path) {
                        Some(expected) => {
                            prop_assert_eq!(&result.unwrap(), expected);
                        }
                        None => {
                            prop_assert!(
                                result.as_ref().err().map(not_found).unwrap_or(false),
                                "get of missing file: {result:?}"
                            );
                        }
                    }
                }
                Op::Remove { dir, file } => {
                    let path = file_path(*dir, *file);
                    let result = client.remove(&path);
                    if model.files.remove(&path).is_some() {
                        prop_assert!(result.is_ok(), "remove failed: {result:?}");
                    } else {
                        prop_assert!(result.is_err(), "remove of missing file succeeded");
                    }
                }
                Op::List(d) => {
                    let result = client.list(&dir_path(*d));
                    if model.dirs.contains(d) {
                        let listing = result.unwrap();
                        let got: Vec<String> =
                            listing.iter().map(|e| e.name.clone()).collect();
                        let prefix = dir_path(*d);
                        let mut expected: Vec<String> = model
                            .files
                            .keys()
                            .filter(|p| p.starts_with(&prefix))
                            .map(|p| p[prefix.len()..].to_string())
                            .collect();
                        expected.sort();
                        prop_assert_eq!(got, expected);
                    } else {
                        prop_assert!(result.is_err());
                    }
                }
            }
        }
    }

    #[test]
    fn uploads_of_any_size_roundtrip(len in 0usize..600_000) {
        let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
        let server = setup.server().unwrap();
        let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
        let mut client = server.connect_local(&alice).unwrap();
        let content: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
        client.put("/blob", &content).unwrap();
        prop_assert_eq!(client.get("/blob").unwrap(), content);
    }
}
