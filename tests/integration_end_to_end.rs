//! End-to-end integration tests across all workspace crates: user
//! applications talking to the SeGShare server over the secure channel,
//! against the simulated SGX platform and untrusted stores.

use std::sync::Arc;

use seg_fs::Perm;
use seg_proto::{ErrorCode, CHUNK_LEN};
use seg_store::{MemStore, ObjectStore};
use segshare::{EnclaveConfig, FsoSetup, SegShareError};

fn assert_denied(result: Result<impl std::fmt::Debug, SegShareError>) {
    match result {
        Err(SegShareError::Request { code, .. }) => assert_eq!(code, ErrorCode::Denied),
        other => panic!("expected Denied, got {other:?}"),
    }
}

fn assert_code(result: Result<impl std::fmt::Debug, SegShareError>, expected: ErrorCode) {
    match result {
        Err(SegShareError::Request { code, .. }) => assert_eq!(code, expected),
        other => panic!("expected {expected:?}, got {other:?}"),
    }
}

#[test]
fn file_lifecycle() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut c = server.connect_local(&alice).unwrap();

    // Nested directories.
    c.mkdir("/a").unwrap();
    c.mkdir("/a/b").unwrap();
    c.mkdir("/a/b/c").unwrap();

    // Parent must exist.
    assert_code(c.mkdir("/missing/x"), ErrorCode::NotFound);
    // Duplicate rejected.
    assert_code(c.mkdir("/a"), ErrorCode::AlreadyExists);

    // Files of many sizes, including multi-chunk and empty.
    for (path, size) in [
        ("/a/empty", 0usize),
        ("/a/tiny", 1),
        ("/a/medium", 5000),
        ("/a/b/node-boundary", 4068),
        ("/a/b/chunky", CHUNK_LEN + 12345),
        ("/a/b/c/big", 3 * CHUNK_LEN),
    ] {
        let content: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        c.put(path, &content).unwrap();
        assert_eq!(c.get(path).unwrap(), content, "{path}");
    }

    // Overwrite.
    c.put("/a/tiny", b"new content").unwrap();
    assert_eq!(c.get("/a/tiny").unwrap(), b"new content");

    // Listing is sorted and kind-aware.
    let listing = c.list("/a").unwrap();
    let names: Vec<(String, bool)> = listing.iter().map(|e| (e.name.clone(), e.is_dir)).collect();
    assert_eq!(
        names,
        vec![
            ("b".to_string(), true),
            ("empty".to_string(), false),
            ("medium".to_string(), false),
            ("tiny".to_string(), false),
        ]
    );

    // Remove file and empty directory; non-empty directory refused.
    c.remove("/a/tiny").unwrap();
    assert_code(c.get("/a/tiny"), ErrorCode::NotFound);
    assert_code(c.remove("/a/b"), ErrorCode::BadRequest);
    c.remove("/a/b/c/big").unwrap();
    c.remove("/a/b/c").unwrap();

    // Rename a file, then a directory with content.
    c.rename("/a/medium", "/a/renamed").unwrap();
    assert_eq!(c.get("/a/renamed").unwrap().len(), 5000);
    assert_code(c.get("/a/medium"), ErrorCode::NotFound);
    c.mkdir("/dest").unwrap();
    c.rename("/a/b/", "/dest/moved/").unwrap();
    assert_eq!(c.get("/dest/moved/node-boundary").unwrap().len(), 4068);
    assert_code(c.list("/a/b"), ErrorCode::NotFound);
}

#[test]
fn group_sharing_and_immediate_revocation() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let carol = setup.enroll_user("carol", "c@x", "Carol").unwrap();

    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();
    let mut c = server.connect_local(&carol).unwrap();

    a.mkdir("/shared").unwrap();
    a.put("/shared/doc", b"group document").unwrap();

    // No permissions yet: everyone else is denied.
    assert_denied(b.get("/shared/doc"));
    assert_denied(c.get("/shared/doc"));

    // Alice creates a group, adds bob, grants read on the file.
    a.add_user("bob", "readers").unwrap();
    a.set_perm("/shared/doc", "readers", Perm::Read).unwrap();
    assert_eq!(b.get("/shared/doc").unwrap(), b"group document");
    // Read is not write (F4).
    assert_denied(b.put("/shared/doc", b"overwrite"));
    // Carol is still out.
    assert_denied(c.get("/shared/doc"));

    // Adding carol to the group is enough — no per-file change (P2).
    a.add_user("carol", "readers").unwrap();
    assert_eq!(c.get("/shared/doc").unwrap(), b"group document");

    // Only group owners manage membership.
    assert_denied(b.add_user("bob", "readers"));
    assert_denied(b.remove_user("carol", "readers"));

    // Immediate membership revocation (S4): the very next request is
    // denied, with no file re-encryption.
    a.remove_user("carol", "readers").unwrap();
    assert_denied(c.get("/shared/doc"));
    // Bob is unaffected.
    assert_eq!(b.get("/shared/doc").unwrap(), b"group document");

    // Permission revocation is just as immediate (P3).
    a.remove_perm("/shared/doc", "readers").unwrap();
    assert_denied(b.get("/shared/doc"));
}

#[test]
fn individual_user_permissions_via_default_groups() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();

    a.put("/direct", b"for bob only").unwrap();
    a.set_perm("/direct", "~bob", Perm::ReadWrite).unwrap();
    assert_eq!(b.get("/direct").unwrap(), b"for bob only");
    b.put("/direct", b"bob wrote this").unwrap();
    assert_eq!(a.get("/direct").unwrap(), b"bob wrote this");

    // An explicit deny revokes bob's direct access.
    a.set_perm("/direct", "~bob", Perm::Deny).unwrap();
    assert_denied(b.get("/direct"));
}

#[test]
fn write_permission_without_read() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();

    a.put("/dropbox", b"v1").unwrap();
    a.set_perm("/dropbox", "~bob", Perm::Write).unwrap();
    // Bob may update but not read (F4: separate read/write).
    b.put("/dropbox", b"v2 from bob").unwrap();
    assert_denied(b.get("/dropbox"));
    assert_eq!(a.get("/dropbox").unwrap(), b"v2 from bob");
}

#[test]
fn inherited_permissions() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();

    // Central management (§V-B): set permissions once on the directory,
    // then let files inherit.
    a.mkdir("/project").unwrap();
    a.set_perm("/project/", "~bob", Perm::Read).unwrap();
    a.put("/project/spec", b"the spec").unwrap();
    // Without the inherit flag, bob has nothing.
    assert_denied(b.get("/project/spec"));
    a.set_inherit("/project/spec", true).unwrap();
    assert_eq!(b.get("/project/spec").unwrap(), b"the spec");

    // An explicit entry on the file has precedence over the parent's
    // (deny beats inherited grant, §V-B).
    a.set_perm("/project/spec", "~bob", Perm::Deny).unwrap();
    assert_denied(b.get("/project/spec"));
    a.remove_perm("/project/spec", "~bob").unwrap();
    assert_eq!(b.get("/project/spec").unwrap(), b"the spec");

    // Inheritance chains across levels while flags stay set.
    a.mkdir("/project/sub").unwrap();
    a.set_inherit("/project/sub/", true).unwrap();
    a.put("/project/sub/deep", b"deep file").unwrap();
    a.set_inherit("/project/sub/deep", true).unwrap();
    assert_eq!(b.get("/project/sub/deep").unwrap(), b"deep file");
}

#[test]
fn multiple_owners_and_group_owned_groups() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let carol = setup.enroll_user("carol", "c@x", "Carol").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();
    let mut c = server.connect_local(&carol).unwrap();

    // F7: multiple file owners.
    a.put("/co-owned", b"v1").unwrap();
    assert_denied(b.set_perm("/co-owned", "~carol", Perm::Read));
    a.add_owner("/co-owned", "~bob").unwrap();
    b.set_perm("/co-owned", "~carol", Perm::Read).unwrap();
    assert_eq!(c.get("/co-owned").unwrap(), b"v1");

    // F7: multiple group owners via group-owned groups.
    a.add_user("bob", "eng").unwrap();
    // Bob, a mere member, cannot manage the group...
    assert_denied(b.add_user("carol", "eng"));
    // ...until alice makes the "leads" group an owner of "eng" and puts
    // bob into "leads".
    a.add_user("bob", "leads").unwrap();
    a.add_group_owner("leads", "eng").unwrap();
    b.add_user("carol", "eng").unwrap();
}

#[test]
fn enclave_restart_preserves_everything() {
    let content: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let group: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let dedup: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "ca",
        EnclaveConfig::default(),
        seg_sgx::Platform::new_with_seed(77),
        Arc::clone(&content),
        Arc::clone(&group),
        Arc::clone(&dedup),
    );
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "Bob").unwrap();

    {
        let server = setup.server().unwrap();
        let mut a = server.connect_local(&alice).unwrap();
        a.mkdir("/persist").unwrap();
        a.put("/persist/file", b"survives restarts").unwrap();
        a.add_user("bob", "team").unwrap();
        a.set_perm("/persist/file", "team", Perm::Read).unwrap();
    }

    // A new enclave instance on the same platform and stores: unseals
    // SK_r, keeps serving (§II-A "Data Sealing", §IV-B).
    let server = setup.server().unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    assert_eq!(a.get("/persist/file").unwrap(), b"survives restarts");
    let mut b = server.connect_local(&bob).unwrap();
    assert_eq!(b.get("/persist/file").unwrap(), b"survives restarts");
}

#[test]
fn deduplication_saves_storage_and_preserves_isolation() {
    let dedup_store: Arc<MemStore> = Arc::new(MemStore::new());
    let content: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let group: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let config = EnclaveConfig {
        dedup: true,
        ..EnclaveConfig::default()
    };
    let setup = FsoSetup::with_stores(
        "ca",
        config,
        seg_sgx::Platform::new_with_seed(5),
        content,
        group,
        Arc::clone(&dedup_store) as Arc<dyn ObjectStore>,
    );
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();

    let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 256) as u8).collect();
    a.put("/alice-copy", &payload).unwrap();
    let after_one = dedup_store.total_bytes().unwrap();
    // Bob uploads the *same* content to a different path — even across
    // users/groups the blob is shared (§V-A, P5).
    b.put("/bob-copy", &payload).unwrap();
    let after_two = dedup_store.total_bytes().unwrap();
    assert_eq!(
        after_one, after_two,
        "identical content must not grow the dedup store"
    );

    // Both read their copies independently.
    assert_eq!(a.get("/alice-copy").unwrap(), payload);
    assert_eq!(b.get("/bob-copy").unwrap(), payload);

    // Distinct content does grow the store.
    b.put("/bob-unique", &vec![7u8; 100_000]).unwrap();
    assert!(dedup_store.total_bytes().unwrap() > after_two);

    // Permissions still apply per file: bob cannot read alice's copy.
    assert_denied(b.get("/alice-copy"));

    // Deleting one reference leaves the other readable.
    a.remove("/alice-copy").unwrap();
    assert_eq!(b.get("/bob-copy").unwrap(), payload);
}

#[test]
fn replication_shares_the_root_key() {
    let content: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let group: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let dedup: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "ca",
        EnclaveConfig::default(),
        seg_sgx::Platform::new_with_seed(1),
        content,
        group,
        dedup,
    );
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();

    let mut a = server.connect_local(&alice).unwrap();
    a.put("/replicated", b"written via enclave 1").unwrap();

    // Second application server on a different machine, same central
    // data repository (§V-F).
    let platform2 = seg_sgx::Platform::new_with_seed(2);
    let replica = setup.replica(&server, &platform2).unwrap();
    let mut a2 = replica.connect_local(&alice).unwrap();
    assert_eq!(a2.get("/replicated").unwrap(), b"written via enclave 1");
    a2.put("/replicated", b"updated via enclave 2").unwrap();
    assert_eq!(a.get("/replicated").unwrap(), b"updated via enclave 2");
}

#[test]
fn replication_refuses_wrong_enclaves() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();

    // An enclave with a different configuration (hence measurement)
    // must not receive the root key.
    let other_config = EnclaveConfig {
        hide_names: false,
        ..EnclaveConfig::default()
    };
    let platform2 = seg_sgx::Platform::new_with_seed(9);
    let impostor = platform2.launch(&segshare::enclave::SegShareEnclave::image(
        &other_config,
        &setup.ca().public_key(),
    ));
    let quote = impostor.quote(b"segshare-replication");
    let result = server
        .enclave()
        .export_root_key(&quote, &platform2.attestation_public_key());
    assert!(result.is_err(), "differing measurement must be refused");

    // A quote verified under the wrong attestation key is refused too.
    let good_image = segshare::enclave::SegShareEnclave::image(
        &EnclaveConfig::default(),
        &setup.ca().public_key(),
    );
    let good_probe = platform2.launch(&good_image);
    let good_quote = good_probe.quote(b"segshare-replication");
    let wrong_platform = seg_sgx::Platform::new_with_seed(10);
    assert!(server
        .enclave()
        .export_root_key(&good_quote, &wrong_platform.attestation_public_key())
        .is_err());
}

#[test]
fn backup_and_restore_with_signed_reset() {
    let content: Arc<MemStore> = Arc::new(MemStore::new());
    let group: Arc<MemStore> = Arc::new(MemStore::new());
    let dedup: Arc<MemStore> = Arc::new(MemStore::new());
    let config = EnclaveConfig {
        rollback_whole_fs: true,
        ..EnclaveConfig::default()
    };
    let setup = FsoSetup::with_stores(
        "ca",
        config,
        seg_sgx::Platform::new_with_seed(3),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        Arc::clone(&group) as Arc<dyn ObjectStore>,
        Arc::clone(&dedup) as Arc<dyn ObjectStore>,
    );
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = server.connect_local(&alice).unwrap();

    a.put("/before-backup", b"state one").unwrap();
    // §V-G: "the cloud provider only has to copy the files on disk".
    let content_backup = content.snapshot();
    let group_backup = group.snapshot();

    a.put("/after-backup", b"state two").unwrap();

    // Restore the backup: the monotonic counter is now ahead of the
    // stored state, so reads fail until the CA authorizes a reset.
    content.restore(content_backup);
    group.restore(group_backup);
    assert!(matches!(
        a.get("/before-backup"),
        Err(SegShareError::Request {
            code: ErrorCode::IntegrityViolation,
            ..
        })
    ));

    // An unauthorized reset is rejected.
    let forged =
        seg_crypto::ed25519::SecretKey::from_seed(&[9u8; 32]).sign(segshare::server::RESET_MESSAGE);
    assert!(server
        .restore_with_reset(&setup.ca().public_key(), &forged)
        .is_err());

    // The CA-signed reset re-anchors the hashes and counters (§V-G).
    let reset = setup.signed_reset();
    server
        .restore_with_reset(&setup.ca().public_key(), &reset)
        .unwrap();
    assert_eq!(a.get("/before-backup").unwrap(), b"state one");
    assert_code(a.get("/after-backup"), ErrorCode::NotFound);
}

#[test]
fn concurrent_clients() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = Arc::new(setup.server().unwrap());
    let mut handles = Vec::new();
    for i in 0..4 {
        let user = setup
            .enroll_user(&format!("user{i}"), "u@x", "User")
            .unwrap();
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let mut c = server.connect_local(&user).unwrap();
            c.mkdir(&format!("/home{i}")).unwrap();
            for j in 0..10 {
                let path = format!("/home{i}/f{j}");
                let content = vec![i as u8; 1000 + j];
                c.put(&path, &content).unwrap();
                assert_eq!(c.get(&path).unwrap(), content);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn minimal_config_still_works() {
    // All extensions off: the §IV core design alone.
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::minimal());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.mkdir("/d").unwrap();
    a.put("/d/f", b"plain core design").unwrap();
    assert_eq!(a.get("/d/f").unwrap(), b"plain core design");
}

#[test]
fn full_config_still_works() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::full());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.mkdir("/d").unwrap();
    let payload = vec![3u8; 100_000];
    a.put("/d/f", &payload).unwrap();
    assert_eq!(a.get("/d/f").unwrap(), payload);
    a.put("/d/f2", &payload).unwrap(); // dedup path
    assert_eq!(a.get("/d/f2").unwrap(), payload);
}

#[test]
fn delete_group_revokes_all_members() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let carol = setup.enroll_user("carol", "c@x", "Carol").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();
    let mut c = server.connect_local(&carol).unwrap();

    a.put("/team-doc", b"for the team").unwrap();
    a.add_user("bob", "team").unwrap();
    a.add_user("carol", "team").unwrap();
    a.set_perm("/team-doc", "team", Perm::Read).unwrap();
    assert!(b.get("/team-doc").is_ok());
    assert!(c.get("/team-doc").is_ok());

    // Only owners may delete; unknown groups are NotFound.
    assert_denied(b.delete_group("team"));
    assert_code(a.delete_group("ghost-group"), ErrorCode::NotFound);

    // Deleting the group revokes everyone at once (the §IV-B sweep).
    a.delete_group("team").unwrap();
    assert_denied(b.get("/team-doc"));
    assert_denied(c.get("/team-doc"));
    // Group identity is the name: re-creating "team" re-attaches any
    // ACL entries that still reference it (the paper's ACLs likewise
    // keep group references; owners should clear entries before
    // reusing a name).
    a.add_user("bob", "team").unwrap();
    assert!(b.get("/team-doc").is_ok());
    assert_denied(c.get("/team-doc"));
}

#[test]
fn streaming_reader_writer_roundtrip() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = server.connect_local(&alice).unwrap();

    let content: Vec<u8> = (0..777_777usize).map(|i| (i % 253) as u8).collect();
    a.put_reader("/streamed", content.len() as u64, &content[..])
        .unwrap();
    let mut out = Vec::new();
    let n = a.get_to_writer("/streamed", &mut out).unwrap();
    assert_eq!(n, content.len() as u64);
    assert_eq!(out, content);

    // A reader that lies about its size is a protocol error.
    let short: &[u8] = b"too short";
    assert!(matches!(
        a.put_reader("/liar", 100, short),
        Err(SegShareError::Protocol(_))
    ));
}

#[test]
fn ownership_shrinking_with_last_owner_protection() {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "Bob").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();

    // File owners: extend then shrink.
    a.put("/handover", b"v1").unwrap();
    a.add_owner("/handover", "~bob").unwrap();
    // Alice hands the file over entirely: bob removes alice.
    b.remove_owner("/handover", "~alice").unwrap();
    assert_denied(a.set_perm("/handover", "~alice", Perm::Read));
    // The last owner is protected.
    assert_code(b.remove_owner("/handover", "~bob"), ErrorCode::BadRequest);
    // Bob still owns and can operate.
    b.set_perm("/handover", "~alice", Perm::Read).unwrap();
    assert_eq!(a.get("/handover").unwrap(), b"v1");

    // Group owners: same dance on r_GO.
    a.add_user("bob", "handover-team").unwrap();
    a.add_group_owner("~bob", "handover-team").unwrap();
    b.remove_group_owner("~alice", "handover-team").unwrap();
    assert_denied(a.add_user("carol", "handover-team"));
    assert_code(
        b.remove_group_owner("~bob", "handover-team"),
        ErrorCode::BadRequest,
    );
    b.add_user("carol", "handover-team").unwrap();
}

#[test]
fn stress_deep_tree_under_full_protection() {
    // A deeper, busier workload with every extension enabled: exercises
    // tree propagation across many levels, dedup indirections, hidden
    // names, and the whole-FS counter on every update.
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::full());
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "Alice").unwrap();
    let mut a = server.connect_local(&alice).unwrap();

    // Build a 6-deep directory chain with files at every level.
    let mut dir = String::from("/");
    for depth in 0..6 {
        dir = format!("{dir}level{depth}/");
        a.mkdir(&dir).unwrap();
        for f in 0..4 {
            let content = vec![(depth * 16 + f) as u8; 3000 + depth * 500 + f];
            a.put(&format!("{dir}file{f}"), &content).unwrap();
        }
    }

    // Rewrite, move, and remove across levels.
    a.put("/level0/file0", b"rewritten at the top").unwrap();
    a.rename("/level0/level1/file1", "/level0/level1/level2/moved-up")
        .unwrap();
    a.remove("/level0/level1/file2").unwrap();

    // Re-read everything that should exist, fully verified.
    assert_eq!(a.get("/level0/file0").unwrap(), b"rewritten at the top");
    assert_eq!(
        a.get("/level0/level1/level2/moved-up").unwrap().len(),
        3000 + 500 + 1
    );
    let mut dir = String::from("/");
    for depth in 0..6 {
        dir = format!("{dir}level{depth}/");
        let listing = a.list(&dir).unwrap();
        assert!(!listing.is_empty(), "{dir}");
    }

    // Dedup across the tree: identical payloads collapse.
    let shared = vec![0xEEu8; 40_000];
    a.put("/level0/dup-a", &shared).unwrap();
    a.put("/level0/level1/dup-b", &shared).unwrap();
    assert_eq!(a.get("/level0/dup-a").unwrap(), shared);
    assert_eq!(a.get("/level0/level1/dup-b").unwrap(), shared);

    // And the whole-FS counter kept pace: a consistent snapshot replay
    // would now be far behind (sanity: one more write + read works).
    a.put("/final", b"done").unwrap();
    assert_eq!(a.get("/final").unwrap(), b"done");
}
