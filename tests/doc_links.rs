//! Documentation link checker.
//!
//! Walks every Markdown file in the repository and verifies that each
//! relative link resolves: the target file must exist, and when the
//! link carries a `#fragment`, the target must contain a heading whose
//! GitHub-style anchor slug matches. External links (`http://`,
//! `https://`, `mailto:`) are out of scope — CI must not depend on the
//! network — but a dead cross-reference between the handbook, the
//! design doc, and the architecture doc fails the build.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directories never scanned (build output, vendored code, VCS).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github", "data", "results"];

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/core; the repo root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn collect_markdown(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_markdown(&path, out);
            }
        } else if name.ends_with(".md") {
            out.push(path);
        }
    }
}

/// GitHub's heading-to-anchor slug: lowercase, spaces become hyphens,
/// everything that is not alphanumeric / hyphen / underscore is dropped.
fn slug(heading: &str) -> String {
    let mut s = String::with_capacity(heading.len());
    for ch in heading.trim().chars() {
        if ch.is_alphanumeric() || ch == '_' || ch == '-' {
            for lc in ch.to_lowercase() {
                s.push(lc);
            }
        } else if ch == ' ' {
            s.push('-');
        }
    }
    s
}

/// Anchors defined by a Markdown file: one per ATX heading, skipping
/// fenced code blocks (a `# comment` inside ```sh is not a heading).
fn anchors_of(text: &str) -> BTreeSet<String> {
    let mut anchors = BTreeSet::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let title = rest.trim_start_matches('#');
            if title.starts_with(' ') || title.is_empty() {
                anchors.insert(slug(title));
            }
        }
    }
    anchors
}

/// Extract `[text](target)` link targets, skipping fenced code blocks
/// and inline code spans.
fn link_targets(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_code = false;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_code = !in_code,
                b']' if !in_code && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    if let Some(close) = line[i + 2..].find(')') {
                        let target = &line[i + 2..i + 2 + close];
                        out.push((lineno + 1, target.to_string()));
                        i += 2 + close;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

#[test]
fn all_relative_markdown_links_resolve() {
    let root = repo_root();
    let mut files = Vec::new();
    collect_markdown(&root, &mut files);
    files.sort();
    assert!(
        files.iter().any(|f| f.ends_with("OPERATIONS.md")),
        "OPERATIONS.md must exist (operator's handbook)"
    );

    let mut failures = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).expect("markdown file reads");
        let dir = file.parent().unwrap();
        for (lineno, target) in link_targets(&text) {
            // External schemes and bare images are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, fragment) = match target.split_once('#') {
                Some((p, f)) => (p, Some(f)),
                None => (target.as_str(), None),
            };
            let rel = file.strip_prefix(&root).unwrap_or(file).display();
            // Resolve the file part (empty = same document).
            let resolved_text = if path_part.is_empty() {
                text.clone()
            } else {
                let resolved = dir.join(path_part);
                if !resolved.exists() {
                    failures.push(format!("{rel}:{lineno}: dead link target `{target}`"));
                    continue;
                }
                if !path_part.ends_with(".md") || fragment.is_none() {
                    continue;
                }
                std::fs::read_to_string(&resolved).expect("link target reads")
            };
            if let Some(frag) = fragment {
                if !anchors_of(&resolved_text).contains(frag) {
                    failures.push(format!(
                        "{rel}:{lineno}: dead anchor `#{frag}` in `{target}`"
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "dead documentation links:\n{}",
        failures.join("\n")
    );
}

#[test]
fn handbook_is_cross_linked() {
    let root = repo_root();
    for doc in ["README.md", "ARCHITECTURE.md", "DESIGN.md"] {
        let text = std::fs::read_to_string(root.join(doc)).expect("doc reads");
        assert!(
            text.contains("OPERATIONS.md"),
            "{doc} must link to the operator's handbook"
        );
    }
}
