//! Table II objectives as executable checks — the evidence behind the
//! Table III feature row the `table3_features` bench harness prints.
//!
//! Functional (F1–F10), performance-structural (P1–P5), and security
//! (S1–S5) objectives each get a test named after the objective. The
//! heavy adversarial variants of S-objectives live in
//! `integration_threat_model.rs`; here the focus is coverage of every
//! claimed objective.

use std::sync::Arc;

use seg_fs::Perm;
use seg_store::{CountingStore, MemStore, ObjectStore};
use segshare::{EnclaveConfig, FsoSetup};

fn basic_setup() -> (FsoSetup, segshare::SegShareServer) {
    let setup = FsoSetup::new_in_memory("ca", EnclaveConfig::default());
    let server = setup.server().unwrap();
    (setup, server)
}

#[test]
fn f1_sharing_with_users_and_groups() {
    let (setup, server) = basic_setup();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "B").unwrap();
    let carol = setup.enroll_user("carol", "c@x", "C").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.put("/f", b"x").unwrap();
    // With an individual user...
    a.set_perm("/f", "~bob", Perm::Read).unwrap();
    // ...and with a group.
    a.add_user("carol", "g").unwrap();
    a.set_perm("/f", "g", Perm::Read).unwrap();
    assert!(server.connect_local(&bob).unwrap().get("/f").is_ok());
    assert!(server.connect_local(&carol).unwrap().get("/f").is_ok());
}

#[test]
fn f2_f3_dynamic_permissions_set_by_users_not_admins() {
    let (setup, server) = basic_setup();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "B").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();
    a.put("/f", b"x").unwrap();
    // Permissions change dynamically, by the owning *user* (no admin).
    for _ in 0..3 {
        a.set_perm("/f", "~bob", Perm::Read).unwrap();
        assert!(b.get("/f").is_ok());
        a.set_perm("/f", "~bob", Perm::Deny).unwrap();
        assert!(b.get("/f").is_err());
    }
}

#[test]
fn f4_separate_read_and_write() {
    let (setup, server) = basic_setup();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "B").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();
    a.put("/r", b"read-only").unwrap();
    a.put("/w", b"write-only").unwrap();
    a.set_perm("/r", "~bob", Perm::Read).unwrap();
    a.set_perm("/w", "~bob", Perm::Write).unwrap();
    assert!(b.get("/r").is_ok());
    assert!(b.put("/r", b"no").is_err());
    assert!(b.put("/w", b"yes").is_ok());
    assert!(b.get("/w").is_err());
}

#[test]
fn f5_p1_client_needs_no_hardware_and_constant_storage() {
    // The user application is plain Rust over TCP/duplex transports and
    // stores exactly: certificate, key, CA key, clock (EnrolledUser).
    // This is a structural property; assert the enrollment surface.
    let (setup, _server) = basic_setup();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let encoded_cert = alice.certificate.encode();
    // Client state is a few hundred bytes regardless of server content.
    assert!(encoded_cert.len() < 1024);
    let seed = alice.secret_key.seed();
    assert_eq!(seed.len(), 32);
}

#[test]
fn f6_non_interactive_updates() {
    // Permission and membership updates involve only the requesting
    // user and the enclave: no other user is online in this test, and
    // the effect is immediately visible to later connections.
    let (setup, server) = basic_setup();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.put("/f", b"x").unwrap();
    a.add_user("bob", "g").unwrap(); // bob has never connected
    a.set_perm("/f", "g", Perm::Read).unwrap();
    let bob = setup.enroll_user("bob", "b@x", "B").unwrap();
    assert!(server.connect_local(&bob).unwrap().get("/f").is_ok());
}

#[test]
fn f8_separation_of_authentication_and_authorization() {
    // Two certificates with the same identity (multi-device): both act
    // as the same principal; replacing a token changes nothing about
    // permissions.
    let (setup, server) = basic_setup();
    let device1 = setup.enroll_user("alice", "a@x", "Alice Phone").unwrap();
    let device2 = setup.enroll_user("alice", "a@x", "Alice Laptop").unwrap();
    assert_ne!(
        device1.certificate.serial(),
        device2.certificate.serial(),
        "distinct tokens"
    );
    let mut d1 = server.connect_local(&device1).unwrap();
    d1.put("/from-phone", b"hello").unwrap();
    // The laptop token reads what the phone token owns.
    let mut d2 = server.connect_local(&device2).unwrap();
    assert_eq!(d2.get("/from-phone").unwrap(), b"hello");
}

#[test]
fn f9_deduplication_of_encrypted_files() {
    let content: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let group: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let dedup = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "ca",
        EnclaveConfig {
            dedup: true,
            ..EnclaveConfig::default()
        },
        seg_sgx::Platform::new_with_seed(42),
        content,
        group,
        Arc::clone(&dedup) as Arc<dyn ObjectStore>,
    );
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let payload = vec![9u8; 100_000];
    a.put("/one", &payload).unwrap();
    let single = dedup.total_bytes().unwrap();
    for i in 0..5 {
        a.put(&format!("/copy-{i}"), &payload).unwrap();
    }
    assert_eq!(
        dedup.total_bytes().unwrap(),
        single,
        "6 logical copies, 1 blob"
    );
}

#[test]
fn f10_permission_inheritance() {
    let (setup, server) = basic_setup();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "B").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();
    a.mkdir("/managed").unwrap();
    a.set_perm("/managed/", "~bob", Perm::Read).unwrap();
    a.put("/managed/f1", b"1").unwrap();
    a.set_inherit("/managed/f1", true).unwrap();
    assert!(b.get("/managed/f1").is_ok());
    // Turning the flag off removes the inherited grant.
    a.set_inherit("/managed/f1", false).unwrap();
    assert!(b.get("/managed/f1").is_err());
}

#[test]
fn p2_group_based_permission_definition() {
    // One membership update flips access to many files at once.
    let (setup, server) = basic_setup();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "B").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.add_user("team", "team-bootstrap").unwrap(); // ensure group machinery live
    for i in 0..20 {
        let path = format!("/doc-{i}");
        a.put(&path, b"content").unwrap();
        a.set_perm(&path, "staff", Perm::Read).unwrap();
    }
    let mut b = server.connect_local(&bob).unwrap();
    assert!(b.get("/doc-0").is_err());
    a.add_user("bob", "staff").unwrap();
    for i in 0..20 {
        assert!(b.get(&format!("/doc-{i}")).is_ok(), "doc-{i}");
    }
    a.remove_user("bob", "staff").unwrap();
    for i in 0..20 {
        assert!(b.get(&format!("/doc-{i}")).is_err(), "doc-{i}");
    }
}

#[test]
fn p3_revocation_rewrites_no_content_files() {
    // Count store writes during a permission revocation: the content
    // file's blob must not be rewritten (it is large; the ACL is tiny).
    let content = Arc::new(CountingStore::new(MemStore::new()));
    let group: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let dedup: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "ca",
        EnclaveConfig::default(),
        seg_sgx::Platform::new_with_seed(7),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        group,
        dedup,
    );
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let mut a = server.connect_local(&alice).unwrap();

    let big = vec![1u8; 2_000_000];
    a.put("/big", &big).unwrap();
    a.set_perm("/big", "readers", Perm::Read).unwrap();

    content.reset();
    a.remove_perm("/big", "readers").unwrap();
    let stats = content.stats();
    assert!(
        stats.bytes_written < 100_000,
        "revocation wrote {} bytes — content files must not be re-encrypted (P3)",
        stats.bytes_written
    );
}

#[test]
fn p4_constant_ciphertexts_per_file() {
    // The number of stored objects for one file is constant in the
    // number of groups granted access. Auditing is off here: the audit
    // trail appends one sealed record per authorization decision by
    // design, which is linear in *requests*, not in permissions per
    // file — its overhead is measured separately (ablations bench).
    let config = EnclaveConfig {
        audit: false,
        ..EnclaveConfig::default()
    };
    let content = Arc::new(MemStore::new());
    let group: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let dedup: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "ca",
        config,
        seg_sgx::Platform::new_with_seed(8),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        group,
        dedup,
    );
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.put("/f", b"shared with the world").unwrap();
    let objects_before = content.len().unwrap();
    for i in 0..50 {
        a.set_perm("/f", &format!("group-{i}"), Perm::Read).unwrap();
    }
    assert_eq!(
        content.len().unwrap(),
        objects_before,
        "object count must not grow with permissions (P4)"
    );
}

#[test]
fn p5_groups_share_one_encrypted_file() {
    // Many groups read the same file; the blob count stays one (same
    // store object), demonstrated via storage bytes not growing.
    let content = Arc::new(MemStore::new());
    let group: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let dedup: Arc<dyn ObjectStore> = Arc::new(MemStore::new());
    let setup = FsoSetup::with_stores(
        "ca",
        EnclaveConfig::default(),
        seg_sgx::Platform::new_with_seed(9),
        Arc::clone(&content) as Arc<dyn ObjectStore>,
        group,
        dedup,
    );
    let server = setup.server().unwrap();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    a.put("/f", &vec![5u8; 500_000]).unwrap();
    let bytes_before = content.total_bytes().unwrap();
    for i in 0..10 {
        let user = format!("user{i}");
        a.add_user(&user, &format!("group-{i}")).unwrap();
        a.set_perm("/f", &format!("group-{i}"), Perm::Read).unwrap();
        let member = setup.enroll_user(&user, "u@x", "U").unwrap();
        let mut m = server.connect_local(&member).unwrap();
        assert_eq!(m.get("/f").unwrap().len(), 500_000);
    }
    let growth = content.total_bytes().unwrap() - bytes_before;
    assert!(
        growth < 100_000,
        "sharing with 10 groups grew content by {growth} bytes (P5)"
    );
}

#[test]
fn s3_end_to_end_protection_over_the_wire() {
    // The untrusted transport sees only TLS records: no plaintext
    // content appears in any frame. We interpose a recording transport.
    use seg_net::FrameTransport;

    struct Recording<T: FrameTransport> {
        inner: T,
        log: Arc<parking_lot::Mutex<Vec<Vec<u8>>>>,
    }
    impl<T: FrameTransport> FrameTransport for Recording<T> {
        fn send_frame(&mut self, frame: &[u8]) -> Result<(), seg_net::NetError> {
            self.log.lock().push(frame.to_vec());
            self.inner.send_frame(frame)
        }
        fn recv_frame(&mut self) -> Result<Vec<u8>, seg_net::NetError> {
            let frame = self.inner.recv_frame()?;
            self.log.lock().push(frame.clone());
            Ok(frame)
        }
    }

    let (setup, server) = basic_setup();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let (client_t, server_t) = seg_net::duplex();
    let recording = Recording {
        inner: client_t,
        log: Arc::clone(&log),
    };
    let server2 = server;
    let enclave = Arc::clone(server2.enclave());
    std::thread::spawn(move || {
        let _ = segshare::untrusted::serve_connection(&enclave, server_t);
    });
    let mut c = segshare::Client::connect(recording, &alice).unwrap();
    c.put("/wire", b"EXTREMELY SECRET PAYLOAD ON THE WIRE")
        .unwrap();
    assert_eq!(
        c.get("/wire").unwrap(),
        b"EXTREMELY SECRET PAYLOAD ON THE WIRE"
    );

    let frames = log.lock();
    assert!(frames.len() >= 6, "expected handshake plus data frames");
    for frame in frames.iter() {
        let text = String::from_utf8_lossy(frame);
        assert!(
            !text.contains("SECRET PAYLOAD"),
            "plaintext leaked into a wire frame"
        );
        assert!(!text.contains("/wire"), "path leaked into a wire frame");
    }
}

#[test]
fn s4_immediate_revocation_no_lazy_window() {
    // Unlike lazy-revocation systems, access must flip on the *next*
    // request after the revocation — no file update needed in between.
    let (setup, server) = basic_setup();
    let alice = setup.enroll_user("alice", "a@x", "A").unwrap();
    let bob = setup.enroll_user("bob", "b@x", "B").unwrap();
    let mut a = server.connect_local(&alice).unwrap();
    let mut b = server.connect_local(&bob).unwrap();
    a.put("/f", b"v1").unwrap();
    a.add_user("bob", "g").unwrap();
    a.set_perm("/f", "g", Perm::Read).unwrap();
    assert!(b.get("/f").is_ok());
    a.remove_user("bob", "g").unwrap();
    // The file was never rewritten after the grant; bob must be out
    // immediately anyway.
    assert!(
        b.get("/f").is_err(),
        "revocation must not wait for a file update"
    );
}
