//! Metering integration: the seg-meter plane's attribution accuracy,
//! cardinality bound, and trust-boundary behaviour over a real server.
//!
//! Three contract points:
//!
//! 1. heavy-hitter recall — a Zipf(1.0) workload over 1,000 principals
//!    squeezed into 64 slots still surfaces ≥ 9 of the true top-10 in
//!    `meter_report()`;
//! 2. fixed memory — tracked keys never exceed [`METER_SLOTS`] per
//!    axis no matter how many principals appear, and the report stays
//!    bounded in size;
//! 3. no operand leak — neither `meter_report()` nor the Prometheus
//!    export carries a raw principal, group, or path operand (paper
//!    §III: everything leaving the enclave is adversary-visible).
//!
//! Plus property tests over the SpaceSaving sketch invariants.

use std::collections::BTreeMap;

use proptest::prelude::*;
use seg_obs::{CostVector, Meter, MeterAxis, METER_SLOTS};
use segshare::{EnclaveConfig, FsoSetup};

/// One-op cost vector used by the sketch-level tests.
fn unit_cost(bytes: u64) -> CostVector {
    CostVector {
        ops: 1,
        req_bytes: bytes,
        ..CostVector::default()
    }
}

/// Extracts every `"fp":"<16 hex>"` fingerprint from the `section`
/// object of a meter report (hand-rolled like the report itself).
fn report_fps(report: &str, section: &str) -> Vec<u64> {
    let start = report
        .find(&format!("\"{section}\":{{"))
        .unwrap_or_else(|| panic!("report has a {section} section"));
    // The per-axis sections are emitted in order; cut at the next
    // top-level axis (or fairness) key to scope the scan.
    let rest = &report[start + section.len() + 4..];
    let end = ["\"groups\":{", "\"prefixes\":{", "\"fairness\":{"]
        .iter()
        .filter_map(|k| rest.find(k))
        .min()
        .unwrap_or(rest.len());
    let scoped = &rest[..end];
    let mut fps = Vec::new();
    let mut at = 0;
    while let Some(pos) = scoped[at..].find("\"fp\":\"") {
        let hex = &scoped[at + pos + 6..at + pos + 22];
        fps.push(u64::from_str_radix(hex, 16).expect("16-hex fingerprint"));
        at += pos + 22;
    }
    // The `top_by` per-dimension lists repeat keys from `top`; the
    // caller wants the distinct attributed fingerprints.
    fps.sort_unstable();
    fps.dedup();
    fps
}

#[test]
fn zipf_thousand_principals_recovered_from_report() {
    // The tentpole acceptance bar, end to end through the report:
    // Zipf(1.0), 1,000 principals, 64 slots — `report_json()` (the
    // exact producer behind `SegShareServer::meter_report`) must name
    // at least 9 of the true top-10 principals by op count.
    let n = 1_000usize;
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    // Deterministic xorshift (different seed than the unit test, same
    // distribution) so the test cannot flake.
    let mut state = 0x517c_c1b7_2722_0a95u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let meter = Meter::new(true);
    let mut truth = vec![0u64; n + 1];
    for _ in 0..60_000 {
        let u = next();
        let rank = cdf.partition_point(|&c| c < u).min(n - 1);
        let fp = (rank as u64 + 1).wrapping_mul(0x0101_0101_0101_0101);
        truth[rank + 1] += 1;
        meter.record(fp, 0, 0, &unit_cost(32));
    }

    let mut ranked: Vec<(u64, u64)> = (1..=n as u64).map(|r| (truth[r as usize], r)).collect();
    ranked.sort_unstable_by(|a, b| b.cmp(a));
    let reported = report_fps(&meter.report_json(), "principals");
    let recalled = ranked[..10]
        .iter()
        .filter(|&&(_, r)| reported.contains(&r.wrapping_mul(0x0101_0101_0101_0101)))
        .count();
    assert!(
        recalled >= 9,
        "report recovered only {recalled}/10 true heavy hitters"
    );

    // Memory stays fixed: 1,000 distinct principals, ≤ 64 tracked.
    let stats = meter.stats();
    assert!(stats.principals.tracked <= METER_SLOTS as u64);
    assert!(stats.principals.evictions > 0, "sketch was under pressure");
}

#[test]
fn metering_memory_is_fixed_as_principals_grow() {
    // Grow the principal population 50x past capacity: tracked slots
    // and the report's size must not grow with it.
    let meter = Meter::new(true);
    for i in 1..=200u64 {
        meter.record(i, i, i, &unit_cost(16));
    }
    let small_report_len = meter.report_json().len();
    for i in 1..=10_000u64 {
        meter.record(i, i % 97 + 1, i % 31 + 1, &unit_cost(16));
    }
    let stats = meter.stats();
    for (axis, s) in [
        ("principal", &stats.principals),
        ("group", &stats.groups),
        ("prefix", &stats.prefixes),
    ] {
        assert!(
            s.tracked <= METER_SLOTS as u64,
            "{axis} axis tracks {} > {METER_SLOTS} keys",
            s.tracked
        );
    }
    // The report is top-K over fixed slots: its size is bounded by the
    // slot count, not the key population (allow slack for wider
    // numbers at higher counts).
    let big_report_len = meter.report_json().len();
    assert!(
        big_report_len < small_report_len * 2,
        "report grew with population: {small_report_len} -> {big_report_len}"
    );
    // Nothing was lost to the bound: overflow conserves evicted ops.
    assert_eq!(meter.totals().ops, 10_200);
}

#[test]
fn meter_exports_carry_no_request_operands() {
    // Distinctive operands on every axis the meter attributes: the
    // principal (user id), the group name, and the path prefix. None
    // may appear in the report or the Prometheus export.
    const SECRETS: &[&str] = &[
        "meterprincipal",
        "meterfriend",
        "metergroup",
        "tenant-prefix",
        "billing-doc",
        "acme.example",
    ];
    let setup = FsoSetup::new_in_memory("meter-ca", EnclaveConfig::default());
    let server = setup.server().expect("setup");
    let alice = setup
        .enroll_user("meterprincipal", "meterprincipal@acme.example", "A")
        .expect("enroll");
    let bob = setup
        .enroll_user("meterfriend", "meterfriend@acme.example", "B")
        .expect("enroll");

    let mut a = server.connect_local(&alice).expect("connect");
    a.mkdir("/tenant-prefix/").expect("mkdir");
    a.put("/tenant-prefix/billing-doc", b"invoice body")
        .expect("upload");
    a.add_user("meterprincipal", "metergroup").expect("group");
    a.add_user("meterfriend", "metergroup").expect("share");
    a.set_perm(
        "/tenant-prefix/billing-doc",
        "metergroup",
        seg_fs::Perm::Read,
    )
    .expect("grant");
    let mut b = server.connect_local(&bob).expect("connect");
    assert_eq!(
        b.get("/tenant-prefix/billing-doc").expect("download"),
        b"invoice body"
    );
    drop(a);
    drop(b);
    std::thread::sleep(std::time::Duration::from_millis(100));

    let report = server.meter_report();
    let prometheus = server.metrics_snapshot().to_prometheus();
    for (name, text) in [("meter_report", &report), ("prometheus", &prometheus)] {
        for secret in SECRETS {
            assert!(!text.contains(secret), "{name} leaks {secret:?}");
        }
        assert!(!text.contains('/'), "{name} carries a path separator");
        assert!(!text.contains('@'), "{name} carries an email-like token");
    }

    // Both principals, the group, and the prefix were still attributed
    // — as fingerprints.
    // mkdir + upload + 2 membership updates + grant + download: at
    // least six dispatched requests were attributed.
    assert!(server.enclave().meter().samples() >= 6, "flow was metered");
    let principals = report_fps(&report, "principals");
    assert_eq!(principals.len(), 2, "two tracked talkers: {report}");
    assert!(
        !report_fps(&report, "groups").is_empty(),
        "group attributed"
    );
    assert!(
        !report_fps(&report, "prefixes").is_empty(),
        "prefix attributed"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// SpaceSaving invariants under arbitrary key streams squeezed
    /// into a tiny axis: for every tracked key,
    /// `true ≤ est` and `est − err ≤ true`; every slot's error stays
    /// at or below the tracked minimum estimate; and the op rollups
    /// (tracked + overflow) conserve the update count exactly.
    #[test]
    fn spacesaving_bounds_hold(keys in proptest::collection::vec(1..24u64, 1..600)) {
        let mut axis = MeterAxis::new(8);
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        for &k in &keys {
            axis.record(k, &unit_cost(k));
            *truth.entry(k).or_insert(0) += 1;
            // Invariants hold at every step, not just at the end.
            let min = axis.min_est();
            for s in axis.top(0, usize::MAX) {
                let t = truth.get(&s.fp).copied().unwrap_or(0);
                prop_assert!(s.est >= t, "fp {} est {} under-counts {t}", s.fp, s.est);
                prop_assert!(s.est - s.err <= t, "fp {} lower bound {} above {t}", s.fp, s.est - s.err);
                prop_assert!(s.err <= min, "fp {} err {} above minimum {min}", s.fp, s.err);
            }
        }
        prop_assert!(axis.tracked() <= 8);
        prop_assert_eq!(axis.updates(), keys.len() as u64);
        prop_assert_eq!(axis.tracked_ops() + axis.overflow().ops, axis.updates());
        // Cost conservation beyond ops: per-request req_bytes survive
        // eviction via the overflow rollup.
        let fed: u64 = keys.iter().sum();
        let tracked: u64 = axis.top(0, usize::MAX).iter().map(|s| s.costs.req_bytes).sum();
        prop_assert_eq!(tracked + axis.overflow().req_bytes, fed);
    }

    /// A key hot enough to exceed the sketch's noise floor is always
    /// tracked at the end of the stream (the SpaceSaving guarantee:
    /// any key with true count > updates / capacity survives).
    #[test]
    fn heavy_keys_are_never_lost(noise in proptest::collection::vec(2..100u64, 64..256)) {
        let mut axis = MeterAxis::new(8);
        // Interleave one heavy key so it always exceeds updates/8.
        for chunk in noise.chunks(4) {
            for &k in chunk {
                axis.record(k, &unit_cost(1));
            }
            for _ in 0..chunk.len() {
                axis.record(1, &unit_cost(1));
            }
        }
        let slot = axis.slot(1);
        prop_assert!(slot.is_some(), "majority key evicted: {axis:?}");
        let heavy_true = noise.chunks(4).map(|c| c.len() as u64).sum::<u64>();
        let s = slot.unwrap();
        prop_assert!(s.est >= heavy_true);
        prop_assert!(s.est - s.err <= heavy_true);
    }
}
