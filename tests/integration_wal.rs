//! Durability-plane integration: the WAL-backed store under the full
//! server, group-commit batching, recovery after simulated crashes at
//! every durability event, and dedup-blob garbage collection.
//!
//! The crash matrix is the §V-E story end to end: a clean run first
//! counts the backend's durability events (appends, fsyncs, checkpoint
//! renames, segment deletions), then the same workload is re-run with a
//! scripted crash at every single event index. After each crash the
//! directory is re-opened and the enclave relaunched with the same CA
//! and platform — a reboot — and the recovered state must be
//! all-or-nothing per acknowledged request: every acked write is fully
//! present, every unacked write is fully present or fully absent, the
//! audit chain verifies, and no read ever reports an integrity
//! violation.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use seg_net::ChannelTransport;
use seg_sgx::Platform;
use seg_store::{FaultPlan, MemStore, ObjectStore, WalConfig, WalStore};
use segshare::{wal_views, Client, EnclaveConfig, FsoSetup, SegShareError, SegShareServer};

fn tempdir(tag: &str) -> PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("seg-wal-it-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Batch mode with the full §V-E protection stack — the configuration
/// the durability plane was designed around.
fn durable_config() -> EnclaveConfig {
    EnclaveConfig {
        batch: true,
        rollback_whole_fs: true,
        ..EnclaveConfig::default()
    }
}

fn connect(setup: &FsoSetup, server: &SegShareServer, user: &str) -> Client<ChannelTransport> {
    let enrolled = setup.enroll_user(user, "u@x", "User").unwrap();
    server.connect_local(&enrolled).unwrap()
}

// ---------------------------------------------------------------- smoke

#[test]
fn wal_backend_survives_restart() {
    let dir = tempdir("restart");
    let mut setup = FsoSetup::new_wal("ca", durable_config(), &dir).unwrap();
    let big: Vec<u8> = (0..3 * seg_proto::CHUNK_LEN)
        .map(|i| (i % 241) as u8)
        .collect();
    {
        let server = setup.server().unwrap();
        let mut c = connect(&setup, &server, "alice");
        c.mkdir("/docs").unwrap();
        c.put("/docs/big", &big).unwrap();
        c.put("/small", b"persists").unwrap();
        c.put("/gone", b"transient").unwrap();
        c.remove("/gone").unwrap();
        assert_eq!(c.get("/docs/big").unwrap(), big);
        server.audit_verify().unwrap();
    }
    // Reboot: a fresh WalStore over the same directory, same identity.
    let (content, group, dedup) = wal_views(&Arc::new(WalStore::open(&dir).unwrap()));
    setup.set_stores(content, group, dedup);
    let server = setup.server().unwrap();
    let mut c = connect(&setup, &server, "alice");
    assert_eq!(c.get("/docs/big").unwrap(), big);
    assert_eq!(c.get("/small").unwrap(), b"persists");
    assert!(c.get("/gone").is_err(), "removed file stays removed");
    server.audit_verify().unwrap();
    // The recovered store accepts new writes.
    c.put("/after-reboot", b"fresh").unwrap();
    assert_eq!(c.get("/after-reboot").unwrap(), b"fresh");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_log_tail_is_discarded_on_reopen() {
    let dir = tempdir("torn");
    let mut setup = FsoSetup::new_wal("ca", durable_config(), &dir).unwrap();
    {
        let server = setup.server().unwrap();
        let mut c = connect(&setup, &server, "alice");
        c.put("/stable", b"acked and fsynced").unwrap();
        server.audit_verify().unwrap();
    }
    // A crash mid-append leaves a torn, never-acknowledged frame at the
    // tail of the newest segment. Recovery must drop exactly that.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    let newest = segments.last().expect("at least one segment");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(newest)
            .unwrap();
        // Garbage that is not a valid frame header, then a plausible
        // header announcing a payload that never arrived.
        f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x13]).unwrap();
    }
    let (content, group, dedup) = wal_views(&Arc::new(WalStore::open(&dir).unwrap()));
    setup.set_stores(content, group, dedup);
    let server = setup.server().unwrap();
    let mut c = connect(&setup, &server, "alice");
    assert_eq!(c.get("/stable").unwrap(), b"acked and fsynced");
    server.audit_verify().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_metrics_report_batches_and_fsyncs() {
    let dir = tempdir("metrics");
    let setup = FsoSetup::new_wal("ca", durable_config(), &dir).unwrap();
    let server = setup.server().unwrap();
    let mut c = connect(&setup, &server, "alice");
    for i in 0..4u8 {
        c.put(&format!("/m{i}"), &[i; 256]).unwrap();
    }
    let snap = server.metrics_snapshot();
    for family in ["seg_store_batches_total", "seg_store_fsyncs_total"] {
        let total = snap
            .counter(&format!("{family}{{store=\"content\"}}"))
            .unwrap_or_else(|| panic!("{family} missing"));
        assert!(total > 0, "{family} should be live on a WAL backend");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// --------------------------------------------------------- crash matrix

/// The acknowledged end state a workload built up, plus the one request
/// that may have been cut mid-flight (either of its listed states is a
/// legal recovery outcome). `Some(bytes)` = file present with exactly
/// those bytes; `None` = file absent.
#[derive(Default)]
struct Outcome {
    acked: BTreeMap<String, Option<Vec<u8>>>,
    limbo: Option<(String, Vec<Option<Vec<u8>>>)>,
}

type Workload = fn(&FsoSetup, &SegShareServer, &mut Outcome);

/// Six distinct single-frame uploads.
fn put_workload(setup: &FsoSetup, server: &SegShareServer, out: &mut Outcome) {
    let Ok(enrolled) = setup.enroll_user("alice", "a@x", "Alice") else {
        return;
    };
    let Ok(mut c) = server.connect_local(&enrolled) else {
        return;
    };
    for i in 0..6u8 {
        let path = format!("/f{i}");
        let content = vec![0x40 | i; 700 + usize::from(i) * 53];
        match c.put(&path, &content) {
            Ok(()) => {
                out.acked.insert(path, Some(content));
            }
            Err(_) => {
                out.limbo = Some((path, vec![None, Some(content)]));
                return;
            }
        }
    }
}

/// Dedup uploads sharing one blob, removals, and GC passes in between.
fn gc_workload(setup: &FsoSetup, server: &SegShareServer, out: &mut Outcome) {
    let Ok(enrolled) = setup.enroll_user("alice", "a@x", "Alice") else {
        return;
    };
    let Ok(mut c) = server.connect_local(&enrolled) else {
        return;
    };
    let shared = vec![0x7e; 9_000];
    let lonely = vec![0x3c; 9_000];
    for (path, content) in [("/s1", &shared), ("/s2", &shared), ("/u", &lonely)] {
        match c.put(path, content) {
            Ok(()) => {
                out.acked.insert(path.to_string(), Some(content.clone()));
            }
            Err(_) => {
                out.limbo = Some((path.to_string(), vec![None, Some(content.clone())]));
                return;
            }
        }
    }
    // Drop one of the two references to the shared blob, then GC: the
    // blob must survive for /s2.
    match c.remove("/s1") {
        Ok(()) => {
            out.acked.insert("/s1".to_string(), None);
        }
        Err(_) => {
            // The earlier acked put no longer pins the state; the
            // unacked remove may or may not have become durable.
            out.acked.remove("/s1");
            out.limbo = Some(("/s1".to_string(), vec![None, Some(shared.clone())]));
            return;
        }
    }
    if server.blob_gc().is_err() {
        return;
    }
    // Drop the only reference to the lonely blob, then GC reclaims it.
    match c.remove("/u") {
        Ok(()) => {
            out.acked.insert("/u".to_string(), None);
        }
        Err(_) => {
            out.acked.remove("/u");
            out.limbo = Some(("/u".to_string(), vec![None, Some(lonely.clone())]));
            return;
        }
    }
    let _ = server.blob_gc();
}

fn is_not_found(err: &SegShareError) -> bool {
    matches!(
        err,
        SegShareError::Request {
            code: seg_proto::ErrorCode::NotFound,
            ..
        }
    )
}

fn assert_state(
    c: &mut Client<ChannelTransport>,
    path: &str,
    allowed: &[Option<Vec<u8>>],
    what: &str,
) {
    match c.get(path) {
        Ok(got) => assert!(
            allowed.iter().any(|s| s.as_deref() == Some(&got[..])),
            "{what}: {path} readable but content matches no legal state"
        ),
        Err(e) if is_not_found(&e) => assert!(
            allowed.contains(&None),
            "{what}: {path} absent but absence is not a legal state"
        ),
        Err(e) => panic!("{what}: {path} read failed abnormally: {e}"),
    }
}

/// One full kill-at-every-failpoint sweep: clean run to count events,
/// then crash at each index, reboot, and check the recovery contract.
fn crash_matrix(tag: &str, config: EnclaveConfig, base: &WalConfig, workload: Workload) {
    // Clean run: learn the total number of durability events.
    let total = {
        let dir = tempdir(&format!("{tag}-clean"));
        let plan = Arc::new(FaultPlan::new());
        let mut cfg = base.clone();
        cfg.fault = Some(Arc::clone(&plan));
        let setup =
            FsoSetup::new_wal_with("ca", config, Platform::new_with_seed(7), &dir, cfg).unwrap();
        let server = setup.server().unwrap();
        let mut out = Outcome::default();
        workload(&setup, &server, &mut out);
        assert!(out.limbo.is_none(), "clean run must not fail");
        drop(server);
        let _ = std::fs::remove_dir_all(&dir);
        plan.events()
    };
    assert!(total > 0, "{tag}: no durability events counted");

    for k in 1..=total {
        let dir = tempdir(&format!("{tag}-k{k}"));
        let what = format!("{tag} crash@{k}/{total}");
        // A placeholder-store setup first, so the CA and platform exist
        // before anything durable does — recovery must reuse both.
        let mut setup = FsoSetup::with_stores(
            "ca",
            config,
            Platform::new_with_seed(7),
            Arc::new(MemStore::new()),
            Arc::new(MemStore::new()),
            Arc::new(MemStore::new()),
        );
        let mut out = Outcome::default();
        let mut cfg = base.clone();
        cfg.fault = Some(Arc::new(FaultPlan::crash_at(k)));
        // An Err here means the crash hit while opening the log —
        // nothing was acked, so recovery just sees the torn state.
        if let Ok(wal) = WalStore::open_with(&dir, cfg) {
            let (content, group, dedup) = wal_views(&Arc::new(wal));
            setup.set_stores(content, group, dedup);
            if let Ok(server) = setup.server() {
                workload(&setup, &server, &mut out);
            }
        }

        // Reboot: clean config over the same directory and identity.
        let wal = Arc::new(
            WalStore::open_with(&dir, base.clone())
                .unwrap_or_else(|e| panic!("{what}: recovery open failed: {e}")),
        );
        let (content, group, dedup) = wal_views(&wal);
        setup.set_stores(content, group, dedup);
        let server = setup
            .server()
            .unwrap_or_else(|e| panic!("{what}: relaunch failed: {e}"));
        server
            .audit_verify()
            .unwrap_or_else(|e| panic!("{what}: audit chain broken: {e}"));
        let mut c = connect(&setup, &server, "alice");
        for (path, state) in &out.acked {
            assert_state(&mut c, path, std::slice::from_ref(state), &what);
        }
        if let Some((path, allowed)) = &out.limbo {
            assert_state(&mut c, path, allowed, &what);
        }
        // The recovered server keeps working.
        c.put("/post-recovery", b"alive")
            .unwrap_or_else(|e| panic!("{what}: post-recovery write failed: {e}"));
        // Second reboot: the post-recovery write must itself be durable.
        // (Recovery that leaves the log in a state where NEW acked
        // writes get dropped on the NEXT recovery — e.g. appending
        // after a torn first frame — only shows up here.)
        drop(c);
        drop(server);
        // Fully release the first recovered store before rescanning the
        // directory: a checkpoint still finishing on its committer
        // thread deletes stale segments, which would race the second
        // recovery's scan. Session/health threads release their store
        // references asynchronously after the server drops, so wait for
        // ours to become the last one; dropping it then joins the
        // committer.
        setup.set_stores(
            Arc::new(MemStore::new()),
            Arc::new(MemStore::new()),
            Arc::new(MemStore::new()),
        );
        let quiesce_deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while Arc::strong_count(&wal) > 1 {
            assert!(
                std::time::Instant::now() < quiesce_deadline,
                "{what}: first recovered store never quiesced"
            );
            std::thread::yield_now();
        }
        drop(wal);
        let wal = WalStore::open_with(&dir, base.clone())
            .unwrap_or_else(|e| panic!("{what}: second recovery open failed: {e}"));
        let (content, group, dedup) = wal_views(&Arc::new(wal));
        setup.set_stores(content, group, dedup);
        let server = setup
            .server()
            .unwrap_or_else(|e| panic!("{what}: second relaunch failed: {e}"));
        server
            .audit_verify()
            .unwrap_or_else(|e| panic!("{what}: audit chain broken after second reboot: {e}"));
        let mut c = connect(&setup, &server, "alice");
        assert_state(
            &mut c,
            "/post-recovery",
            &[Some(b"alive".to_vec())],
            &format!("{what} (after second reboot)"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn crash_matrix_batched_puts() {
    crash_matrix(
        "puts",
        durable_config(),
        &WalConfig::default(),
        put_workload,
    );
}

#[test]
fn crash_matrix_mid_checkpoint() {
    // A checkpoint threshold small enough that the workload crosses it
    // several times, so the matrix kills mid-checkpoint and mid-GC of
    // old segments too.
    let base = WalConfig {
        checkpoint_bytes: 16 * 1024,
        ..WalConfig::default()
    };
    crash_matrix("ckpt", durable_config(), &base, put_workload);
}

#[test]
fn crash_matrix_dedup_gc() {
    let config = EnclaveConfig {
        dedup: true,
        ..durable_config()
    };
    crash_matrix("gc", config, &WalConfig::default(), gc_workload);
}

// ------------------------------------------- store-level equivalence

/// Store operations the equivalence model covers. Transactions batch a
/// few writes into one commit frame; `Reopen` recovers from disk.
#[derive(Debug, Clone)]
enum StoreOp {
    Put(u8, Vec<u8>),
    Delete(u8),
    Tx(Vec<(u8, Option<Vec<u8>>)>),
    Reopen,
}

fn store_op() -> impl Strategy<Value = StoreOp> {
    fn value() -> proptest::collection::VecStrategy<proptest::strategy::Any<u8>> {
        proptest::collection::vec(any::<u8>(), 0..300)
    }
    prop_oneof![
        (0u8..6, value()).prop_map(|(k, v)| StoreOp::Put(k, v)),
        (0u8..6).prop_map(StoreOp::Delete),
        proptest::collection::vec((0u8..6, any::<bool>(), value()), 1..5).prop_map(|ws| {
            StoreOp::Tx(
                ws.into_iter()
                    .map(|(k, del, v)| (k, if del { None } else { Some(v) }))
                    .collect(),
            )
        }),
        Just(StoreOp::Reopen),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    /// Random puts, deletes, transactions, and reopens against a
    /// `WalStore` always leave exactly the state a plain in-memory
    /// reference holds.
    #[test]
    fn wal_store_matches_memory_reference(
        ops in proptest::collection::vec(store_op(), 1..30)
    ) {
        let dir = tempdir("prop");
        let mut wal = WalStore::open(&dir).unwrap();
        let reference = MemStore::new();
        let key = |k: u8| format!("k{k}");

        for op in &ops {
            match op {
                StoreOp::Put(k, v) => {
                    wal.put(&key(*k), v).unwrap();
                    reference.put(&key(*k), v).unwrap();
                }
                StoreOp::Delete(k) => {
                    prop_assert_eq!(
                        wal.delete(&key(*k)).unwrap(),
                        reference.delete(&key(*k)).unwrap()
                    );
                }
                StoreOp::Tx(writes) => {
                    wal.tx_begin();
                    for (k, v) in writes {
                        match v {
                            Some(v) => wal.put(&key(*k), v).unwrap(),
                            None => {
                                wal.delete(&key(*k)).unwrap();
                            }
                        }
                    }
                    if let Some(ticket) = wal.tx_seal().unwrap() {
                        ticket.wait().unwrap();
                    }
                    for (k, v) in writes {
                        match v {
                            Some(v) => reference.put(&key(*k), v).unwrap(),
                            None => {
                                reference.delete(&key(*k)).unwrap();
                            }
                        }
                    }
                }
                StoreOp::Reopen => {
                    drop(wal);
                    wal = WalStore::open(&dir).unwrap();
                }
            }
            // Full-state comparison after every step.
            let mut wal_keys = wal.list().unwrap();
            let mut ref_keys = reference.list().unwrap();
            wal_keys.sort();
            ref_keys.sort();
            prop_assert_eq!(&wal_keys, &ref_keys);
            for k in &wal_keys {
                prop_assert_eq!(wal.get(k).unwrap(), reference.get(k).unwrap());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
